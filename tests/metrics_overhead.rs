//! Metrics overhead smoke test (run explicitly: `cargo test --release
//! --test metrics_overhead -- --ignored`).
//!
//! The metric record sites sit on the engine's hottest paths — superstep
//! compute, the send loop, both barrier legs. Disabled (the default), the
//! shard is `None` and every site is a branch; enabled, each observation
//! is an inline bucket increment. This binary installs a counting global
//! allocator and asserts both properties: a default run performs **zero
//! additional allocations** versus an identical default run, and an
//! armed run's surplus is bounded by the one-time setup (three boxed
//! shards plus the driver-side registry fold) — far below the thousands
//! of record events the workload generates, so any per-event allocation
//! would blow the budget.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tempograph::prelude::*;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
#[ignore]
fn disabled_metrics_add_zero_hot_path_allocations() {
    const TIMESTEPS: usize = 24;
    let t = Arc::new(tempograph::gen::road_network(&RoadNetConfig {
        width: 12,
        height: 12,
        seed: 0xFACADE,
        ..Default::default()
    }));
    let coll = Arc::new(tempograph::gen::generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: TIMESTEPS,
            hit_prob: 0.4,
            initial_infected: 4,
            infectious_steps: 3,
            background_rate: 0.08,
            ..Default::default()
        },
    ));
    let meme = "#meme0".to_string();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let parts = MultilevelPartitioner::default().partition(&t, 3);
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));
    let src = InstanceSource::Memory(coll);

    let run = |config: JobConfig<VertexIdx>| {
        let armed = config.metrics;
        let r = run_job(
            &pg,
            &src,
            MemeTracking::factory(meme.clone(), tweets_col),
            config,
        );
        assert_eq!(r.timesteps_run, TIMESTEPS);
        assert_eq!(r.registry.is_some(), armed);
        if let Some(reg) = &r.registry {
            // The workload must actually exercise the record sites: many
            // hundreds of observations across compute/send/wait shards.
            let snap = reg.snapshot();
            let count = |name: &str| match snap.get(name, &[]) {
                Some(tempograph::metrics::Metric::Histogram(h)) => h.count(),
                _ => 0,
            };
            let events = count("tempograph_superstep_compute_ns")
                + count("tempograph_send_ns")
                + count("tempograph_barrier_wait_ns");
            assert!(
                events > 500,
                "only {events} record events — workload too small"
            );
        }
    };
    // Warm caches, lazy statics, and the allocator.
    run(JobConfig::sequentially_dependent(TIMESTEPS));

    let best = |mk: &dyn Fn() -> JobConfig<VertexIdx>| {
        (0..3)
            .map(|_| allocations_during(|| run(mk())))
            .min()
            .unwrap()
    };
    let plain = best(&|| JobConfig::sequentially_dependent(TIMESTEPS));
    let plain_again = best(&|| JobConfig::sequentially_dependent(TIMESTEPS));
    let armed = best(&|| JobConfig::sequentially_dependent(TIMESTEPS).with_metrics());

    // Disabled is the default: two identical default runs must allocate
    // identically — the `Option<Box<MetricsShard>>` is `None` and every
    // record site is a branch on it.
    assert_eq!(
        plain, plain_again,
        "metrics-disabled runs must be allocation-reproducible"
    );

    // Enabled, the whole surplus budget is the setup: one boxed shard per
    // worker, the driver-side fold, and the registry's keys/entries — a
    // fixed cost regardless of how many observations the run records. The
    // budget sits well below the >500 record events asserted above, so
    // even a one-allocation-per-event leak would trip it.
    assert!(
        armed <= plain + 384,
        "metrics record path allocates per event: {armed} armed vs {plain} plain"
    );
}

/// With observability disabled, a TCP worker's per-round telemetry flush
/// site is one `wants_telemetry()` branch — no `TelemetryFlush` is
/// built, no `TelemetryMsg` encoded, no frame sent (the coordinator
/// treats a Telemetry frame on a disabled run as a protocol error, so a
/// completing job doubly proves none were emitted). Two identical
/// disabled TCP runs must therefore allocate near-identically: an
/// unconditional flush would add several allocations per barrier round
/// per worker (~24 rounds × 3 workers here), far above the slack, which
/// only absorbs socket-layer nondeterminism (e.g. a stray connect
/// retry).
#[test]
#[ignore]
fn disabled_telemetry_adds_zero_allocations_over_tcp() {
    const TIMESTEPS: usize = 24;
    if std::net::TcpListener::bind("127.0.0.1:0").is_err() {
        eprintln!("NOTICE: loopback sockets unavailable; skipping TCP overhead test");
        return;
    }
    let t = Arc::new(tempograph::gen::road_network(&RoadNetConfig {
        width: 12,
        height: 12,
        seed: 0xFACADE,
        ..Default::default()
    }));
    let coll = Arc::new(tempograph::gen::generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: TIMESTEPS,
            hit_prob: 0.4,
            initial_infected: 4,
            infectious_steps: 3,
            background_rate: 0.08,
            ..Default::default()
        },
    ));
    let meme = "#meme0".to_string();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let parts = MultilevelPartitioner::default().partition(&t, 3);
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));
    let src = InstanceSource::Memory(coll);

    let run = || {
        let r = run_job_tcp(
            &pg,
            &src,
            MemeTracking::factory(meme.clone(), tweets_col),
            JobConfig::sequentially_dependent(TIMESTEPS),
            Cluster::Threads,
        )
        .expect("disabled tcp job failed");
        assert_eq!(r.timesteps_run, TIMESTEPS);
        assert!(r.registry.is_none(), "disabled run must carry no registry");
        assert!(r.trace.is_none(), "disabled run must carry no trace");
    };
    // Warm caches, lazy statics, and the allocator.
    run();

    let best = || (0..3).map(|_| allocations_during(run)).min().unwrap();
    let first = best();
    let second = best();
    let spread = first.abs_diff(second);
    assert!(
        spread <= 64,
        "disabled TCP runs must be allocation-reproducible: {first} vs {second}"
    );
}
