//! Property tests attacking the TCP frame codec ([`tempograph::engine::net`]).
//!
//! Frames round-trip bit-exactly through an in-memory duplex pipe, and a
//! hostile byte stream — arbitrary bit-flips, truncations, deliberately
//! corrupted writes — always surfaces as a *typed* error ([`WireError`] /
//! [`EngineError`]), never a panic, never unbounded work: the pipe is
//! finite, so every property terminates or fails, and a checksum mismatch
//! must leave the stream frame-aligned (the very next frame still decodes).

use bytes::Bytes;
use proptest::prelude::*;
use std::io::Cursor;
use tempograph::engine::net::{
    decode_payload, encode_payload, read_frame, write_frame, write_frame_corrupted, AttrRowWire,
    Frame, FrameKind, HistogramWire, MetricsShardWire, TelemetryMsg, TraceEventWire, HEADER_LEN,
};
use tempograph::engine::{EngineError, WireError};

fn kind_strategy() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Hello),
        Just(FrameKind::Start),
        Just(FrameKind::Contribution),
        Just(FrameKind::Aggregate),
        Just(FrameKind::Abort),
        Just(FrameKind::DataSuperstep),
        Just(FrameKind::DataNextTimestep),
        Just(FrameKind::Sentinel),
        Just(FrameKind::PeerHello),
        Just(FrameKind::Output),
        Just(FrameKind::Telemetry),
        Just(FrameKind::StatusRequest),
        Just(FrameKind::StatusReply),
    ]
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        kind_strategy(),
        any::<u16>(),
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(kind, sender, epoch, seq, payload)| Frame {
            kind,
            sender,
            epoch,
            seq,
            payload: Bytes::from(payload),
        })
}

proptest! {
    /// Pure buffer decode inverts encode, consuming exactly the frame.
    #[test]
    fn frame_decodes_what_it_encodes(f in frame_strategy()) {
        let mut buf = f.encode();
        let back = Frame::decode(&mut buf).expect("well-formed frame decodes");
        prop_assert_eq!(&back, &f);
        prop_assert_eq!(buf.len(), 0, "decode must consume the frame exactly");
    }

    /// Stream round-trip through an in-memory duplex pipe: several frames
    /// written back-to-back read back identical, with exact byte counts.
    #[test]
    fn frames_roundtrip_through_a_pipe(
        frames in proptest::collection::vec(frame_strategy(), 1..8),
    ) {
        let mut pipe = Vec::new();
        let mut written = 0usize;
        for f in &frames {
            written += write_frame(&mut pipe, f, "pipe").unwrap();
        }
        prop_assert_eq!(written, pipe.len());

        let mut r = Cursor::new(pipe);
        let mut read = 0usize;
        for f in &frames {
            let (back, n) = read_frame(&mut r, "pipe").expect("clean frame reads back");
            prop_assert_eq!(&back, f);
            prop_assert_eq!(n, HEADER_LEN + f.payload.len());
            read += n;
        }
        prop_assert_eq!(read, written);
        // The pipe is drained: a further read is a clean-close error, not
        // a hang or a panic.
        prop_assert!(read_frame(&mut r, "pipe").is_err());
    }

    /// Any single bit-flip anywhere in an encoded frame either still
    /// decodes (the flip hit a value field — sender, epoch, seq) or fails
    /// with a typed `WireError`. Never a panic, never trailing confusion.
    #[test]
    fn bit_flips_yield_typed_errors_or_valid_frames(
        f in frame_strategy(),
        bit in any::<u16>(),
    ) {
        let enc = f.encode();
        let mut bytes = enc.to_vec();
        let pos = (bit as usize / 8) % bytes.len();
        bytes[pos] ^= 1 << (bit % 8);

        match Frame::decode(&mut Bytes::from(bytes.clone())) {
            // Flips in sender/epoch/seq (or a kind-tag flip that lands on
            // another valid tag) still parse — but never silently as the
            // original frame *with a damaged payload*.
            Ok(back) => prop_assert_eq!(&back.payload, &f.payload),
            Err(
                WireError::Eof { .. } | WireError::BadTag { .. } | WireError::Checksum { .. },
            ) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }

        // The stream reader over the same damaged bytes is equally tame.
        let mut r = Cursor::new(bytes);
        match read_frame(&mut r, "pipe") {
            Ok((back, _)) => prop_assert_eq!(&back.payload, &f.payload),
            Err(
                EngineError::Wire(_) | EngineError::Net { .. } | EngineError::Protocol { .. },
            ) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }

    /// Truncating an encoded frame at any interior point is a typed error
    /// from both the buffer decoder and the stream reader.
    #[test]
    fn truncations_yield_typed_errors(f in frame_strategy(), cut in any::<u16>()) {
        let enc = f.encode();
        let cut = cut as usize % enc.len();
        let short = enc.slice(0..cut);

        match Frame::decode(&mut short.clone()) {
            Err(WireError::Eof { .. }) => {}
            Err(e) => panic!("truncation must be Eof, got: {e}"),
            Ok(_) => panic!("a truncated frame must not decode"),
        }

        let mut r = Cursor::new(short.to_vec());
        match read_frame(&mut r, "pipe") {
            // Cut at 0 reads as a clean close; anywhere else is a
            // mid-frame EOF. Both are EngineError::Net.
            Err(EngineError::Net { .. }) => {}
            Err(e) => panic!("stream truncation must be Net, got: {e}"),
            Ok(_) => panic!("a truncated stream must not yield a frame"),
        }
    }

    /// A deliberately corrupted frame (the fault injector's write path) is
    /// rejected with a checksum error *after* being fully consumed: the
    /// clean retransmission right behind it still decodes. This is the
    /// alignment property the retry protocol depends on.
    #[test]
    fn corruption_is_detected_and_leaves_the_stream_aligned(
        f in frame_strategy(),
        g in frame_strategy(),
    ) {
        let mut pipe = Vec::new();
        write_frame_corrupted(&mut pipe, &f, "pipe").unwrap();
        write_frame(&mut pipe, &g, "pipe").unwrap();

        let mut r = Cursor::new(pipe);
        match read_frame(&mut r, "pipe") {
            Err(EngineError::Wire(WireError::Checksum { .. })) => {}
            Err(e) => panic!("corrupted frame must fail its checksum, got: {e}"),
            Ok(_) => panic!("corrupted frame must not decode"),
        }
        let (back, _) = read_frame(&mut r, "pipe")
            .expect("stream must stay aligned after a checksum failure");
        prop_assert_eq!(&back, &g);
    }
}

// ---- Telemetry payloads --------------------------------------------------

fn event_wire_strategy() -> impl Strategy<Value = TraceEventWire> {
    (
        1u8..=3,
        "[a-z.]{1,12}",
        any::<u64>(),
        any::<u64>(),
        proptest::option::of(("[a-z_]{1,8}", any::<u64>())),
    )
        .prop_map(|(kind, name, a, b, arg)| TraceEventWire {
            kind,
            name,
            a,
            b,
            // Counters (kind 3) never carry an argument on the wire.
            arg: if kind == 3 { None } else { arg },
        })
}

fn histogram_wire_strategy() -> impl Strategy<Value = HistogramWire> {
    (
        proptest::collection::vec(
            any::<u64>(),
            tempograph::metrics::BUCKETS..=tempograph::metrics::BUCKETS,
        ),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(buckets, count, sum, min, max)| HistogramWire {
            buckets,
            count,
            sum,
            min,
            max,
        })
}

fn shard_wire_strategy() -> impl Strategy<Value = MetricsShardWire> {
    (
        (
            histogram_wire_strategy(),
            histogram_wire_strategy(),
            histogram_wire_strategy(),
            histogram_wire_strategy(),
            histogram_wire_strategy(),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (compute_ns, barrier_wait_ns, send_ns, checkpoint_write_ns, recovery_restore_ns),
                (cache_hits, cache_misses, cache_evictions, bytes_read),
            )| MetricsShardWire {
                compute_ns,
                barrier_wait_ns,
                send_ns,
                checkpoint_write_ns,
                recovery_restore_ns,
                cache_hits,
                cache_misses,
                cache_evictions,
                bytes_read,
            },
        )
}

fn attr_row_strategy() -> impl Strategy<Value = AttrRowWire> {
    (any::<u32>(), any::<u32>(), any::<u64>(), any::<u32>()).prop_map(
        |(subgraph, timestep, compute_ns, invocations)| AttrRowWire {
            subgraph,
            timestep,
            compute_ns,
            invocations,
        },
    )
}

fn telemetry_strategy() -> impl Strategy<Value = TelemetryMsg> {
    (
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<bool>()),
        proptest::collection::vec(event_wire_strategy(), 0..5),
        proptest::option::of(shard_wire_strategy()),
        proptest::collection::vec(attr_row_strategy(), 0..5),
    )
        .prop_map(
            |(
                (timestep, supersteps, barrier_wait_ns, clock_ns),
                (bytes_sent, bytes_received, final_flush),
                events,
                shard,
                attr,
            )| TelemetryMsg {
                timestep,
                supersteps,
                barrier_wait_ns,
                clock_ns,
                bytes_sent,
                bytes_received,
                final_flush,
                events,
                shard,
                attr,
            },
        )
}

proptest! {
    /// A Telemetry frame carrying an arbitrary observability payload
    /// round-trips bit-exactly through the stream codec.
    #[test]
    fn telemetry_frames_roundtrip_through_a_pipe(
        msg in telemetry_strategy(),
        sender in any::<u16>(),
        epoch in any::<u32>(),
    ) {
        let f = Frame::control(FrameKind::Telemetry, sender, epoch, encode_payload(&msg));
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &f, "pipe").unwrap();
        let mut r = Cursor::new(pipe);
        let (back, _) = read_frame(&mut r, "pipe").expect("clean telemetry frame reads back");
        prop_assert_eq!(back.kind, FrameKind::Telemetry);
        let decoded: TelemetryMsg = decode_payload(back.payload).expect("payload decodes");
        prop_assert_eq!(decoded, msg);
    }

    /// A bit-flip anywhere in an encoded telemetry payload either still
    /// decodes (the flip hit a value field) or fails with a typed wire
    /// error — never a panic, never unbounded preallocation (vector
    /// length prefixes are capped by the remaining bytes).
    #[test]
    fn bit_flipped_telemetry_payloads_yield_typed_errors(
        msg in telemetry_strategy(),
        bit in any::<u32>(),
    ) {
        let enc = encode_payload(&msg);
        prop_assume!(!enc.is_empty());
        let mut bytes = enc.to_vec();
        let pos = (bit as usize / 8) % bytes.len();
        bytes[pos] ^= 1 << (bit % 8);
        match decode_payload::<TelemetryMsg>(Bytes::from(bytes)) {
            Ok(_) => {}
            Err(EngineError::Wire(_)) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }

    /// Truncating an encoded telemetry payload at any interior point is a
    /// typed wire error, never a panic or a silent partial decode.
    #[test]
    fn truncated_telemetry_payloads_yield_typed_errors(
        msg in telemetry_strategy(),
        cut in any::<u32>(),
    ) {
        let enc = encode_payload(&msg);
        prop_assume!(!enc.is_empty());
        let cut = cut as usize % enc.len();
        match decode_payload::<TelemetryMsg>(enc.slice(0..cut)) {
            Err(EngineError::Wire(WireError::Eof { .. })) => {}
            Err(e) => panic!("truncation must be Eof, got: {e}"),
            Ok(_) => panic!("a truncated telemetry payload must not decode"),
        }
    }

    /// A corrupted Telemetry frame fails its checksum and leaves the
    /// stream aligned: the frame right behind it still decodes. This is
    /// what lets `serve_epoch` surface a typed error (and the recovery
    /// path take over) instead of desynchronising on damaged telemetry.
    #[test]
    fn corrupted_telemetry_frames_leave_the_stream_aligned(
        msg in telemetry_strategy(),
        g in frame_strategy(),
    ) {
        let f = Frame::control(FrameKind::Telemetry, 3, 7, encode_payload(&msg));
        let mut pipe = Vec::new();
        write_frame_corrupted(&mut pipe, &f, "pipe").unwrap();
        write_frame(&mut pipe, &g, "pipe").unwrap();

        let mut r = Cursor::new(pipe);
        match read_frame(&mut r, "pipe") {
            Err(EngineError::Wire(WireError::Checksum { .. })) => {}
            Err(e) => panic!("corrupted telemetry frame must fail its checksum, got: {e}"),
            Ok(_) => panic!("corrupted telemetry frame must not decode"),
        }
        let (back, _) = read_frame(&mut r, "pipe")
            .expect("stream must stay aligned after a damaged telemetry frame");
        prop_assert_eq!(&back, &g);
    }
}
