//! Workspace integration tests for the tracing subsystem: a traced TI-BSP
//! run must produce a structurally valid trace whose spans *exactly*
//! re-derive the engine's `TimestepMetrics` aggregates (the shared-clock
//! design: metric accumulation and span recording consume the same
//! `TraceSink::now` readings), and whose Chrome-JSON export is loadable by
//! Perfetto. A GoFS-backed run must additionally report cache counters
//! that agree with the loader's own accounting.

use std::sync::{Arc, Mutex, MutexGuard};
use tempograph::prelude::*;

/// Serialises tests that depend on the global tracing kill-switch (the
/// overhead smoke test toggles it; `--include-ignored` would otherwise
/// race it against the derivation tests).
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const TIMESTEPS: usize = 12;
const PARTITIONS: usize = 3;

fn tweet_fixture() -> (Arc<GraphTemplate>, Arc<TimeSeriesCollection>) {
    let t = Arc::new(wiki_like(0.15));
    let coll = Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: TIMESTEPS,
            meme: "#meme".into(),
            hit_prob: 0.05,
            initial_infected: 8,
            infectious_steps: 4,
            background_rate: 0.01,
            ..Default::default()
        },
    ));
    (t, coll)
}

fn road_fixture() -> (Arc<GraphTemplate>, Arc<TimeSeriesCollection>) {
    let t = Arc::new(carn_like(0.05));
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: TIMESTEPS,
            period: 300,
            min_latency: 5.0,
            max_latency: 140.0,
            seed: 7,
            ..Default::default()
        },
    ));
    (t, coll)
}

fn partitioned(t: &Arc<GraphTemplate>) -> Arc<PartitionedGraph> {
    let parts = MultilevelPartitioner::default().partition(t, PARTITIONS);
    Arc::new(discover_subgraphs(t.clone(), parts))
}

/// A traced HASH run (eventually dependent: timesteps + merge phase).
fn traced_hash_run() -> JobResult {
    let (t, coll) = tweet_fixture();
    let pg = partitioned(&t);
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    run_job(
        &pg,
        &InstanceSource::Memory(coll),
        HashtagAggregation::factory("#meme", tweets_col),
        JobConfig::eventually_dependent(TIMESTEPS).with_trace(TraceConfig::new()),
    )
}

#[test]
fn untraced_run_has_no_trace() {
    let (t, coll) = tweet_fixture();
    let pg = partitioned(&t);
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        HashtagAggregation::factory("#meme", tweets_col),
        JobConfig::eventually_dependent(TIMESTEPS),
    );
    assert!(result.trace.is_none());
}

#[test]
fn traced_run_validates_and_exactly_derives_metrics() {
    let _guard = serial();
    let result = traced_hash_run();
    let trace = result.trace.as_ref().expect("trace attached");
    trace.validate().expect("structurally valid trace");

    // One track per partition, each carrying its timesteps.
    assert_eq!(trace.tracks.len(), PARTITIONS);
    assert_eq!(
        trace.span_count("timestep"),
        result.timesteps_run * PARTITIONS
    );
    assert_eq!(trace.span_count("merge_phase"), PARTITIONS);

    // The acceptance bar is "within 1%"; the shared-clock design makes the
    // derivation *exact*, so assert equality outright.
    let all = || {
        result
            .metrics
            .iter()
            .flatten()
            .chain(result.merge_metrics.iter())
    };
    let compute: u64 = all().map(|m| m.compute_ns).sum();
    let msg: u64 = all().map(|m| m.msg_ns).sum();
    let sync: u64 = all().map(|m| m.sync_ns).sum();
    assert_eq!(
        compute,
        trace.sum_spans("compute") + trace.sum_spans("end_of_timestep"),
        "compute_ns must be re-derivable from compute + end_of_timestep spans"
    );
    assert_eq!(msg, trace.sum_spans("send"), "msg_ns from send spans");
    assert_eq!(
        sync,
        trace.sum_spans("barrier.arrive") + trace.sum_spans("barrier.post"),
        "sync_ns from barrier spans"
    );

    // Per-partition timestep wall clocks are the timestep spans themselves;
    // the merge phase has its own span.
    let wall: u64 = result.metrics.iter().flatten().map(|m| m.wall_ns).sum();
    assert_eq!(wall, trace.sum_spans("timestep"));
    let merge_wall: u64 = result.merge_metrics.iter().map(|m| m.wall_ns).sum();
    assert_eq!(merge_wall, trace.sum_spans("merge_phase"));

    // One compute span per superstep per partition (timesteps + merge).
    let supersteps: usize = all().map(|m| m.supersteps as usize).sum();
    assert_eq!(trace.span_count("compute"), supersteps);

    // Cumulative traffic counters end at the job-wide totals.
    let msgs_local: u64 = all().map(|m| m.msgs_local).sum();
    let msgs_remote: u64 = all().map(|m| m.msgs_remote).sum();
    let bytes_remote: u64 = all().map(|m| m.bytes_remote).sum();
    assert_eq!(trace.counter_final("msgs.local"), msgs_local);
    assert_eq!(trace.counter_final("msgs.remote"), msgs_remote);
    assert_eq!(trace.counter_final("bytes.remote"), bytes_remote);
}

/// Shared-clock invariant, metrics edition: the registry's histograms are
/// fed the *same* `TraceSink::now` differences the trace spans record, so
/// a run armed with both must agree exactly — sum for sum, count for
/// count — with no tolerance window.
#[test]
fn metrics_histograms_exactly_agree_with_trace_spans() {
    let _guard = serial();
    let (t, coll) = tweet_fixture();
    let pg = partitioned(&t);
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        HashtagAggregation::factory("#meme", tweets_col),
        JobConfig::eventually_dependent(TIMESTEPS)
            .with_trace(TraceConfig::new())
            .with_metrics(),
    );
    let trace = result.trace.as_ref().expect("trace attached");
    let snap = result
        .registry
        .as_ref()
        .expect("registry attached")
        .snapshot();
    let hist = |name: &str| match snap.get(name, &[]) {
        Some(tempograph::metrics::Metric::Histogram(h)) => h,
        other => panic!("{name}: expected a histogram, got {other:?}"),
    };

    // Compute: one observation per compute span plus one per
    // end_of_timestep span, covering the identical nanoseconds.
    let compute = hist("tempograph_superstep_compute_ns");
    assert_eq!(
        compute.sum(),
        trace.sum_spans("compute") + trace.sum_spans("end_of_timestep")
    );
    assert_eq!(
        compute.count() as usize,
        trace.span_count("compute") + trace.span_count("end_of_timestep")
    );

    // Send: one observation per send span.
    let send = hist("tempograph_send_ns");
    assert_eq!(send.sum(), trace.sum_spans("send"));
    assert_eq!(send.count() as usize, trace.span_count("send"));

    // Barrier wait: one observation per arrive span and one per
    // post-drain rendezvous span.
    let wait = hist("tempograph_barrier_wait_ns");
    assert_eq!(
        wait.sum(),
        trace.sum_spans("barrier.arrive") + trace.sum_spans("barrier.post")
    );
    assert_eq!(
        wait.count() as usize,
        trace.span_count("barrier.arrive") + trace.span_count("barrier.post")
    );

    // And both re-derive the engine's own aggregates (trace side already
    // asserted in traced_run_validates_and_exactly_derives_metrics).
    assert_eq!(
        snap.counter_total("tempograph_compute_ns_total"),
        compute.sum()
    );
    assert_eq!(snap.counter_total("tempograph_msg_ns_total"), send.sum());
    assert_eq!(snap.counter_total("tempograph_sync_ns_total"), wait.sum());
}

#[test]
fn chrome_export_is_structurally_sound() {
    let _guard = serial();
    let result = traced_hash_run();
    let json = result.trace.as_ref().unwrap().to_chrome_json();

    assert!(
        json.starts_with("{\"traceEvents\":["),
        "envelope: {}",
        &json[..40.min(json.len())]
    );
    assert!(json.trim_end().ends_with('}'));
    // Span names contain no braces/brackets, so raw balance checks hold.
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces"
    );
    assert_eq!(
        json.matches('[').count(),
        json.matches(']').count(),
        "balanced brackets"
    );
    // Metadata names the partition tracks; spans and counters are present.
    assert!(json.contains("\"thread_name\""));
    assert!(json.contains("partition 0"));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"C\""));
    assert!(json.contains("\"timestep\""));
    assert!(json.contains("\"superstep\""));
}

#[test]
fn gofs_run_reports_cache_counters_in_trace() {
    let _guard = serial();
    let (t, coll) = road_fixture();
    let pg = partitioned(&t);
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();

    let dir = std::env::temp_dir().join(format!("trace-int-gofs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    tempograph::gofs::store::write_dataset(&dir, pg.clone(), &coll, 4, 2).unwrap();

    let result = run_job(
        &pg,
        &InstanceSource::Gofs(dir.clone()),
        Tdsp::factory(VertexIdx(0), lat_col),
        JobConfig::sequentially_dependent(TIMESTEPS)
            .while_active(TIMESTEPS)
            .with_trace(TraceConfig::new()),
    );
    std::fs::remove_dir_all(&dir).unwrap();

    let trace = result.trace.as_ref().unwrap();
    trace.validate().expect("valid trace with gofs events");

    // Every cache miss is one slice read: one gofs.load span, and the
    // loaders' final counter samples sum to the engine's slice_loads total.
    let loads = trace.span_count("gofs.load") as u64;
    assert!(loads > 0, "a GoFS run must read slices");
    assert_eq!(trace.counter_final("gofs.cache_misses"), loads);
    let slice_loads: u64 = result.metrics.iter().flatten().map(|m| m.slice_loads).sum();
    assert_eq!(slice_loads, loads);
    // Temporal packing of 4 means later timesteps hit the slice cache.
    assert!(trace.counter_final("gofs.cache_hits") > 0);
    assert!(trace.counter_final("gofs.bytes_read") > 0);
}

#[test]
fn flight_recorder_stays_bounded() {
    let _guard = serial();
    let (t, coll) = tweet_fixture();
    let pg = partitioned(&t);
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    const CAP: usize = 128;
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        HashtagAggregation::factory("#meme", tweets_col),
        JobConfig::eventually_dependent(TIMESTEPS)
            .with_trace(TraceConfig::new().flight_recorder(CAP)),
    );
    let trace = result.trace.as_ref().unwrap();
    trace
        .validate()
        .expect("bounded ring still yields a valid trace");
    assert!(
        trace.num_events() <= CAP * PARTITIONS,
        "{} events exceed {} rings of {CAP}",
        trace.num_events(),
        PARTITIONS
    );
    assert!(trace.num_events() > 0);
}

/// Overhead smoke test (run explicitly: `cargo test --release --test
/// trace_integration -- --ignored`): with tracing *globally disabled*, a
/// job configured for tracing must not run measurably slower than an
/// untraced job — the record path is a branch on two booleans.
#[test]
#[ignore]
fn trace_overhead_when_disabled_is_negligible() {
    let _guard = serial();
    let (t, coll) = tweet_fixture();
    let pg = partitioned(&t);
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let src = InstanceSource::Memory(coll);

    let run = |config: JobConfig<_>| {
        let started = std::time::Instant::now();
        let result = run_job(
            &pg,
            &src,
            HashtagAggregation::factory("#meme", tweets_col),
            config,
        );
        assert_eq!(result.timesteps_run, TIMESTEPS);
        started.elapsed()
    };
    // Warm up caches and the allocator.
    run(JobConfig::eventually_dependent(TIMESTEPS));

    let best = |mk: &dyn Fn() -> JobConfig<<HashtagAggregation as SubgraphProgram>::Msg>| {
        (0..3).map(|_| run(mk())).min().unwrap()
    };
    let baseline = best(&|| JobConfig::eventually_dependent(TIMESTEPS));
    tempograph::trace::set_tracing_enabled(false);
    let disabled =
        best(&|| JobConfig::eventually_dependent(TIMESTEPS).with_trace(TraceConfig::new()));
    tempograph::trace::set_tracing_enabled(true);

    // Generous bound: timesharing noise dwarfs the two-boolean branch, so
    // demand only "not catastrophically slower".
    assert!(
        disabled < baseline * 2,
        "disabled-tracing run {disabled:?} vs baseline {baseline:?}"
    );
}
