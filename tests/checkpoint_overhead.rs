//! Checkpoint/fault-injection overhead smoke test (run explicitly:
//! `cargo test --release --test checkpoint_overhead -- --ignored`).
//!
//! The fault hooks sit on the engine's hottest paths — superstep entry and
//! the remote-send loop — and the checkpoint hook runs once per timestep.
//! With the features disabled (no checkpoint dir, an empty fault plan) they
//! must be branch-only: this binary installs a counting global allocator
//! and asserts a fault-armed-but-empty run performs **zero additional
//! allocations** over a plain run (modulo the one-time `Arc<FaultPlan>`
//! setup, bounded by a small constant).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tempograph::prelude::*;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
#[ignore]
fn disabled_checkpointing_adds_zero_hot_path_allocations() {
    const TIMESTEPS: usize = 8;
    let t = Arc::new(tempograph::gen::road_network(&RoadNetConfig {
        width: 12,
        height: 12,
        seed: 0xFACADE,
        ..Default::default()
    }));
    let coll = Arc::new(tempograph::gen::generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: TIMESTEPS,
            hit_prob: 0.4,
            initial_infected: 4,
            infectious_steps: 3,
            background_rate: 0.08,
            ..Default::default()
        },
    ));
    let meme = "#meme0".to_string();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let parts = MultilevelPartitioner::default().partition(&t, 3);
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));
    let src = InstanceSource::Memory(coll);

    let run = |config: JobConfig<VertexIdx>| {
        let r = run_job(
            &pg,
            &src,
            MemeTracking::factory(meme.clone(), tweets_col),
            config,
        );
        assert_eq!(r.timesteps_run, TIMESTEPS);
        assert_eq!(r.recoveries, 0);
    };
    // Warm caches, lazy statics, and the allocator.
    run(JobConfig::sequentially_dependent(TIMESTEPS));

    let best = |mk: &dyn Fn() -> JobConfig<VertexIdx>| {
        (0..3)
            .map(|_| allocations_during(|| run(mk())))
            .min()
            .unwrap()
    };
    let plain = best(&|| JobConfig::sequentially_dependent(TIMESTEPS));
    let armed_but_idle =
        best(&|| JobConfig::sequentially_dependent(TIMESTEPS).with_faults(FaultPlan::new()));

    // The whole difference budget is the per-run config setup (one
    // `Arc<FaultPlan>` per job and its clone per worker) — the per-superstep
    // and per-send hooks themselves must allocate nothing.
    assert!(
        armed_but_idle <= plain + 16,
        "fault/checkpoint hooks allocate on the hot path: \
         {armed_but_idle} allocations armed vs {plain} plain"
    );
}
