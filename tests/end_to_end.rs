//! Workspace end-to-end tests: the full paper pipeline across crates —
//! generators → partitioner → GoFS on disk → TI-BSP engine → algorithms —
//! plus cross-engine agreement between the subgraph-centric and
//! vertex-centric implementations.

use std::sync::Arc;
use tempograph::prelude::*;

fn carn_fixture() -> (Arc<GraphTemplate>, Arc<TimeSeriesCollection>) {
    let t = Arc::new(carn_like(0.06)); // ≈ 600 vertices
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: 25,
            period: 300,
            min_latency: 5.0,
            max_latency: 140.0,
            seed: 42,
            ..Default::default()
        },
    ));
    (t, coll)
}

#[test]
fn full_pipeline_gofs_matches_memory() {
    let (t, coll) = carn_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let parts = MultilevelPartitioner::default().partition(&t, 3);
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));

    let dir = std::env::temp_dir().join(format!("e2e-gofs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    tempograph::gofs::store::write_dataset(&dir, pg.clone(), &coll, 10, 5).unwrap();

    let from_disk = run_job(
        &pg,
        &InstanceSource::Gofs(dir.clone()),
        Tdsp::factory(VertexIdx(0), lat_col),
        JobConfig::sequentially_dependent(25).while_active(25),
    );
    let from_memory = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        Tdsp::factory(VertexIdx(0), lat_col),
        JobConfig::sequentially_dependent(25).while_active(25),
    );
    assert_eq!(from_disk.emitted, from_memory.emitted);
    assert_eq!(from_disk.timesteps_run, from_memory.timesteps_run);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tdsp_results_independent_of_partition_count() {
    let (t, coll) = carn_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let src = InstanceSource::Memory(coll);
    let mut reference: Option<Vec<(VertexIdx, f64)>> = None;
    for k in [1usize, 2, 5] {
        let parts = MultilevelPartitioner::default().partition(&t, k);
        let pg = Arc::new(discover_subgraphs(t.clone(), parts));
        let result = run_job(
            &pg,
            &src,
            Tdsp::factory(VertexIdx(0), lat_col),
            JobConfig::sequentially_dependent(25).while_active(25),
        );
        let mut got: Vec<(VertexIdx, f64)> =
            result.emitted.iter().map(|e| (e.vertex, e.value)).collect();
        got.sort_by_key(|a| a.0);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "k = {k} diverged"),
        }
    }
}

#[test]
fn subgraph_centric_and_vertex_centric_sssp_agree() {
    let (t, coll) = carn_fixture();
    let parts = MultilevelPartitioner::default().partition(&t, 4);
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));

    // Subgraph-centric (GoFFish-style), unweighted.
    let goffish = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        Sssp::factory(VertexIdx(0), None),
        JobConfig::independent(1),
    );
    let mut sg_levels = vec![f64::INFINITY; t.num_vertices()];
    for e in &goffish.emitted {
        sg_levels[e.vertex.idx()] = e.value;
    }

    // Vertex-centric (Giraph-style).
    let pregel = tempograph::pregel::run_pregel(
        &t,
        pg.partitioning(),
        &tempograph::pregel::SsspVertex {
            source: VertexIdx(0),
            latencies: None,
        },
        100_000,
    );

    for (v, (sg, vc)) in sg_levels.iter().zip(&pregel.states).enumerate() {
        assert_eq!(sg, vc, "engines disagree at vertex {v}");
    }
    // The structural claim behind Fig. 5b: the vertex-centric engine needs
    // about `diameter` supersteps; the subgraph-centric one needs a handful.
    let sg_ss = goffish.metrics[0]
        .iter()
        .map(|m| m.supersteps)
        .max()
        .unwrap();
    assert!(
        pregel.metrics.supersteps as u32 > 4 * sg_ss,
        "vertex-centric {} vs subgraph-centric {sg_ss} supersteps",
        pregel.metrics.supersteps
    );
}

#[test]
fn meme_and_hash_agree_on_timestep_zero_counts() {
    let t = Arc::new(wiki_like(0.05)); // ≈ 600 users
    let meme = "#x";
    let coll = Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: 12,
            meme: meme.into(),
            hit_prob: 0.05,
            initial_infected: 6,
            infectious_steps: 3,
            background_rate: 0.0,
            ..Default::default()
        },
    ));
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let parts = MultilevelPartitioner::default().partition(&t, 3);
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));
    let src = InstanceSource::Memory(coll);

    let meme_run = run_job(
        &pg,
        &src,
        MemeTracking::factory(meme, tweets_col),
        JobConfig::sequentially_dependent(12),
    );
    let hash_run = run_job(
        &pg,
        &src,
        HashtagAggregation::factory(meme, tweets_col),
        JobConfig::eventually_dependent(12),
    );

    // At t0, MEME colours exactly the users whose tweets contain the meme —
    // which is exactly HASH's t0 count (each seed tweets the meme once).
    let colored_t0 = meme_run.counter_at(MemeTracking::COLORED, 0);
    let hash_t0 = hash_run
        .emitted
        .iter()
        .find(|e| e.vertex == VertexIdx(0))
        .map(|e| e.value as u64)
        .unwrap_or(0);
    assert_eq!(colored_t0, hash_t0);
}

#[test]
fn independent_topn_runs_in_both_execution_modes() {
    let t = Arc::new(wiki_like(0.05));
    let coll = Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: 10,
            hit_prob: 0.05,
            initial_infected: 5,
            background_rate: 0.05,
            ..Default::default()
        },
    ));
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let parts = MultilevelPartitioner::default().partition(&t, 2);
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));
    let src = InstanceSource::Memory(coll);

    let barriered = run_job(
        &pg,
        &src,
        TopNActivity::factory(3, tweets_col),
        JobConfig::independent(10),
    );
    let fast = run_job(
        &pg,
        &src,
        TopNActivity::factory(3, tweets_col),
        JobConfig::independent(10).with_temporal_parallelism(),
    );
    assert_eq!(barriered.emitted, fast.emitted);
    for t in 0..10 {
        assert_eq!(
            barriered.counter_at(TopNActivity::TWEETS, t),
            fast.counter_at(TopNActivity::TWEETS, t)
        );
    }
}

#[test]
fn wcc_and_pagerank_run_through_the_facade() {
    let t = Arc::new(carn_like(0.03));
    let mut coll = TimeSeriesCollection::new(t.clone(), 0, 1);
    coll.push(coll.new_instance()).unwrap();
    let parts = MultilevelPartitioner::default().partition(&t, 3);
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));
    let src = InstanceSource::Memory(Arc::new(coll));

    let wcc = run_job(&pg, &src, Wcc::factory(), JobConfig::independent(1));
    // Road networks are connected: exactly one component label.
    let labels: std::collections::HashSet<u64> =
        wcc.emitted.iter().map(|e| e.value as u64).collect();
    assert_eq!(labels.len(), 1);

    let pr = run_job(&pg, &src, PageRank::factory(5), JobConfig::independent(1));
    let total: f64 = pr.emitted.iter().map(|e| e.value).sum();
    assert!(
        (total - 1.0).abs() < 1e-6,
        "ranks must sum to 1, got {total}"
    );
}
