//! Cross-transport equivalence harness: the same TI-BSP job must produce
//! **byte-identical** output whether partitions exchange batches over
//! in-process channels ([`run_job`]), a localhost TCP mesh between worker
//! threads, or real spawned worker *processes* talking TCP — same emitted
//! values (as f64 bit patterns), same counter totals, same final
//! per-subgraph program state, same `(from, seq)` delivery order.
//!
//! Every paper algorithm (Hashtag Aggregation, Meme Tracking, TDSP, SSSP,
//! WCC) is exercised at 3 and 6 partitions over both transports; one
//! configuration additionally runs with real child processes spawned from
//! the `tempograph` binary (`worker` subcommand) over a GoFS dataset.
//!
//! When loopback sockets are unavailable in the sandbox, TCP cases print a
//! NOTICE and skip rather than fail.

use bytes::BufMut;
use std::collections::BTreeMap;
use std::sync::Arc;
use tempograph::engine::{Context, Envelope};
use tempograph::metrics::Metric;
use tempograph::prelude::*;
use tempograph::trace::TraceEvent;

const TIMESTEPS: usize = 6;

fn sockets_available() -> bool {
    match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(_) => true,
        Err(e) => {
            eprintln!("NOTICE: loopback sockets unavailable ({e}); skipping TCP test");
            false
        }
    }
}

fn road(width: usize, height: usize, seed: u64) -> Arc<GraphTemplate> {
    Arc::new(tempograph::gen::road_network(&RoadNetConfig {
        width,
        height,
        seed,
        ..Default::default()
    }))
}

fn partitioned(t: &Arc<GraphTemplate>, k: usize) -> Arc<PartitionedGraph> {
    let p = MultilevelPartitioner::default().partition(t, k);
    Arc::new(discover_subgraphs(t.clone(), p))
}

fn road_fixture() -> (Arc<GraphTemplate>, InstanceSource) {
    let t = road(10, 10, 0xBEAC0A);
    let coll = Arc::new(tempograph::gen::generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: TIMESTEPS,
            period: 50,
            min_latency: 4.0,
            max_latency: 60.0,
            seed: 29,
            ..Default::default()
        },
    ));
    (t, InstanceSource::Memory(coll))
}

fn tweet_fixture() -> (Arc<GraphTemplate>, InstanceSource, SirConfig) {
    let t = road(12, 12, 0xBEEFED);
    let cfg = SirConfig {
        timesteps: TIMESTEPS,
        hit_prob: 0.4,
        initial_infected: 4,
        infectious_steps: 3,
        background_rate: 0.08,
        ..Default::default()
    };
    let coll = Arc::new(tempograph::gen::generate_sir_tweets(t.clone(), &cfg));
    (t, InstanceSource::Memory(coll), cfg)
}

/// Everything observable about a run, in canonical order, floats as bit
/// patterns. Equal fingerprints ⇔ byte-identical runs.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    emitted: Vec<(usize, u32, u64)>,
    counters: BTreeMap<String, Vec<u64>>,
    timesteps_run: usize,
    final_states: Vec<(u32, Vec<u8>)>,
}

fn fingerprint(r: &JobResult) -> Fingerprint {
    Fingerprint {
        emitted: r
            .emitted
            .iter()
            .map(|e| (e.timestep, e.vertex.0, e.value.to_bits()))
            .collect(),
        counters: r
            .counters
            .iter()
            .map(|(name, per_t)| {
                (
                    name.clone(),
                    per_t.iter().map(|per_p| per_p.iter().sum()).collect(),
                )
            })
            .collect(),
        timesteps_run: r.timesteps_run,
        final_states: r
            .final_states
            .iter()
            .map(|(sg, bytes)| (sg.0, bytes.clone()))
            .collect(),
    }
}

/// Run the same job over in-process channels and over a thread-per-worker
/// localhost TCP mesh; assert byte-identical fingerprints.
fn assert_transport_equivalent<P, F>(
    label: &str,
    pg: &Arc<PartitionedGraph>,
    src: &InstanceSource,
    factory: F,
    mk_cfg: impl Fn() -> JobConfig<P::Msg>,
) where
    P: SubgraphProgram,
    F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync,
{
    let local = run_job(pg, src, &factory, mk_cfg());
    let tcp = run_job_tcp(pg, src, &factory, mk_cfg(), Cluster::Threads)
        .unwrap_or_else(|e| panic!("{label}: tcp job failed: {e}"));
    assert_eq!(
        fingerprint(&local),
        fingerprint(&tcp),
        "{label}: TCP run must be byte-identical to the in-process run"
    );
}

#[test]
fn sssp_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(
            &format!("sssp-k{k}"),
            &pg,
            &src,
            Sssp::factory(VertexIdx(0), Some(lat_col)),
            || JobConfig::independent(1),
        );
    }
}

#[test]
fn wcc_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(&format!("wcc-k{k}"), &pg, &src, Wcc::factory(), || {
            JobConfig::independent(1)
        });
    }
}

#[test]
fn tdsp_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(
            &format!("tdsp-k{k}"),
            &pg,
            &src,
            Tdsp::factory(VertexIdx(0), lat_col),
            || JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS),
        );
    }
}

#[test]
fn meme_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src, cfg) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(
            &format!("meme-k{k}"),
            &pg,
            &src,
            MemeTracking::factory(cfg.meme.clone(), tweets_col),
            || JobConfig::sequentially_dependent(TIMESTEPS),
        );
    }
}

/// Hashtag aggregation's Merge BSP routes every partial to one master
/// subgraph — the heaviest cross-partition convergecast in the suite.
#[test]
fn hashtag_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src, _) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(
            &format!("hash-k{k}"),
            &pg,
            &src,
            HashtagAggregation::factory("#meme", tweets_col),
            || JobConfig::eventually_dependent(TIMESTEPS),
        );
    }
}

/// Records the exact `(from, seq)` sequence of every inbox it is handed
/// into its saved state, while broadcasting to every other subgraph for a
/// few supersteps — if a transport delivered messages in a different
/// order, the final states would differ.
struct OrderProbe {
    id: SubgraphId,
    peers: Vec<SubgraphId>,
    log: Vec<(u32, u32)>,
}

impl SubgraphProgram for OrderProbe {
    type Msg = u32;

    fn compute(&mut self, ctx: &mut Context<'_, u32>, msgs: &[Envelope<u32>]) {
        for e in msgs {
            self.log.push((e.from.0, e.seq));
        }
        if ctx.superstep() < 3 {
            for &p in &self.peers {
                ctx.send_to_subgraph(p, self.id.0);
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn save_state(&self, buf: &mut bytes::BytesMut) {
        buf.put_u32_le(self.log.len() as u32);
        for &(from, seq) in &self.log {
            buf.put_u32_le(from);
            buf.put_u32_le(seq);
        }
    }
}

fn order_probe_factory() -> impl Fn(&Subgraph, &PartitionedGraph) -> OrderProbe + Send + Sync {
    |sg, pg| OrderProbe {
        id: sg.id(),
        peers: pg
            .subgraphs()
            .iter()
            .map(|s| s.id())
            .filter(|&id| id != sg.id())
            .collect(),
        log: Vec::new(),
    }
}

/// The delivery-order probe: all-to-all traffic for three supersteps, the
/// observed `(from, seq)` sequences shipped home as final state. Both
/// transports must observe the identical order.
#[test]
fn delivery_order_is_deterministic_across_transports() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        let local = run_job(&pg, &src, order_probe_factory(), JobConfig::independent(1));
        let tcp = run_job_tcp(
            &pg,
            &src,
            order_probe_factory(),
            JobConfig::independent(1),
            Cluster::Threads,
        )
        .unwrap_or_else(|e| panic!("order-probe-k{k}: tcp job failed: {e}"));
        // The probe must actually have observed traffic...
        assert!(
            local.final_states.iter().any(|(_, s)| s.len() > 4),
            "order-probe-k{k}: probe saw no messages"
        );
        // ...and both transports the same traffic in the same order.
        assert_eq!(
            fingerprint(&local),
            fingerprint(&tcp),
            "order-probe-k{k}: (from, seq) delivery order must match"
        );
    }
}

/// Real child processes: spawn one `tempograph worker` per partition from
/// the compiled binary, drive them over localhost TCP, and require the
/// result byte-identical to the in-process run of the same GoFS dataset.
#[test]
fn spawned_worker_processes_match_in_process_run() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    let InstanceSource::Memory(coll) = &src else {
        unreachable!()
    };
    let dir = std::env::temp_dir().join(format!("transport-eq-gofs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pg = partitioned(&t, 3);
    tempograph::gofs::store::write_dataset(&dir, pg.clone(), coll, 2, 2).unwrap();

    // Reopen exactly as the worker processes will, so subgraph discovery
    // and instance projection go through the same code path.
    let store = GofsStore::open(&dir).unwrap();
    let pg = Arc::new(store.partitioned_graph());
    let gofs_src = InstanceSource::Gofs(dir.clone());
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let factory = Sssp::factory(VertexIdx(0), Some(lat_col));

    let local = run_job(&pg, &gofs_src, &factory, JobConfig::independent(1));

    let dir_str = dir.to_str().unwrap().to_string();
    let procs = run_job_tcp(
        &pg,
        &gofs_src,
        &factory,
        JobConfig::independent(1),
        Cluster::Processes {
            worker_bin: env!("CARGO_BIN_EXE_tempograph").into(),
            worker_args: vec![
                "worker".into(),
                "--data".into(),
                dir_str,
                "--algo".into(),
                "sssp".into(),
                "--timesteps".into(),
                TIMESTEPS.to_string(),
                "--source".into(),
                "0".into(),
            ],
        },
    )
    .expect("process-cluster job failed");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(procs.recoveries, 0, "clean run must not recover");
    assert_eq!(
        fingerprint(&local),
        fingerprint(&procs),
        "worker processes must be byte-identical to the in-process run"
    );
}

// ---------------------------------------------------------------------------
// Telemetry-plane equivalence: a TCP run's JobResult must carry the same
// registry, attribution table, trace, and ledger record as an in-process
// run — the worker shards cross the wire as Telemetry frames and the
// coordinator merges them through the same fold paths `run_job` uses.
// ---------------------------------------------------------------------------

/// Canonical JSON of a result's registry snapshot with clock-measured
/// content normalised away: counter values are kept verbatim unless the
/// instrument name ends in `_ns_total` (measured time), histograms keep
/// only their observation count (observations are durations, but *how
/// many* were taken is barrier-deterministic — equal counts prove the
/// shard histograms crossed the wire and merged), gauges keep exact f64
/// bits (they are ratios of deterministic message counts).
fn registry_canonical_json(label: &str, r: &JobResult) -> String {
    let reg = r
        .registry
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: result lacks a registry"));
    let mut out = String::from("{");
    for (i, e) in reg.snapshot().metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let labels: Vec<String> = e
            .key
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let val = match &e.value {
            Metric::Counter(_) if e.key.name.ends_with("_ns_total") => {
                "\"measured-ns\"".to_string()
            }
            Metric::Counter(c) => c.to_string(),
            Metric::Gauge(g) => format!("\"gauge-bits:{:016x}\"", g.to_bits()),
            Metric::Histogram(h) => format!("{{\"count\":{}}}", h.count()),
        };
        out.push_str(&format!("\"{}[{}]\":{val}", e.key.name, labels.join(",")));
    }
    out.push('}');
    out
}

/// The per-(subgraph, timestep) attribution table with the measured
/// nanoseconds dropped — invocation counts are deterministic.
fn attribution_rows(label: &str, r: &JobResult) -> Vec<(u32, u32, u32)> {
    let attr = r
        .attribution
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: result lacks an attribution table"));
    assert!(
        !attr.rows.is_empty(),
        "{label}: attribution table must not be empty"
    );
    attr.rows
        .iter()
        .map(|row| (row.subgraph.0, row.timestep, row.invocations))
        .collect()
}

/// A stripped, seeded ledger record's canonical JSON — the exact bytes
/// `tempograph run --ledger --deterministic true` persists.
fn stripped_record_json(
    algo: &str,
    pattern: &str,
    pg: &Arc<PartitionedGraph>,
    r: &JobResult,
) -> String {
    let fp = ConfigFingerprint {
        algorithm: algo.to_string(),
        pattern: pattern.to_string(),
        partitions: pg.num_partitions() as u32,
        subgraphs: pg.subgraphs().len() as u32,
        timesteps: TIMESTEPS as u32,
        start_time: 0,
        period: 50,
        seed: 0xCAFE_F00D,
        dataset: format!("telemetry-eq-{algo}"),
        env: ConfigFingerprint::host_env(),
    };
    let mut rec = RunRecord::from_result(fp, r);
    rec.strip_nondeterminism();
    rec.to_value().write_pretty()
}

/// Per-worker-track multiset of span names. Clock domains differ between
/// an in-process run and TCP worker threads/processes, so timestamps are
/// not comparable — but the *set* of spans each worker records is, since
/// both transports drive the identical executor. Driver tracks (id ≥ k)
/// are skipped (transport-specific bookkeeping), as are `net.*` events
/// (transport-layer instrumentation the in-process path never emits).
fn worker_span_multisets(
    label: &str,
    r: &JobResult,
    k: usize,
) -> BTreeMap<u32, BTreeMap<&'static str, usize>> {
    let trace = r
        .trace
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: result lacks a trace"));
    trace
        .validate()
        .unwrap_or_else(|e| panic!("{label}: trace validation failed: {e}"));
    let mut out = BTreeMap::new();
    for t in &trace.tracks {
        if t.track >= k as u32 {
            continue;
        }
        let names: &mut BTreeMap<&'static str, usize> = out.entry(t.track).or_default();
        for ev in &t.events {
            if let TraceEvent::Span { name, .. } = ev {
                if !name.starts_with("net.") {
                    *names.entry(name).or_insert(0) += 1;
                }
            }
        }
    }
    out
}

/// Drive one algorithm through all three transports with full
/// observability armed and require the merged telemetry identical.
/// The process leg arms the workers via the CLI's `--observe true`
/// (trace stays coordinator-side only — the `worker` subcommand has no
/// trace flag — so the trace comparison covers inprocess vs tcp).
#[allow(clippy::too_many_arguments)]
fn assert_telemetry_equivalent<P, F>(
    algo: &str,
    pattern: &str,
    k: usize,
    pg: &Arc<PartitionedGraph>,
    src: &InstanceSource,
    factory: F,
    mk_cfg: impl Fn() -> JobConfig<P::Msg>,
    proc_worker_args: Option<Vec<String>>,
) where
    P: SubgraphProgram,
    F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync,
{
    let label = format!("{algo}-k{k}");
    let obs = |cfg: JobConfig<P::Msg>| cfg.with_metrics().with_attribution();

    let local = run_job(
        pg,
        src,
        &factory,
        obs(mk_cfg()).with_trace(TraceConfig::new()),
    );
    let tcp = run_job_tcp(
        pg,
        src,
        &factory,
        obs(mk_cfg()).with_trace(TraceConfig::new()),
        Cluster::Threads,
    )
    .unwrap_or_else(|e| panic!("{label}: tcp job failed: {e}"));

    assert_eq!(
        fingerprint(&local),
        fingerprint(&tcp),
        "{label}: TCP result must be byte-identical"
    );
    assert_eq!(
        registry_canonical_json(&format!("{label}-local"), &local),
        registry_canonical_json(&format!("{label}-tcp"), &tcp),
        "{label}: merged registry must match the in-process fold"
    );
    assert_eq!(
        attribution_rows(&format!("{label}-local"), &local),
        attribution_rows(&format!("{label}-tcp"), &tcp),
        "{label}: per-(subgraph, timestep) attribution must match"
    );
    assert_eq!(
        stripped_record_json(algo, pattern, pg, &local),
        stripped_record_json(algo, pattern, pg, &tcp),
        "{label}: stripped ledger records must be byte-identical"
    );
    // Shard histograms really crossed the wire: the merged distribution
    // holds one compute observation per superstep per worker.
    let h = tcp
        .registry
        .as_ref()
        .unwrap()
        .snapshot()
        .get("tempograph_superstep_compute_ns", &[])
        .cloned()
        .unwrap_or_else(|| panic!("{label}: merged registry lacks the compute histogram"));
    match h {
        Metric::Histogram(h) => assert!(h.count() > 0, "{label}: compute histogram is empty"),
        other => panic!("{label}: expected a histogram, got {other:?}"),
    }
    let local_spans = worker_span_multisets(&format!("{label}-local"), &local, k);
    let tcp_spans = worker_span_multisets(&format!("{label}-tcp"), &tcp, k);
    assert!(
        local_spans.values().any(|m| !m.is_empty()),
        "{label}: in-process trace recorded no worker spans"
    );
    assert_eq!(
        local_spans, tcp_spans,
        "{label}: per-worker span multisets must match modulo clock domains"
    );

    if let Some(worker_args) = proc_worker_args {
        let procs = run_job_tcp(
            pg,
            src,
            &factory,
            obs(mk_cfg()),
            Cluster::Processes {
                worker_bin: env!("CARGO_BIN_EXE_tempograph").into(),
                worker_args,
            },
        )
        .unwrap_or_else(|e| panic!("{label}: process-cluster job failed: {e}"));
        assert_eq!(
            fingerprint(&local),
            fingerprint(&procs),
            "{label}: process-cluster result must be byte-identical"
        );
        assert_eq!(
            registry_canonical_json(&format!("{label}-local"), &local),
            registry_canonical_json(&format!("{label}-procs"), &procs),
            "{label}: process-cluster registry must match the in-process fold"
        );
        assert_eq!(
            attribution_rows(&format!("{label}-local"), &local),
            attribution_rows(&format!("{label}-procs"), &procs),
            "{label}: process-cluster attribution must match"
        );
        assert_eq!(
            stripped_record_json(algo, pattern, pg, &local),
            stripped_record_json(algo, pattern, pg, &procs),
            "{label}: process-cluster ledger record must be byte-identical"
        );
    }
}

/// Write `coll` as a GoFS store partitioned `k` ways and reopen it the
/// way worker processes will.
fn gofs_fixture(
    tag: &str,
    t: &Arc<GraphTemplate>,
    coll: &Arc<TimeSeriesCollection>,
    k: usize,
) -> (std::path::PathBuf, Arc<PartitionedGraph>, InstanceSource) {
    let dir = std::env::temp_dir().join(format!("telemetry-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pg = partitioned(t, k);
    tempograph::gofs::store::write_dataset(&dir, pg, coll, 2, 2).unwrap();
    let store = GofsStore::open(&dir).unwrap();
    let pg = Arc::new(store.partitioned_graph());
    let src = InstanceSource::Gofs(dir.clone());
    (dir, pg, src)
}

/// HASH (eventually dependent, Merge-BSP convergecast) ships telemetry
/// identically over all three transports at 3 and 6 partitions.
#[test]
fn hashtag_telemetry_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src, _) = tweet_fixture();
    let InstanceSource::Memory(coll) = &src else {
        unreachable!()
    };
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    for k in [3, 6] {
        let (dir, pg, gofs_src) = gofs_fixture(&format!("hash-k{k}"), &t, coll, k);
        let worker_args = vec![
            "worker".into(),
            "--data".into(),
            dir.to_str().unwrap().into(),
            "--algo".into(),
            "hash".into(),
            "--timesteps".into(),
            TIMESTEPS.to_string(),
            "--meme".into(),
            "#meme".into(),
            "--observe".into(),
            "true".into(),
        ];
        assert_telemetry_equivalent(
            "hash",
            "eventually-dependent",
            k,
            &pg,
            &gofs_src,
            HashtagAggregation::factory("#meme", tweets_col),
            || JobConfig::eventually_dependent(TIMESTEPS),
            Some(worker_args),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// TDSP (sequentially dependent, while-active) ships telemetry
/// identically over all three transports at 3 and 6 partitions.
#[test]
fn tdsp_telemetry_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    let InstanceSource::Memory(coll) = &src else {
        unreachable!()
    };
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    for k in [3, 6] {
        let (dir, pg, gofs_src) = gofs_fixture(&format!("tdsp-k{k}"), &t, coll, k);
        let worker_args = vec![
            "worker".into(),
            "--data".into(),
            dir.to_str().unwrap().into(),
            "--algo".into(),
            "tdsp".into(),
            "--timesteps".into(),
            TIMESTEPS.to_string(),
            "--source".into(),
            "0".into(),
            "--observe".into(),
            "true".into(),
        ];
        assert_telemetry_equivalent(
            "tdsp",
            "sequentially-dependent",
            k,
            &pg,
            &gofs_src,
            Tdsp::factory(VertexIdx(0), lat_col),
            || JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS),
            Some(worker_args),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// With no observability armed, a TCP job result carries no trace, no
/// registry, and no attribution — and the coordinator would reject any
/// Telemetry frame with a protocol error, so equal results also prove no
/// telemetry frames were sent.
#[test]
fn disabled_observability_ships_no_telemetry() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    let pg = partitioned(&t, 3);
    let tcp = run_job_tcp(
        &pg,
        &src,
        Wcc::factory(),
        JobConfig::independent(1),
        Cluster::Threads,
    )
    .expect("disabled-observability tcp job failed");
    assert!(tcp.trace.is_none(), "unexpected trace on a disabled run");
    assert!(
        tcp.registry.is_none(),
        "unexpected registry on a disabled run"
    );
    assert!(
        tcp.attribution.is_none(),
        "unexpected attribution on a disabled run"
    );
}
