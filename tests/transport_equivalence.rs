//! Cross-transport equivalence harness: the same TI-BSP job must produce
//! **byte-identical** output whether partitions exchange batches over
//! in-process channels ([`run_job`]), a localhost TCP mesh between worker
//! threads, or real spawned worker *processes* talking TCP — same emitted
//! values (as f64 bit patterns), same counter totals, same final
//! per-subgraph program state, same `(from, seq)` delivery order.
//!
//! Every paper algorithm (Hashtag Aggregation, Meme Tracking, TDSP, SSSP,
//! WCC) is exercised at 3 and 6 partitions over both transports; one
//! configuration additionally runs with real child processes spawned from
//! the `tempograph` binary (`worker` subcommand) over a GoFS dataset.
//!
//! When loopback sockets are unavailable in the sandbox, TCP cases print a
//! NOTICE and skip rather than fail.

use bytes::BufMut;
use std::collections::BTreeMap;
use std::sync::Arc;
use tempograph::engine::{Context, Envelope};
use tempograph::prelude::*;

const TIMESTEPS: usize = 6;

fn sockets_available() -> bool {
    match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(_) => true,
        Err(e) => {
            eprintln!("NOTICE: loopback sockets unavailable ({e}); skipping TCP test");
            false
        }
    }
}

fn road(width: usize, height: usize, seed: u64) -> Arc<GraphTemplate> {
    Arc::new(tempograph::gen::road_network(&RoadNetConfig {
        width,
        height,
        seed,
        ..Default::default()
    }))
}

fn partitioned(t: &Arc<GraphTemplate>, k: usize) -> Arc<PartitionedGraph> {
    let p = MultilevelPartitioner::default().partition(t, k);
    Arc::new(discover_subgraphs(t.clone(), p))
}

fn road_fixture() -> (Arc<GraphTemplate>, InstanceSource) {
    let t = road(10, 10, 0xBEAC0A);
    let coll = Arc::new(tempograph::gen::generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: TIMESTEPS,
            period: 50,
            min_latency: 4.0,
            max_latency: 60.0,
            seed: 29,
            ..Default::default()
        },
    ));
    (t, InstanceSource::Memory(coll))
}

fn tweet_fixture() -> (Arc<GraphTemplate>, InstanceSource, SirConfig) {
    let t = road(12, 12, 0xBEEFED);
    let cfg = SirConfig {
        timesteps: TIMESTEPS,
        hit_prob: 0.4,
        initial_infected: 4,
        infectious_steps: 3,
        background_rate: 0.08,
        ..Default::default()
    };
    let coll = Arc::new(tempograph::gen::generate_sir_tweets(t.clone(), &cfg));
    (t, InstanceSource::Memory(coll), cfg)
}

/// Everything observable about a run, in canonical order, floats as bit
/// patterns. Equal fingerprints ⇔ byte-identical runs.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    emitted: Vec<(usize, u32, u64)>,
    counters: BTreeMap<String, Vec<u64>>,
    timesteps_run: usize,
    final_states: Vec<(u32, Vec<u8>)>,
}

fn fingerprint(r: &JobResult) -> Fingerprint {
    Fingerprint {
        emitted: r
            .emitted
            .iter()
            .map(|e| (e.timestep, e.vertex.0, e.value.to_bits()))
            .collect(),
        counters: r
            .counters
            .iter()
            .map(|(name, per_t)| {
                (
                    name.clone(),
                    per_t.iter().map(|per_p| per_p.iter().sum()).collect(),
                )
            })
            .collect(),
        timesteps_run: r.timesteps_run,
        final_states: r
            .final_states
            .iter()
            .map(|(sg, bytes)| (sg.0, bytes.clone()))
            .collect(),
    }
}

/// Run the same job over in-process channels and over a thread-per-worker
/// localhost TCP mesh; assert byte-identical fingerprints.
fn assert_transport_equivalent<P, F>(
    label: &str,
    pg: &Arc<PartitionedGraph>,
    src: &InstanceSource,
    factory: F,
    mk_cfg: impl Fn() -> JobConfig<P::Msg>,
) where
    P: SubgraphProgram,
    F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync,
{
    let local = run_job(pg, src, &factory, mk_cfg());
    let tcp = run_job_tcp(pg, src, &factory, mk_cfg(), Cluster::Threads)
        .unwrap_or_else(|e| panic!("{label}: tcp job failed: {e}"));
    assert_eq!(
        fingerprint(&local),
        fingerprint(&tcp),
        "{label}: TCP run must be byte-identical to the in-process run"
    );
}

#[test]
fn sssp_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(
            &format!("sssp-k{k}"),
            &pg,
            &src,
            Sssp::factory(VertexIdx(0), Some(lat_col)),
            || JobConfig::independent(1),
        );
    }
}

#[test]
fn wcc_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(&format!("wcc-k{k}"), &pg, &src, Wcc::factory(), || {
            JobConfig::independent(1)
        });
    }
}

#[test]
fn tdsp_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(
            &format!("tdsp-k{k}"),
            &pg,
            &src,
            Tdsp::factory(VertexIdx(0), lat_col),
            || JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS),
        );
    }
}

#[test]
fn meme_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src, cfg) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(
            &format!("meme-k{k}"),
            &pg,
            &src,
            MemeTracking::factory(cfg.meme.clone(), tweets_col),
            || JobConfig::sequentially_dependent(TIMESTEPS),
        );
    }
}

/// Hashtag aggregation's Merge BSP routes every partial to one master
/// subgraph — the heaviest cross-partition convergecast in the suite.
#[test]
fn hashtag_is_transport_equivalent_at_3_and_6_partitions() {
    if !sockets_available() {
        return;
    }
    let (t, src, _) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_transport_equivalent(
            &format!("hash-k{k}"),
            &pg,
            &src,
            HashtagAggregation::factory("#meme", tweets_col),
            || JobConfig::eventually_dependent(TIMESTEPS),
        );
    }
}

/// Records the exact `(from, seq)` sequence of every inbox it is handed
/// into its saved state, while broadcasting to every other subgraph for a
/// few supersteps — if a transport delivered messages in a different
/// order, the final states would differ.
struct OrderProbe {
    id: SubgraphId,
    peers: Vec<SubgraphId>,
    log: Vec<(u32, u32)>,
}

impl SubgraphProgram for OrderProbe {
    type Msg = u32;

    fn compute(&mut self, ctx: &mut Context<'_, u32>, msgs: &[Envelope<u32>]) {
        for e in msgs {
            self.log.push((e.from.0, e.seq));
        }
        if ctx.superstep() < 3 {
            for &p in &self.peers {
                ctx.send_to_subgraph(p, self.id.0);
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn save_state(&self, buf: &mut bytes::BytesMut) {
        buf.put_u32_le(self.log.len() as u32);
        for &(from, seq) in &self.log {
            buf.put_u32_le(from);
            buf.put_u32_le(seq);
        }
    }
}

fn order_probe_factory() -> impl Fn(&Subgraph, &PartitionedGraph) -> OrderProbe + Send + Sync {
    |sg, pg| OrderProbe {
        id: sg.id(),
        peers: pg
            .subgraphs()
            .iter()
            .map(|s| s.id())
            .filter(|&id| id != sg.id())
            .collect(),
        log: Vec::new(),
    }
}

/// The delivery-order probe: all-to-all traffic for three supersteps, the
/// observed `(from, seq)` sequences shipped home as final state. Both
/// transports must observe the identical order.
#[test]
fn delivery_order_is_deterministic_across_transports() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        let local = run_job(&pg, &src, order_probe_factory(), JobConfig::independent(1));
        let tcp = run_job_tcp(
            &pg,
            &src,
            order_probe_factory(),
            JobConfig::independent(1),
            Cluster::Threads,
        )
        .unwrap_or_else(|e| panic!("order-probe-k{k}: tcp job failed: {e}"));
        // The probe must actually have observed traffic...
        assert!(
            local.final_states.iter().any(|(_, s)| s.len() > 4),
            "order-probe-k{k}: probe saw no messages"
        );
        // ...and both transports the same traffic in the same order.
        assert_eq!(
            fingerprint(&local),
            fingerprint(&tcp),
            "order-probe-k{k}: (from, seq) delivery order must match"
        );
    }
}

/// Real child processes: spawn one `tempograph worker` per partition from
/// the compiled binary, drive them over localhost TCP, and require the
/// result byte-identical to the in-process run of the same GoFS dataset.
#[test]
fn spawned_worker_processes_match_in_process_run() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    let InstanceSource::Memory(coll) = &src else {
        unreachable!()
    };
    let dir = std::env::temp_dir().join(format!("transport-eq-gofs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pg = partitioned(&t, 3);
    tempograph::gofs::store::write_dataset(&dir, pg.clone(), coll, 2, 2).unwrap();

    // Reopen exactly as the worker processes will, so subgraph discovery
    // and instance projection go through the same code path.
    let store = GofsStore::open(&dir).unwrap();
    let pg = Arc::new(store.partitioned_graph());
    let gofs_src = InstanceSource::Gofs(dir.clone());
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let factory = Sssp::factory(VertexIdx(0), Some(lat_col));

    let local = run_job(&pg, &gofs_src, &factory, JobConfig::independent(1));

    let dir_str = dir.to_str().unwrap().to_string();
    let procs = run_job_tcp(
        &pg,
        &gofs_src,
        &factory,
        JobConfig::independent(1),
        Cluster::Processes {
            worker_bin: env!("CARGO_BIN_EXE_tempograph").into(),
            worker_args: vec![
                "worker".into(),
                "--data".into(),
                dir_str,
                "--algo".into(),
                "sssp".into(),
                "--timesteps".into(),
                TIMESTEPS.to_string(),
                "--source".into(),
                "0".into(),
            ],
        },
    )
    .expect("process-cluster job failed");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(procs.recoveries, 0, "clean run must not recover");
    assert_eq!(
        fingerprint(&local),
        fingerprint(&procs),
        "worker processes must be byte-identical to the in-process run"
    );
}
