//! Workspace integration tests for the metrics registry: a TI-BSP run
//! with `JobConfig::with_metrics` must attach a folded registry whose
//! counters re-derive the engine's `TimestepMetrics` aggregates exactly,
//! whose GoFS cache instruments agree with the loader's own accounting,
//! and whose fault counters make injected failures visible. All three
//! exports (Prometheus text, top-N summary, canonical JSON) must carry
//! the same data.

use std::sync::Arc;
use tempograph::metrics::Metric;
use tempograph::prelude::*;

const TIMESTEPS: usize = 12;
const PARTITIONS: usize = 3;

fn tweet_fixture() -> (Arc<GraphTemplate>, Arc<TimeSeriesCollection>) {
    let t = Arc::new(wiki_like(0.15));
    let coll = Arc::new(generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: TIMESTEPS,
            meme: "#meme".into(),
            hit_prob: 0.05,
            initial_infected: 8,
            infectious_steps: 4,
            background_rate: 0.01,
            ..Default::default()
        },
    ));
    (t, coll)
}

fn road_fixture() -> (Arc<GraphTemplate>, Arc<TimeSeriesCollection>) {
    let t = Arc::new(carn_like(0.05));
    let coll = Arc::new(generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: TIMESTEPS,
            period: 300,
            min_latency: 5.0,
            max_latency: 140.0,
            seed: 7,
            ..Default::default()
        },
    ));
    (t, coll)
}

fn partitioned(t: &Arc<GraphTemplate>) -> Arc<PartitionedGraph> {
    let parts = MultilevelPartitioner::default().partition(t, PARTITIONS);
    Arc::new(discover_subgraphs(t.clone(), parts))
}

fn hash_run(config: JobConfig<Vec<u64>>) -> JobResult {
    let (t, coll) = tweet_fixture();
    let pg = partitioned(&t);
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    run_job(
        &pg,
        &InstanceSource::Memory(coll),
        HashtagAggregation::factory("#meme", tweets_col),
        config,
    )
}

#[test]
fn default_run_has_no_registry() {
    let result = hash_run(JobConfig::eventually_dependent(TIMESTEPS));
    assert!(result.registry.is_none());
}

#[test]
fn metrics_run_attaches_registry_that_rederives_job_aggregates() {
    let result = hash_run(JobConfig::eventually_dependent(TIMESTEPS).with_metrics());
    let snap = result
        .registry
        .as_ref()
        .expect("registry attached")
        .snapshot();

    // Counters re-derive the TimestepMetrics aggregates exactly.
    let all = || {
        result
            .metrics
            .iter()
            .flatten()
            .chain(result.merge_metrics.iter())
    };
    let compute: u64 = all().map(|m| m.compute_ns).sum();
    let msgs_local: u64 = all().map(|m| m.msgs_local).sum();
    let msgs_remote: u64 = all().map(|m| m.msgs_remote).sum();
    assert_eq!(snap.counter_total("tempograph_compute_ns_total"), compute);
    assert_eq!(
        snap.counter_total("tempograph_msgs_local_total"),
        msgs_local
    );
    assert_eq!(
        snap.counter_total("tempograph_msgs_remote_total"),
        msgs_remote
    );
    assert_eq!(
        snap.counter_total("tempograph_timesteps_total"),
        result.timesteps_run as u64
    );
    assert_eq!(
        snap.counter_total("tempograph_wall_ns_total"),
        result.total_wall_ns
    );
    assert_eq!(
        snap.counter_total("tempograph_emitted_values_total"),
        result.emitted.len() as u64
    );

    // The worker shards' compute histogram covers the same nanoseconds as
    // the compute counter: one observation per superstep plus one per
    // EndOfTimestep phase, per partition.
    let Some(Metric::Histogram(h)) = snap.get("tempograph_superstep_compute_ns", &[]) else {
        panic!("superstep compute histogram missing");
    };
    assert_eq!(h.sum(), compute);
    let supersteps: u64 = all().map(|m| u64::from(m.supersteps)).sum();
    assert_eq!(h.count(), supersteps + (TIMESTEPS * PARTITIONS) as u64);
    assert!(h.quantile(0.5) <= h.quantile(0.99));
    assert!(h.quantile(0.99) <= h.max());

    // A clean in-memory run: no checkpoint/recovery instruments, a zero
    // (but present and finite) cache hit rate.
    assert!(snap.get("tempograph_checkpoint_write_ns", &[]).is_none());
    assert!(snap.get("tempograph_recovery_restore_ns", &[]).is_none());
    let Some(Metric::Gauge(rate)) = snap.get("tempograph_gofs_cache_hit_rate", &[]) else {
        panic!("cache hit rate gauge missing");
    };
    assert_eq!(
        *rate, 0.0,
        "in-memory run must report a 0.0 hit rate, not NaN"
    );

    // All three exports carry the data.
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE tempograph_compute_ns_total counter"));
    assert!(prom.contains(&format!("tempograph_compute_ns_total {compute}")));
    assert!(prom.contains("# TYPE tempograph_superstep_compute_ns histogram"));
    assert!(prom.contains("tempograph_superstep_compute_ns_bucket"));
    let summary = snap.to_summary(5);
    assert!(summary.contains("tempograph_superstep_compute_ns"));
    assert!(summary.contains("p95"));
    let back = Snapshot::from_json(&snap.to_json()).expect("canonical JSON parses");
    assert_eq!(back, snap, "JSON round trip is lossless");
}

#[test]
fn gofs_run_exports_cache_instruments() {
    let (t, coll) = road_fixture();
    let pg = partitioned(&t);
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();

    let dir = std::env::temp_dir().join(format!("metrics-int-gofs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    tempograph::gofs::store::write_dataset(&dir, pg.clone(), &coll, 4, 2).unwrap();
    let result = run_job(
        &pg,
        &InstanceSource::Gofs(dir.clone()),
        Tdsp::factory(VertexIdx(0), lat_col),
        JobConfig::sequentially_dependent(TIMESTEPS)
            .while_active(TIMESTEPS)
            .with_metrics(),
    );
    std::fs::remove_dir_all(&dir).unwrap();

    let snap = result.registry.as_ref().unwrap().snapshot();
    let hits = snap.counter_total("tempograph_gofs_cache_hits_total");
    let misses = snap.counter_total("tempograph_gofs_cache_misses_total");
    // Temporal packing of 4 means later timesteps hit the slice cache, and
    // every miss is exactly one slice load.
    assert!(hits > 0, "packed slices must produce cache hits");
    assert!(misses > 0, "cold slices must produce cache misses");
    let slice_loads: u64 = result.metrics.iter().flatten().map(|m| m.slice_loads).sum();
    assert_eq!(misses, slice_loads);
    assert!(snap.counter_total("tempograph_gofs_bytes_read_total") > 0);

    let Some(Metric::Gauge(rate)) = snap.get("tempograph_gofs_cache_hit_rate", &[]) else {
        panic!("cache hit rate gauge missing");
    };
    assert!(
        rate.is_finite() && (0.0..=1.0).contains(rate),
        "rate {rate}"
    );
    let expected = hits as f64 / (hits + misses) as f64;
    assert!((rate - expected).abs() < 1e-12);
}

#[test]
fn faulted_run_exports_recoveries_and_send_retries() {
    let (t, coll) = tweet_fixture();
    let pg = partitioned(&t);
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let dir = std::env::temp_dir().join(format!("metrics-int-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // One worker panic mid-run (forces a checkpoint recovery) plus send
    // failures blanketed over every early superstep — a retry only ticks
    // when a remote batch is actually in flight at the faulted spot, and
    // meme propagation crosses partitions every timestep.
    let mut plan = FaultPlan::new().panic_at(1, 7, 0);
    for p in 0..PARTITIONS as u16 {
        for ts in 0..TIMESTEPS {
            for ss in 0..3 {
                plan = plan.fail_send_at(p, ts, ss);
            }
        }
    }
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        MemeTracking::factory("#meme", tweets_col),
        JobConfig::sequentially_dependent(TIMESTEPS)
            .with_checkpoint(4, &dir)
            .with_faults(plan)
            .with_metrics(),
    );
    let _ = std::fs::remove_dir_all(&dir);

    assert!(result.recoveries >= 1, "the injected panic must recover");
    let snap = result.registry.as_ref().unwrap().snapshot();
    assert_eq!(
        snap.counter_total("tempograph_recoveries_total"),
        result.recoveries as u64
    );
    assert!(
        snap.counter_total("tempograph_send_retries_total") >= 1,
        "the injected send failure must surface as a retry"
    );

    // The checkpoint/recovery duration instruments appear once exercised,
    // sharing the clock readings of the ckpt/restore trace spans.
    let Some(Metric::Histogram(ck)) = snap.get("tempograph_checkpoint_write_ns", &[]) else {
        panic!("checkpoint write histogram missing after a checkpointed run");
    };
    assert!(ck.count() > 0);
    let Some(Metric::Histogram(rec)) = snap.get("tempograph_recovery_restore_ns", &[]) else {
        panic!("recovery restore histogram missing after a recovered run");
    };
    assert!(rec.count() > 0);

    // Fault visibility in the exposition formats.
    let prom = snap.to_prometheus();
    assert!(prom.contains(&format!(
        "tempograph_recoveries_total {}",
        result.recoveries
    )));
    let back = Snapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(
        back.counter_total("tempograph_recoveries_total"),
        result.recoveries as u64
    );
}
