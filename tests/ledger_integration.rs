//! End-to-end ledger properties over a real executor run:
//!
//! 1. A seeded run's record, stripped of measured timings, is
//!    **byte-identical** across two executions — the property that makes
//!    `inspect diff` a meaningful regression gate.
//! 2. A rebalance plan derived from a run's *recorded* per-subgraph costs
//!    applies cleanly to the dataset it came from, and re-running with the
//!    plan applied preserves the algorithm's results while reducing the
//!    cost-model makespan (the ablation for measured-cost rebalancing).

use std::sync::Arc;
use tempograph::prelude::*;

const TIMESTEPS: usize = 12;

fn dataset() -> (Arc<GraphTemplate>, Arc<TimeSeriesCollection>) {
    let t = Arc::new(tempograph::gen::road_network(&RoadNetConfig {
        width: 12,
        height: 6,
        seed: 0xFACADE,
        ..Default::default()
    }));
    let coll = Arc::new(tempograph::gen::generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: TIMESTEPS,
            hit_prob: 0.4,
            initial_infected: 4,
            infectious_steps: 3,
            background_rate: 0.08,
            ..Default::default()
        },
    ));
    (t, coll)
}

/// A deliberately skewed layout over the 12×6 lattice: partition 0 holds
/// the six even column stripes (36 vertices), partitions 1 and 2 three odd
/// stripes each (18 vertices) — partition 0 carries roughly twice the
/// load, split across many small movable subgraphs (the lattice is a
/// random spanning tree plus extras, so stripes shatter into several
/// components each).
fn skewed_partitioning(t: &GraphTemplate) -> Partitioning {
    let width = 12usize;
    let assignment = (0..t.num_vertices())
        .map(|v| {
            let col = v % width;
            if col.is_multiple_of(2) {
                0u16
            } else if col < width / 2 {
                1
            } else {
                2
            }
        })
        .collect();
    Partitioning { assignment, k: 3 }
}

fn run_armed(
    t: &Arc<GraphTemplate>,
    coll: &Arc<TimeSeriesCollection>,
    parts: Partitioning,
) -> (Arc<PartitionedGraph>, JobResult) {
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll.clone()),
        MemeTracking::factory("#meme0".to_string(), tweets_col),
        JobConfig::sequentially_dependent(TIMESTEPS)
            .with_metrics()
            .with_attribution(),
    );
    (pg, result)
}

fn fingerprint(pg: &PartitionedGraph) -> ConfigFingerprint {
    ConfigFingerprint {
        algorithm: "meme".to_string(),
        pattern: "sequentially-dependent".to_string(),
        partitions: pg.num_partitions() as u32,
        subgraphs: pg.subgraphs().len() as u32,
        timesteps: TIMESTEPS as u32,
        start_time: 0,
        period: 300,
        seed: 0xFACADE,
        dataset: "memory://road-12x6".to_string(),
        env: ConfigFingerprint::host_env(),
    }
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "ledger-int-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Emitted values as a sorted, order-independent view (partition layout
/// changes emission order, never the set of values).
fn emitted_view(r: &JobResult) -> Vec<(usize, u32, u64)> {
    let mut v: Vec<(usize, u32, u64)> = r
        .emitted
        .iter()
        .map(|e| (e.timestep, e.vertex.0, e.value.to_bits()))
        .collect();
    v.sort_unstable();
    v
}

fn counter_totals(r: &JobResult) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = r
        .counters
        .iter()
        .map(|(name, per_t)| (name.clone(), per_t.iter().flatten().sum()))
        .collect();
    v.extend(
        r.merge_counters
            .iter()
            .map(|(name, per_p)| (name.clone(), per_p.iter().sum())),
    );
    v
}

#[test]
fn stripped_records_are_byte_identical_across_executions() {
    let (t, coll) = dataset();
    let parts = MultilevelPartitioner::default().partition(&t, 3);
    let (pg1, r1) = run_armed(&t, &coll, parts.clone());
    let (pg2, r2) = run_armed(&t, &coll, parts);

    let mut rec1 = RunRecord::from_result(fingerprint(&pg1), &r1);
    let mut rec2 = RunRecord::from_result(fingerprint(&pg2), &r2);
    assert_eq!(rec1.run_id(), rec2.run_id(), "same config, same id");

    rec1.strip_nondeterminism();
    rec2.strip_nondeterminism();
    assert_eq!(rec1, rec2, "stripped records must be structurally equal");
    assert_eq!(
        rec1.encode(),
        rec2.encode(),
        "stripped records must be byte-identical"
    );

    // The deterministic content that survives stripping is non-trivial:
    // invocation counts attribute real work.
    let invocations: u64 = rec1
        .attribution
        .iter()
        .map(|e| u64::from(e.invocations))
        .sum();
    assert!(invocations > 100, "only {invocations} invocations recorded");

    // And the on-disk files agree too, via two independent ledgers.
    let (da, db) = (tmp("a"), tmp("b"));
    let la = Ledger::open(&da).unwrap();
    let lb = Ledger::open(&db).unwrap();
    let na = la.record(&rec1).unwrap();
    let nb = lb.record(&rec2).unwrap();
    assert_eq!(na, nb);
    assert_eq!(
        std::fs::read(la.path_of(&na)).unwrap(),
        std::fs::read(lb.path_of(&nb)).unwrap()
    );
    let _ = std::fs::remove_dir_all(da);
    let _ = std::fs::remove_dir_all(db);
}

#[test]
fn recorded_costs_drive_a_plan_that_preserves_results() {
    let (t, coll) = dataset();
    let (pg, skewed) = run_armed(&t, &coll, skewed_partitioning(&t));
    assert!(
        pg.subgraphs_of_partition(0).len() >= 4,
        "partition 0 must hold several movable subgraphs, got {}",
        pg.subgraphs_of_partition(0).len()
    );

    let rec = RunRecord::from_result(fingerprint(&pg), &skewed);
    // Invocation counts are deterministic, so the plan is too.
    let costs = rec.per_subgraph_costs(false);
    assert_eq!(costs.len(), pg.subgraphs().len());
    let plan = suggest_rebalance_from(&pg, CostSource::MeasuredPerSubgraph(&costs), 3);

    assert!(!plan.moves.is_empty(), "skewed layout must yield moves");
    assert!(
        plan.makespan_after < plan.makespan_before,
        "plan must reduce the cost-model makespan ({} -> {})",
        plan.makespan_before,
        plan.makespan_after
    );
    assert_eq!(
        plan.moves[0].from, 0,
        "the first move must drain the overloaded partition"
    );

    // Apply and re-run: same emitted values, same counter totals.
    let new_parts = plan.apply(&pg).unwrap();
    new_parts.validate(&t).unwrap();
    let (_pg2, rebalanced) = run_armed(&t, &coll, new_parts);
    assert_eq!(emitted_view(&skewed), emitted_view(&rebalanced));
    assert_eq!(counter_totals(&skewed), counter_totals(&rebalanced));
}

/// Ablation (release-only, run from ci.sh): after applying the plan, the
/// *observed* per-partition load — total attributed invocations on the
/// busiest partition — must drop. Uses invocation counts rather than raw
/// nanoseconds so the assertion is immune to scheduler noise.
#[test]
#[ignore]
fn rebalance_ablation_reduces_observed_makespan() {
    let (t, coll) = dataset();
    let (pg, skewed) = run_armed(&t, &coll, skewed_partitioning(&t));
    let rec = RunRecord::from_result(fingerprint(&pg), &skewed);
    let costs = rec.per_subgraph_costs(false);
    let plan = suggest_rebalance_from(&pg, CostSource::MeasuredPerSubgraph(&costs), 3);
    assert!(!plan.moves.is_empty());

    let observed_makespan = |pg: &PartitionedGraph, r: &JobResult| -> u64 {
        let attr = r.attribution.as_ref().unwrap();
        let per_sg = attr.per_subgraph_invocations();
        (0..pg.num_partitions() as u16)
            .map(|p| {
                pg.subgraphs_of_partition(p)
                    .iter()
                    .map(|&id| per_sg.iter().find(|(i, _)| *i == id).map_or(0, |&(_, n)| n))
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    };
    let before = observed_makespan(&pg, &skewed);

    let new_parts = plan.apply(&pg).unwrap();
    let (pg2, rebalanced) = run_armed(&t, &coll, new_parts);
    let after = observed_makespan(&pg2, &rebalanced);

    assert!(
        after < before,
        "rebalanced run must observe a lower makespan ({before} -> {after})"
    );
    assert_eq!(emitted_view(&skewed), emitted_view(&rebalanced));
}
