//! Attribution overhead smoke test (run explicitly: `cargo test --release
//! --test ledger_overhead -- --ignored`).
//!
//! The attribution record sites bracket every superstep invocation in the
//! executor's hot loop. Disabled (the default), the shard is `None`: each
//! site is a branch with no clock read and no allocation. Enabled, each
//! observation writes into a table preallocated at worker construction.
//! This binary installs a counting global allocator and asserts both
//! properties, mirroring `metrics_overhead`: a default run performs zero
//! additional allocations versus an identical default run, and an armed
//! run's surplus is bounded by the one-time setup (one boxed shard per
//! worker plus the driver-side row assembly) — far below the per-superstep
//! invocation count, so a per-record allocation would blow the budget.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tempograph::prelude::*;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
#[ignore]
fn disabled_attribution_adds_zero_hot_path_allocations() {
    const TIMESTEPS: usize = 24;
    let t = Arc::new(tempograph::gen::road_network(&RoadNetConfig {
        width: 12,
        height: 12,
        seed: 0xFACADE,
        ..Default::default()
    }));
    let coll = Arc::new(tempograph::gen::generate_sir_tweets(
        t.clone(),
        &SirConfig {
            timesteps: TIMESTEPS,
            hit_prob: 0.4,
            initial_infected: 4,
            infectious_steps: 3,
            background_rate: 0.08,
            ..Default::default()
        },
    ));
    let meme = "#meme0".to_string();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let parts = MultilevelPartitioner::default().partition(&t, 3);
    let pg = Arc::new(discover_subgraphs(t.clone(), parts));
    let src = InstanceSource::Memory(coll);

    let run = |config: JobConfig<VertexIdx>| {
        let armed = config.attribution;
        let r = run_job(
            &pg,
            &src,
            MemeTracking::factory(meme.clone(), tweets_col),
            config,
        );
        assert_eq!(r.timesteps_run, TIMESTEPS);
        assert_eq!(r.attribution.is_some(), armed);
        if let Some(attr) = &r.attribution {
            // The workload must actually exercise the record sites: every
            // subgraph invoked at every timestep.
            let invocations: u64 = attr.rows.iter().map(|row| u64::from(row.invocations)).sum();
            assert!(
                invocations > 200,
                "only {invocations} attributed invocations — workload too small"
            );
        }
    };
    // Warm caches, lazy statics, and the allocator.
    run(JobConfig::sequentially_dependent(TIMESTEPS));

    let best = |mk: &dyn Fn() -> JobConfig<VertexIdx>| {
        (0..3)
            .map(|_| allocations_during(|| run(mk())))
            .min()
            .unwrap()
    };
    let plain = best(&|| JobConfig::sequentially_dependent(TIMESTEPS));
    let plain_again = best(&|| JobConfig::sequentially_dependent(TIMESTEPS));
    let armed = best(&|| JobConfig::sequentially_dependent(TIMESTEPS).with_attribution());

    // Disabled is the default: two identical default runs must allocate
    // identically — the `Option<Box<AttributionShard>>` is `None` and every
    // record site is a branch on it, with no `TraceSink::now` read.
    assert_eq!(
        plain, plain_again,
        "attribution-disabled runs must be allocation-reproducible"
    );

    // Enabled, the whole surplus budget is the setup: one boxed shard per
    // worker (subgraph-id list + two preallocated tables) and the
    // driver-side row assembly — fixed costs regardless of how many
    // supersteps record into the table. The budget sits well below the
    // >200 invocations asserted above, so a per-record allocation leak
    // would trip it.
    assert!(
        armed <= plain + 128,
        "attribution record path allocates per event: {armed} armed vs {plain} plain"
    );
}
