//! Recovery-equivalence harness: a TI-BSP job that is killed by an injected
//! fault and restarted from its latest checkpoint must produce output
//! **byte-identical** to an undisturbed run — same emitted values (as f64
//! bit patterns), same counters, same final per-subgraph program state.
//!
//! The engine's determinism (delivery sorted by globally unique
//! `(from, seq)`) plus complete inter-timestep state capture (program
//! state, pending cross-timestep/merge inboxes, sequence counters) make
//! this a hard equality, not an approximation. Every paper algorithm is
//! exercised at 3 and 6 partitions with crashes at every checkpoint
//! boundary, plus torn-checkpoint-write and transient-send-failure cases.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use tempograph::engine::{checkpoint_path, latest_valid, read_manifest, WorkerCheckpoint};
use tempograph::gofs::GofsError;
use tempograph::prelude::*;

/// (track, event name, optional (key, value) arg) — one trace event.
type FaultEvent = (u32, &'static str, Option<(&'static str, u64)>);

const TIMESTEPS: usize = 8;
/// Checkpoint every 2 timesteps: boundaries after t = 1, 3, 5, 7.
const EVERY: usize = 2;

fn road(width: usize, height: usize, seed: u64) -> Arc<GraphTemplate> {
    Arc::new(tempograph::gen::road_network(&RoadNetConfig {
        width,
        height,
        seed,
        ..Default::default()
    }))
}

fn partitioned(t: &Arc<GraphTemplate>, k: usize) -> Arc<PartitionedGraph> {
    let p = MultilevelPartitioner::default().partition(t, k);
    Arc::new(discover_subgraphs(t.clone(), p))
}

fn road_fixture() -> (Arc<GraphTemplate>, InstanceSource) {
    let t = road(10, 10, 0xD15EA5E);
    let coll = Arc::new(tempograph::gen::generate_road_latencies(
        t.clone(),
        &RoadLatencyConfig {
            timesteps: TIMESTEPS,
            period: 50,
            min_latency: 4.0,
            max_latency: 60.0,
            seed: 13,
            ..Default::default()
        },
    ));
    (t, InstanceSource::Memory(coll))
}

fn tweet_fixture() -> (Arc<GraphTemplate>, InstanceSource, SirConfig) {
    let t = road(12, 12, 0xFACADE);
    let cfg = SirConfig {
        timesteps: TIMESTEPS,
        hit_prob: 0.4,
        initial_infected: 4,
        infectious_steps: 3,
        background_rate: 0.08,
        ..Default::default()
    };
    let coll = Arc::new(tempograph::gen::generate_sir_tweets(t.clone(), &cfg));
    (t, InstanceSource::Memory(coll), cfg)
}

/// Fresh, private checkpoint directory for one test case.
fn ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("recov-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything observable about a run, in canonical order, floats as bit
/// patterns. Equal fingerprints ⇔ byte-identical runs.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    emitted: Vec<(usize, u32, u64)>,
    counters: BTreeMap<String, Vec<u64>>,
    timesteps_run: usize,
    final_states: Vec<(u32, Vec<u8>)>,
}

fn fingerprint(r: &JobResult) -> Fingerprint {
    Fingerprint {
        emitted: r
            .emitted
            .iter()
            .map(|e| (e.timestep, e.vertex.0, e.value.to_bits()))
            .collect(),
        counters: r
            .counters
            .iter()
            .map(|(name, per_t)| {
                (
                    name.clone(),
                    per_t.iter().map(|per_p| per_p.iter().sum()).collect(),
                )
            })
            .collect(),
        timesteps_run: r.timesteps_run,
        final_states: r
            .final_states
            .iter()
            .map(|(sg, bytes)| (sg.0, bytes.clone()))
            .collect(),
    }
}

/// Run `factory` clean, then again with `crashes` injected (worker `p`
/// killed at `(timestep, superstep)`) and checkpointing every `EVERY`
/// timesteps; assert the recovered run fired every crash and is
/// byte-identical to the clean one.
fn assert_crash_equivalent<P, F>(
    label: &str,
    pg: &Arc<PartitionedGraph>,
    src: &InstanceSource,
    factory: F,
    mk_cfg: impl Fn() -> JobConfig<P::Msg>,
    crashes: &[(u16, usize, usize)],
) where
    P: SubgraphProgram,
    F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync,
{
    let clean = run_job(pg, src, &factory, mk_cfg());
    assert_eq!(clean.recoveries, 0, "{label}: clean run must not recover");

    let dir = ckpt_dir(label);
    let mut plan = FaultPlan::new();
    for &(p, t, ss) in crashes {
        plan = plan.panic_at(p, t, ss);
    }
    let crashed = run_job(
        pg,
        src,
        &factory,
        mk_cfg().with_checkpoint(EVERY, &dir).with_faults(plan),
    );
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        crashed.recoveries,
        crashes.len(),
        "{label}: every scheduled crash must fire and be recovered"
    );
    assert_eq!(
        fingerprint(&clean),
        fingerprint(&crashed),
        "{label}: recovered run must be byte-identical to the clean one"
    );
}

/// SSSP and WCC run one timestep; the crash lands mid-BSP (superstep 1,
/// never a checkpoint superstep), so recovery restarts from scratch — the
/// no-committed-checkpoint degenerate case must still be equivalent.
#[test]
fn sssp_recovers_byte_identical_at_3_and_6_partitions() {
    let (t, src) = road_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_crash_equivalent(
            &format!("sssp-k{k}"),
            &pg,
            &src,
            Sssp::factory(VertexIdx(0), Some(lat_col)),
            || JobConfig::independent(1),
            &[(1, 0, 1)],
        );
    }
}

#[test]
fn wcc_recovers_byte_identical_at_3_and_6_partitions() {
    let (t, src) = road_fixture();
    for k in [3, 6] {
        let pg = partitioned(&t, k);
        assert_crash_equivalent(
            &format!("wcc-k{k}"),
            &pg,
            &src,
            Wcc::factory(),
            || JobConfig::independent(1),
            &[(2 % k as u16, 0, 1)],
        );
    }
}

/// Meme tracking (sequentially dependent): one worker dies at superstep 0
/// of the timestep after *every* checkpoint boundary.
#[test]
fn meme_recovers_byte_identical_at_3_and_6_partitions() {
    let (t, src, cfg) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    for k in [3usize, 6] {
        let pg = partitioned(&t, k);
        let crashes: Vec<(u16, usize, usize)> = (EVERY..TIMESTEPS)
            .step_by(EVERY)
            .enumerate()
            .map(|(i, t)| ((i % k) as u16, t, 0))
            .collect();
        assert_crash_equivalent(
            &format!("meme-k{k}"),
            &pg,
            &src,
            MemeTracking::factory(cfg.meme.clone(), tweets_col),
            || JobConfig::sequentially_dependent(TIMESTEPS),
            &crashes,
        );
    }
}

/// TDSP (sequentially dependent, WhileActive): crashes at every checkpoint
/// boundary that the clean run actually reaches.
#[test]
fn tdsp_recovers_byte_identical_at_3_and_6_partitions() {
    let (t, src) = road_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    for k in [3usize, 6] {
        let pg = partitioned(&t, k);
        let mk_cfg = || JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS);
        let clean = run_job(&pg, &src, Tdsp::factory(VertexIdx(0), lat_col), mk_cfg());
        let crashes: Vec<(u16, usize, usize)> = (EVERY..clean.timesteps_run)
            .step_by(EVERY)
            .enumerate()
            .map(|(i, t)| ((i % k) as u16, t, 0))
            .collect();
        assert!(
            !crashes.is_empty(),
            "tdsp-k{k}: fixture must survive past the first checkpoint boundary \
             (ran {} timesteps)",
            clean.timesteps_run
        );
        assert_crash_equivalent(
            &format!("tdsp-k{k}"),
            &pg,
            &src,
            Tdsp::factory(VertexIdx(0), lat_col),
            mk_cfg,
            &crashes,
        );
    }
}

/// Hashtag aggregation (eventually dependent): crashes inside the timestep
/// loop *and* inside the Merge BSP (timestep index == TIMESTEPS), whose
/// pending merge inbox must survive via the checkpoint.
#[test]
fn hashtag_recovers_byte_identical_including_merge_phase_crash() {
    let (t, src, _) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    for k in [3usize, 6] {
        let pg = partitioned(&t, k);
        assert_crash_equivalent(
            &format!("hash-k{k}"),
            &pg,
            &src,
            HashtagAggregation::factory("#meme", tweets_col),
            || JobConfig::eventually_dependent(TIMESTEPS),
            &[(0, 2, 0), (1, 4, 0), (1, TIMESTEPS, 0)],
        );
    }
}

/// Transient send failures are retried, counted, and change nothing else.
#[test]
fn transient_send_failures_are_counted_and_harmless() {
    let (t, src) = road_fixture();
    let pg = partitioned(&t, 3);
    let clean = run_job(&pg, &src, Wcc::factory(), JobConfig::independent(1));

    let mut plan = FaultPlan::new();
    for p in 0..3 {
        plan = plan.fail_send_at(p, 0, 0);
    }
    let flaky = run_job(
        &pg,
        &src,
        Wcc::factory(),
        JobConfig::independent(1).with_faults(plan),
    );
    assert_eq!(
        flaky.recoveries, 0,
        "send failures must not trigger recovery"
    );
    let retries: u64 = flaky.metrics.iter().flatten().map(|m| m.send_retries).sum();
    assert!(
        retries > 0,
        "at least one remote batch must have been retried"
    );
    assert_eq!(fingerprint(&clean), fingerprint(&flaky));
}

/// A worker killed halfway through writing its checkpoint file must leave
/// only a `.tmp` staging file behind: recovery resumes from the *previous*
/// manifest entry, the job still finishes byte-identical, and no staging
/// files survive to the end.
#[test]
fn mid_checkpoint_write_crash_resumes_from_previous_boundary() {
    let (t, src, cfg) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let pg = partitioned(&t, 3);
    let factory = MemeTracking::factory(cfg.meme.clone(), tweets_col);

    let clean = run_job(
        &pg,
        &src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS),
    );

    let dir = ckpt_dir("midwrite");
    let crashed = run_job(
        &pg,
        &src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS)
            .with_checkpoint(EVERY, &dir)
            .with_faults(FaultPlan::new().panic_in_checkpoint(1, 3))
            .with_trace(TraceConfig::new()),
    );

    assert_eq!(crashed.recoveries, 1);
    assert_eq!(fingerprint(&clean), fingerprint(&crashed));

    // The torn write at t=3 was invisible: recovery resumed from t=1.
    let trace = crashed.trace.as_ref().expect("trace attached");
    let attempts = trace.instants("recovery.attempt");
    assert_eq!(attempts.len(), 1);
    assert_eq!(attempts[0].2, Some(("resume_t", 1)));

    // After completion every boundary is committed and no staging file
    // survives (the re-executed checkpoint replaced the torn `.tmp`).
    assert_eq!(
        latest_valid::<VertexIdx>(&dir, 3),
        Some(TIMESTEPS as u64 - 1)
    );
    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(
            !name.to_string_lossy().ends_with(".tmp"),
            "staging file left behind: {name:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Corrupted checkpoint files are rejected with *typed* codec errors and
/// `latest_valid` silently falls back to the previous manifest entry.
#[test]
fn corrupted_checkpoints_fall_back_with_typed_errors() {
    let (t, src, cfg) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let pg = partitioned(&t, 3);

    let dir = ckpt_dir("corrupt");
    run_job(
        &pg,
        &src,
        MemeTracking::factory(cfg.meme.clone(), tweets_col),
        JobConfig::sequentially_dependent(TIMESTEPS).with_checkpoint(EVERY, &dir),
    );

    let manifest = read_manifest(&dir).unwrap();
    assert_eq!(manifest.timesteps, vec![1, 3, 5, 7]);
    assert_eq!(latest_valid::<VertexIdx>(&dir, 3), Some(7));

    let newest = checkpoint_path(&dir, 7, 0);
    let pristine = std::fs::read(&newest).unwrap();
    assert!(WorkerCheckpoint::<VertexIdx>::decode(&pristine).is_ok());

    // Bit-flip in the payload → checksum mismatch.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    assert!(matches!(
        WorkerCheckpoint::<VertexIdx>::decode(&flipped),
        Err(GofsError::ChecksumMismatch { .. })
    ));

    // Truncation → structurally corrupt.
    assert!(matches!(
        WorkerCheckpoint::<VertexIdx>::decode(&pristine[..pristine.len() - 9]),
        Err(GofsError::Corrupt(_))
    ));

    // Stale format version → typed rejection, not a mis-decode.
    let mut stale = pristine.clone();
    stale[4] = 0xFF;
    assert!(matches!(
        WorkerCheckpoint::<VertexIdx>::decode(&stale),
        Err(GofsError::UnsupportedVersion(_))
    ));

    // Wrong magic → BadMagic.
    let mut evil = pristine.clone();
    evil[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        WorkerCheckpoint::<VertexIdx>::decode(&evil),
        Err(GofsError::BadMagic { .. })
    ));

    // A corrupted newest entry makes recovery fall back to t=5 — no panic.
    std::fs::write(&newest, &flipped).unwrap();
    assert_eq!(latest_valid::<VertexIdx>(&dir, 3), Some(5));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same `FaultPlan` seed must reproduce the same injected failures and
/// the same fault/checkpoint/recovery trace event sequence across runs.
#[test]
fn seeded_fault_runs_reproduce_trace_sequences() {
    let (t, src, cfg) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let pg = partitioned(&t, 3);
    let factory = MemeTracking::factory(cfg.meme.clone(), tweets_col);
    const SEED: u64 = 0xC0FFEE;

    let clean = run_job(
        &pg,
        &src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS),
    );

    let run_seeded = |tag: &str| {
        let dir = ckpt_dir(tag);
        let r = run_job(
            &pg,
            &src,
            &factory,
            JobConfig::sequentially_dependent(TIMESTEPS)
                .with_checkpoint(EVERY, &dir)
                .with_faults(FaultPlan::from_seed(SEED, 3, TIMESTEPS))
                .with_trace(TraceConfig::new()),
        );
        let _ = std::fs::remove_dir_all(&dir);
        r
    };
    let a = run_seeded("seed-a");
    let b = run_seeded("seed-b");

    // Same failures injected, same results, both equal to clean.
    assert!(
        a.recoveries > 0,
        "seed 0x{SEED:X} must inject at least one death"
    );
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(fingerprint(&clean), fingerprint(&a));
    assert_eq!(fingerprint(&clean), fingerprint(&b));

    // Same fault/checkpoint/recovery event sequence, track by track.
    let fault_events = |r: &JobResult| -> Vec<FaultEvent> {
        let mut seq = Vec::new();
        for track in &r.trace.as_ref().unwrap().tracks {
            for ev in &track.events {
                let (name, arg) = match *ev {
                    tempograph::trace::TraceEvent::Span { name, arg, .. } => (name, arg),
                    tempograph::trace::TraceEvent::Instant { name, arg, .. } => (name, arg),
                    tempograph::trace::TraceEvent::Counter { name, value, .. } => {
                        (name, Some(("value", value)))
                    }
                };
                if name.starts_with("fault.")
                    || name.starts_with("checkpoint.")
                    || name.starts_with("recovery.")
                {
                    seq.push((track.track, name, arg));
                }
            }
        }
        seq
    };
    let seq_a = fault_events(&a);
    let seq_b = fault_events(&b);
    assert!(
        !seq_a.is_empty(),
        "a seeded crash run must record fault/checkpoint/recovery events"
    );
    assert_eq!(
        seq_a, seq_b,
        "same seed must replay the same event sequence"
    );
}

// === TCP transport fault injection ======================================
//
// The same guarantees must hold when partitions talk over real sockets:
// damaged frames (dropped, duplicated, reordered, corrupted in flight) are
// repaired by retransmit/dedup without touching the output, and a worker
// *process* killed mid-superstep is respawned and resumes from the latest
// checkpoint, byte-identical to the fault-free run.

fn sockets_available() -> bool {
    match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(_) => true,
        Err(e) => {
            eprintln!("NOTICE: loopback sockets unavailable ({e}); skipping TCP test");
            false
        }
    }
}

/// All four frame-fault kinds injected into a TCP thread cluster: the job
/// neither recovers nor diverges, and the lossy kinds are visibly repaired
/// (retransmit counter ticks).
#[test]
fn tcp_frame_faults_are_repaired_and_output_neutral() {
    use tempograph::engine::FrameFault;
    if !sockets_available() {
        return;
    }
    let (t, src, cfg) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let pg = partitioned(&t, 3);
    let factory = MemeTracking::factory(cfg.meme.clone(), tweets_col);

    let clean = run_job(
        &pg,
        &src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS),
    );

    let plan = FaultPlan::new()
        .frame_fault_at(0, 1, FrameFault::Drop)
        .frame_fault_at(1, 2, FrameFault::Duplicate)
        .frame_fault_at(2, 1, FrameFault::Reorder)
        .frame_fault_at(0, 3, FrameFault::Truncate);
    let faulted = run_job_tcp(
        &pg,
        &src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS).with_faults(plan),
        Cluster::Threads,
    )
    .expect("frame faults must not kill the job");

    assert_eq!(
        faulted.recoveries, 0,
        "frame faults are repaired in-protocol, not via recovery"
    );
    let retries: u64 = faulted
        .metrics
        .iter()
        .flatten()
        .map(|m| m.send_retries)
        .sum();
    assert!(
        retries >= 2,
        "Drop and Truncate must each force a retransmission (saw {retries})"
    );
    assert_eq!(
        fingerprint(&clean),
        fingerprint(&faulted),
        "frame faults must be invisible in the output"
    );
}

/// A seeded frame-fault schedule (the fuzz entry point) is equally
/// invisible, and the same seed injects the same schedule twice.
#[test]
fn tcp_seeded_frame_faults_match_the_fault_free_run() {
    if !sockets_available() {
        return;
    }
    let (t, src) = road_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let pg = partitioned(&t, 3);
    let factory = Tdsp::factory(VertexIdx(0), lat_col);
    let mk_cfg = || JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS);

    let clean = run_job(&pg, &src, &factory, mk_cfg());
    let run_seeded = || {
        run_job_tcp(
            &pg,
            &src,
            &factory,
            mk_cfg().with_faults(FaultPlan::new().with_frame_faults_from_seed(0xF8A7, 3, 12)),
            Cluster::Threads,
        )
        .expect("seeded frame faults must not kill the job")
    };
    let a = run_seeded();
    let b = run_seeded();
    assert_eq!(fingerprint(&clean), fingerprint(&a));
    assert_eq!(fingerprint(&clean), fingerprint(&b));
}

/// A TCP worker (thread cluster) killed mid-superstep: the coordinator
/// tears the epoch down, respawns, resumes from the latest checkpoint, and
/// the output is byte-identical.
#[test]
fn tcp_worker_death_recovers_from_checkpoint_byte_identical() {
    if !sockets_available() {
        return;
    }
    let (t, src, cfg) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let pg = partitioned(&t, 3);
    let factory = MemeTracking::factory(cfg.meme.clone(), tweets_col);

    let clean = run_job(
        &pg,
        &src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS),
    );

    let dir = ckpt_dir("tcp-threads");
    let recovered = run_job_tcp(
        &pg,
        &src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS)
            .with_checkpoint(EVERY, &dir)
            .with_faults(FaultPlan::new().panic_at(1, 2, 0)),
        Cluster::Threads,
    )
    .expect("the killed worker must be recovered");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(recovered.recoveries, 1);
    assert_eq!(fingerprint(&clean), fingerprint(&recovered));
}

/// The full drill: real worker *processes* over a GoFS dataset, one of
/// them killed mid-superstep by an injected panic (exit code, not a panic
/// payload, is the evidence that crosses the process boundary). The
/// coordinator attributes the death, respawns the cluster with the fault
/// latched as fired, resumes from the latest checkpoint, and the result is
/// byte-identical to the in-process fault-free run.
#[test]
fn killed_worker_process_resumes_from_checkpoint_byte_identical() {
    if !sockets_available() {
        return;
    }
    let (t, src, cfg) = tweet_fixture();
    let InstanceSource::Memory(coll) = &src else {
        unreachable!()
    };
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let data_dir = std::env::temp_dir().join(format!("recov-eq-gofs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let pg = partitioned(&t, 3);
    tempograph::gofs::store::write_dataset(&data_dir, pg.clone(), coll, 2, 2).unwrap();

    let store = GofsStore::open(&data_dir).unwrap();
    let pg = Arc::new(store.partitioned_graph());
    let gofs_src = InstanceSource::Gofs(data_dir.clone());
    let factory = MemeTracking::factory(cfg.meme.clone(), tweets_col);

    let clean = run_job(
        &pg,
        &gofs_src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS),
    );

    let plan = FaultPlan::new().panic_at(1, 2, 0);
    let spec = plan.to_spec();
    let ck_dir = ckpt_dir("tcp-process");
    let worker_args: Vec<String> = vec![
        "worker".into(),
        "--data".into(),
        data_dir.to_str().unwrap().into(),
        "--algo".into(),
        "meme".into(),
        "--timesteps".into(),
        TIMESTEPS.to_string(),
        "--meme".into(),
        cfg.meme.clone(),
        "--checkpoint-every".into(),
        EVERY.to_string(),
        "--checkpoint-dir".into(),
        ck_dir.to_str().unwrap().into(),
        "--faults".into(),
        spec,
    ];
    let recovered = run_job_tcp(
        &pg,
        &gofs_src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS)
            .with_checkpoint(EVERY, &ck_dir)
            .with_faults(plan),
        Cluster::Processes {
            worker_bin: env!("CARGO_BIN_EXE_tempograph").into(),
            worker_args,
        },
    )
    .expect("the killed worker process must be recovered");
    let _ = std::fs::remove_dir_all(&ck_dir);
    let _ = std::fs::remove_dir_all(&data_dir);

    assert_eq!(
        recovered.recoveries, 1,
        "exactly one process death must fire and be recovered"
    );
    assert_eq!(
        fingerprint(&clean),
        fingerprint(&recovered),
        "the recovered process cluster must match the fault-free run"
    );
}

/// Normalised registry content: counter values verbatim except measured
/// `_ns_total` time, histograms reduced to their (deterministic)
/// observation counts, gauges to exact bits.
fn registry_fingerprint(label: &str, r: &JobResult) -> Vec<String> {
    use tempograph::metrics::Metric;
    let reg = r
        .registry
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: result lacks a registry"));
    reg.snapshot()
        .metrics
        .iter()
        .map(|e| {
            let labels: Vec<String> = e
                .key
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let id = format!("{}[{}]", e.key.name, labels.join(","));
            match &e.value {
                Metric::Counter(_) if e.key.name.ends_with("_ns_total") => {
                    format!("{id} measured-ns")
                }
                Metric::Counter(c) => format!("{id} counter {c}"),
                Metric::Gauge(g) => format!("{id} gauge-bits {:016x}", g.to_bits()),
                Metric::Histogram(h) => format!("{id} histogram-count {}", h.count()),
            }
        })
        .collect()
}

/// A TCP worker dies *between* shipping its telemetry flush for a
/// completed timestep and the next barrier. The coordinator has already
/// ingested that flush — but the epoch fails, so `CoordTelemetry` resets
/// and the respawned epoch re-ships **cumulative** shard/attribution
/// snapshots (replace-not-add merge): the committed observations are not
/// lost, and re-shipping cannot double count. Both a recovered in-process
/// run and a recovered TCP run cover the final successful attempt, so
/// their merged registries and attribution tables must be identical —
/// and the deterministic output must still match a clean run.
#[test]
fn tcp_death_between_telemetry_flush_and_barrier_neither_loses_nor_double_counts() {
    if !sockets_available() {
        return;
    }
    let (t, src, cfg) = tweet_fixture();
    let tweets_col = t.vertex_schema().index_of(TWEETS_ATTR).unwrap();
    let pg = partitioned(&t, 3);
    let factory = MemeTracking::factory(cfg.meme.clone(), tweets_col);
    // Worker 1 dies at (t = 2, superstep 0): it has flushed telemetry for
    // timesteps 0 and 1 (one flush per barrier round) and passed the
    // t = 1 checkpoint boundary, then dies before reaching any t = 2
    // barrier — exactly the flush/barrier gap under test.
    let mk_cfg = |dir: &PathBuf| {
        JobConfig::sequentially_dependent(TIMESTEPS)
            .with_metrics()
            .with_attribution()
            .with_checkpoint(EVERY, dir)
            .with_faults(FaultPlan::new().panic_at(1, 2, 0))
    };

    let clean = run_job(
        &pg,
        &src,
        &factory,
        JobConfig::sequentially_dependent(TIMESTEPS),
    );

    let local_dir = ckpt_dir("telem-flush-local");
    let local = run_job(&pg, &src, &factory, mk_cfg(&local_dir));
    let _ = std::fs::remove_dir_all(&local_dir);

    let tcp_dir = ckpt_dir("telem-flush-tcp");
    let tcp = run_job_tcp(&pg, &src, &factory, mk_cfg(&tcp_dir), Cluster::Threads)
        .expect("the killed worker must be recovered");
    let _ = std::fs::remove_dir_all(&tcp_dir);

    assert_eq!(local.recoveries, 1, "in-process fault must fire once");
    assert_eq!(tcp.recoveries, 1, "tcp fault must fire once");
    assert_eq!(
        fingerprint(&clean),
        fingerprint(&tcp),
        "recovered TCP output must match the clean run"
    );
    assert_eq!(
        registry_fingerprint("local", &local),
        registry_fingerprint("tcp", &tcp),
        "recovered registries must match: a lost flush would lower the \
         histogram counts, a double-merged one would raise them"
    );
    let attr_rows = |label: &str, r: &JobResult| -> Vec<(u32, u32, u32)> {
        r.attribution
            .as_ref()
            .unwrap_or_else(|| panic!("{label}: result lacks attribution"))
            .rows
            .iter()
            .map(|row| (row.subgraph.0, row.timestep, row.invocations))
            .collect()
    };
    let local_attr = attr_rows("local", &local);
    assert!(
        !local_attr.is_empty(),
        "recovered run must carry attribution rows"
    );
    assert_eq!(
        local_attr,
        attr_rows("tcp", &tcp),
        "recovered attribution must match per (subgraph, timestep)"
    );
}

/// Checkpointing a run that never crashes must not change its output, and
/// must leave a decodable set of files for every boundary.
#[test]
fn checkpointing_without_faults_is_output_neutral() {
    let (t, src) = road_fixture();
    let lat_col = t.edge_schema().index_of(LATENCY_ATTR).unwrap();
    let pg = partitioned(&t, 3);
    let mk_cfg = || JobConfig::sequentially_dependent(TIMESTEPS).while_active(TIMESTEPS);

    let plain = run_job(&pg, &src, Tdsp::factory(VertexIdx(0), lat_col), mk_cfg());
    let dir = ckpt_dir("neutral");
    let ticked = run_job(
        &pg,
        &src,
        Tdsp::factory(VertexIdx(0), lat_col),
        mk_cfg().with_checkpoint(EVERY, &dir),
    );
    assert_eq!(fingerprint(&plain), fingerprint(&ticked));
    assert_eq!(ticked.recoveries, 0);
    // Every committed boundary decodes for every partition.
    let manifest = read_manifest(&dir).unwrap();
    assert!(!manifest.timesteps.is_empty());
    assert_eq!(
        latest_valid::<tempograph::algos::tdsp::TdspMsg>(&dir, 3),
        manifest.timesteps.last().copied()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
