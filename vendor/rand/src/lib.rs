//! Offline vendored subset of the `rand` crate.
//!
//! Provides the API surface the workspace uses — `StdRng` seeded with
//! `seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle` — backed by xoshiro256** with splitmix64
//! seeding. The stream differs from upstream `rand`'s `StdRng` (ChaCha12),
//! which is fine: every consumer in this workspace only requires
//! determinism for a fixed seed, never a specific stream.

/// Raw 64-bit generator core.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types generatable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The drawn value's type.
    type Output;
    /// Draw uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased draw from `[0, n)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($ty:ty) => {
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $ty
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is valid.
                    return <$ty>::sample_range_full(rng);
                }
                (lo as i128 + uniform_u64(rng, span) as i128) as $ty
            }
        }
    };
}

/// Helper for full-width inclusive ranges.
trait SampleRangeFull {
    fn sample_range_full<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}
macro_rules! full_width {
    ($ty:ty) => {
        impl SampleRangeFull for $ty {
            fn sample_range_full<R: RngCore + ?Sized>(rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    };
}
full_width!(u8);
full_width!(u16);
full_width!(u32);
full_width!(u64);
full_width!(usize);
full_width!(i32);
full_width!(i64);

int_range!(u8);
int_range!(u16);
int_range!(u32);
int_range!(u64);
int_range!(usize);
int_range!(i32);
int_range!(i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a [`Standard`] value (uniform `f64` in `[0, 1)`, etc.).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64. Deterministic for a fixed seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (super::uniform_u64(rng, i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(1u8..=255);
            assert!(i >= 1);
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
