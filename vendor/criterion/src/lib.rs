//! Offline vendored subset of the `criterion` crate.
//!
//! Supports the benchmarking surface this workspace uses: `Criterion` with
//! `sample_size`/`bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box`, and both forms of `criterion_group!` plus
//! `criterion_main!`. Reports min/median/max ns-per-iteration to stdout;
//! no plots, no statistical regression analysis.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (shim: only controls batch caps).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs; large batches are fine.
    SmallInput,
    /// Large per-iteration inputs; keep batches small.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

impl BatchSize {
    fn max_batch(self) -> u64 {
        match self {
            BatchSize::SmallInput => 4096,
            BatchSize::LargeInput => 64,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Benchmark driver; collects samples and prints a summary line.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark, timing whatever `f` passes to the [`Bencher`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Target wall time per recorded sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(4);
/// Wall time spent warming up before sampling.
const WARMUP_TARGET: Duration = Duration::from_millis(40);

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Estimate the cost of one routine call (also serves as warm-up).
    fn calibrate<R: FnMut()>(&self, routine: &mut R) -> u64 {
        let start = Instant::now();
        let mut calls = 0u64;
        while start.elapsed() < WARMUP_TARGET {
            routine();
            calls += 1;
            if calls >= 1_000_000 {
                break;
            }
        }
        let per_call = start.elapsed().as_nanos() as u64 / calls.max(1);
        // Iterations per sample so one sample lasts ~SAMPLE_TARGET.
        (SAMPLE_TARGET.as_nanos() as u64 / per_call.max(1)).clamp(1, 10_000_000)
    }

    /// Time `routine` repeatedly; the return value is black-boxed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.calibrate(&mut || {
            black_box(routine());
        });
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is not
    /// included in the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = {
            let mut input = Some(setup());
            let mut probe = || {
                let v = input.take().unwrap_or_else(&mut setup);
                black_box(routine(v));
            };
            self.calibrate(&mut probe).min(size.max_batch())
        };
        for _ in 0..self.sample_size {
            let batch: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in batch {
                black_box(routine(input));
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples recorded)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        println!(
            "{id:<40} time: [{} {} {}]",
            fmt_ns(s[0]),
            fmt_ns(median),
            fmt_ns(s[s.len() - 1]),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target_a(c: &mut Criterion) {
        c.bench_function("shim_iter", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
    }

    fn target_b(c: &mut Criterion) {
        c.bench_function("shim_iter_batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group!(
        name = configured;
        config = Criterion::default().sample_size(5);
        targets = target_a, target_b
    );
    criterion_group!(plain, target_a);

    #[test]
    fn groups_run() {
        configured();
        plain();
    }
}
