//! Offline vendored subset of the `proptest` crate.
//!
//! Implements the property-testing API surface this workspace uses:
//! the `proptest!` macro, `any`, range and string-pattern strategies,
//! `prop_map`/`prop_filter`/`prop_flat_map`/`boxed`, `prop_oneof!`, `Just`,
//! tuple strategies, `collection::{vec, hash_set}`, `option::of`, and a
//! deterministic `TestRunner`. Differences from upstream: no shrinking
//! (failures report the raw generated case via the panic message), and
//! generation is always deterministic for reproducible CI. Case count
//! comes from `PROPTEST_CASES` (default 64).

pub mod test_runner {
    use rand::{rngs::StdRng, RngCore, SeedableRng};

    /// Why a test case did not run to completion.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected (e.g. by `prop_assume!`); it counts as
        /// skipped, not failed.
        Reject(&'static str),
    }

    /// Drives test-case generation. Holds the RNG strategies draw from.
    pub struct TestRunner {
        rng: StdRng,
        cases: u32,
    }

    fn default_cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }

    impl TestRunner {
        /// A runner with a fixed seed — every run generates the same cases.
        pub fn deterministic() -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x7465_6d70_6f67_7261),
                cases: default_cases(),
            }
        }

        /// Run `test` against `cases` generated values. Rejected cases are
        /// regenerated (up to a cap); the first panic propagates as the
        /// test failure.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
        where
            S: crate::strategy::Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let target = self.cases;
            let max_attempts = target.saturating_mul(16).max(256);
            let mut passed = 0u32;
            let mut attempts = 0u32;
            while passed < target && attempts < max_attempts {
                attempts += 1;
                let value = strategy.generate(self);
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {}
                }
            }
            if passed == 0 {
                return Err(format!(
                    "all {attempts} generated cases were rejected (prop_assume too strict?)"
                ));
            }
            Ok(())
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::deterministic()
        }
    }

    impl RngCore for TestRunner {
        fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// A generated value plus (in upstream proptest) its shrink tree. This
    /// shim keeps only the value.
    pub struct ValueTree<V>(pub(crate) V);

    impl<V: Clone> ValueTree<V> {
        /// The current (= originally generated) value.
        pub fn current(&self) -> V {
            self.0.clone()
        }
    }

    /// Something that can generate values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Draw one value wrapped in a [`ValueTree`] (upstream-compatible
        /// entry point used with an explicit runner).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<Self::Value>, String> {
            Ok(ValueTree(self.generate(runner)))
        }

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Regenerate until `pred` accepts the value.
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Generate a value, then generate from the strategy it selects.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            self.0.generate(runner)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, runner: &mut TestRunner) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(runner);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.reason
            );
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, runner: &mut TestRunner) -> S2::Value {
            (self.f)(self.inner.generate(runner)).generate(runner)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// A strategy choosing uniformly among `options`.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            let i = runner.gen_range(0..self.options.len());
            self.options[i].generate(runner)
        }
    }

    macro_rules! range_strategy {
        ($ty:ty) => {
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, runner: &mut TestRunner) -> $ty {
                    runner.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, runner: &mut TestRunner) -> $ty {
                    runner.gen_range(self.clone())
                }
            }
        };
    }
    range_strategy!(u8);
    range_strategy!(u16);
    range_strategy!(u32);
    range_strategy!(u64);
    range_strategy!(usize);
    range_strategy!(i32);
    range_strategy!(i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, runner: &mut TestRunner) -> f64 {
            runner.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Characters drawn for the `\PC` (any non-control) pattern class:
    /// printable ASCII plus multi-byte UTF-8 of widths 2, 3 and 4.
    const PRINTABLE_EXTRA: [char; 8] = ['é', 'µ', 'Ω', 'λ', '→', '中', '🦀', '😀'];

    fn pattern_alphabet(pat: &str) -> (Vec<char>, usize, usize) {
        let cs: Vec<char> = pat.chars().collect();
        assert!(
            cs.first() == Some(&'['),
            "unsupported string pattern (want `[set]{{min,max}}`): {pat}"
        );
        let mut alpha: Vec<char> = Vec::new();
        let mut i = 1;
        while i < cs.len() && cs[i] != ']' {
            if cs[i] == '\\' {
                match cs.get(i + 1) {
                    Some('P') => {
                        // `\PC`: any non-control character.
                        assert!(
                            cs.get(i + 2) == Some(&'C'),
                            "only the \\PC class is supported: {pat}"
                        );
                        alpha.extend((0x20u8..=0x7e).map(char::from));
                        alpha.extend(PRINTABLE_EXTRA);
                        i += 3;
                    }
                    Some('d') => {
                        alpha.extend('0'..='9');
                        i += 2;
                    }
                    Some(&escaped) => {
                        alpha.push(escaped);
                        i += 2;
                    }
                    None => panic!("dangling escape in pattern: {pat}"),
                }
            } else if cs.get(i + 1) == Some(&'-') && cs.get(i + 2).is_some_and(|&c| c != ']') {
                let (lo, hi) = (cs[i], cs[i + 2]);
                assert!(lo <= hi, "inverted range in pattern: {pat}");
                alpha.extend(lo..=hi);
                i += 3;
            } else {
                alpha.push(cs[i]);
                i += 1;
            }
        }
        assert!(cs.get(i) == Some(&']'), "unterminated char set: {pat}");
        i += 1;
        // Repetition: {n} or {min,max}; absent means exactly one.
        let (mut min, mut max) = (1usize, 1usize);
        if cs.get(i) == Some(&'{') {
            let close = cs[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition: {pat}"));
            let body: String = cs[i + 1..i + close].iter().collect();
            if let Some((a, b)) = body.split_once(',') {
                min = a.trim().parse().expect("repetition min");
                max = b.trim().parse().expect("repetition max");
            } else {
                min = body.trim().parse().expect("repetition count");
                max = min;
            }
            i += close + 1;
        }
        assert!(
            i == cs.len(),
            "trailing pattern syntax not supported: {pat}"
        );
        assert!(!alpha.is_empty(), "empty char set: {pat}");
        (alpha, min, max)
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, runner: &mut TestRunner) -> String {
            let (alpha, min, max) = pattern_alphabet(self);
            let len = runner.gen_range(min..=max);
            (0..len)
                .map(|_| alpha[runner.gen_range(0..alpha.len())])
                .collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw one unconstrained value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! arb_int {
        ($ty:ty) => {
            impl Arbitrary for $ty {
                fn arbitrary(runner: &mut TestRunner) -> $ty {
                    runner.next_u64() as $ty
                }
            }
        };
    }
    arb_int!(u8);
    arb_int!(u16);
    arb_int!(u32);
    arb_int!(u64);
    arb_int!(usize);
    arb_int!(i8);
    arb_int!(i16);
    arb_int!(i32);
    arb_int!(i64);
    arb_int!(isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> f64 {
            // Raw bit patterns: exercises subnormals, infinities and NaN.
            f64::from_bits(runner.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(runner: &mut TestRunner) -> f32 {
            f32::from_bits(runner.next_u64() as u32)
        }
    }

    impl Arbitrary for () {
        fn arbitrary(_runner: &mut TestRunner) {}
    }

    /// Strategy form of [`Arbitrary`]; construct with [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, runner: &mut TestRunner) -> usize {
            runner.gen_range(self.min..=self.max)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = self.size.sample(runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `HashSet` of values from `element`. Duplicates are retried a
    /// bounded number of times, so the set may come out smaller than the
    /// sampled size when the element domain is narrow.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> HashSet<S::Value> {
            let target = self.size.sample(runner);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0;
            while set.len() < target && attempts < target * 20 + 20 {
                attempts += 1;
                set.insert(self.element.generate(runner));
            }
            set
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    /// `Some` values from `inner` (3 in 4) or `None` (1 in 4).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(runner))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn` runs its body against generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let mut runner = $crate::test_runner::TestRunner::default();
                runner
                    .run(&strategy, |($($pat,)+)| {
                        $body
                        Ok(())
                    })
                    .unwrap();
            }
        )*
    };
}

/// Uniform choice among strategy arms yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a property body (fails the whole test; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any(x in 3u64..100, y in any::<u32>(), _z in any::<f64>()) {
            prop_assert!((3..100).contains(&x));
            let _ = y;
        }

        /// Doc comments and multi-strategy args parse.
        #[test]
        fn composites(
            v in crate::collection::vec((any::<u32>(), 0i64..5), 0..8),
            o in crate::option::of(any::<bool>()),
            s in "[a-z#]{0,12}",
            mut w in crate::collection::vec(any::<u8>(), 3usize),
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c == '#' || c.is_ascii_lowercase()));
            prop_assert_eq!(w.len(), 3);
            w.sort_unstable();
            let _ = o;
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }

        #[test]
        fn oneof_map_filter_flatmap(
            v in prop_oneof![Just(1u64), 10u64..20, any::<u64>().prop_filter("even", |x| x % 2 == 0)],
            (len, items) in (1usize..5).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(any::<u64>().prop_map(|x| x % 7), n))
            }),
        ) {
            prop_assert!(v == 1 || (10..20).contains(&v) || v % 2 == 0);
            prop_assert_eq!(items.len(), len);
            prop_assert!(items.iter().all(|&x| x < 7));
        }
    }

    #[test]
    fn deterministic_runner_and_new_tree() {
        let runner = &mut crate::test_runner::TestRunner::deterministic();
        let a = (0u64..1000).new_tree(runner).unwrap().current();
        let runner2 = &mut crate::test_runner::TestRunner::deterministic();
        let b = (0u64..1000).new_tree(runner2).unwrap().current();
        assert_eq!(a, b);
    }

    #[test]
    fn printable_pattern_excludes_controls() {
        let runner = &mut crate::test_runner::TestRunner::deterministic();
        for _ in 0..50 {
            let s = "[\\PC]{0,40}".generate(runner);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn boxed_strategies_erase_types() {
        let b: BoxedStrategy<u64> = (5u64..9).boxed();
        let runner = &mut crate::test_runner::TestRunner::deterministic();
        for _ in 0..20 {
            let v = b.generate(runner);
            assert!((5..9).contains(&v));
        }
    }
}
