//! Offline vendored subset of the `bytes` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace ships a minimal, API-compatible implementation of the
//! `bytes` surface it actually uses: [`BytesMut`] as a growable write
//! buffer, [`Bytes`] as a cheaply cloneable, sliceable read view backed by
//! an `Arc`, and the [`Buf`]/[`BufMut`] cursor traits.
//!
//! Two deliberate extensions beyond a pure subset:
//!
//! * [`Bytes::try_into_mut`] recovers the underlying allocation when the
//!   reference is unique — the engine's message-buffer pool uses it to
//!   recycle frame buffers across supersteps without reallocating;
//! * all getters panic on underflow (matching upstream `bytes`), which the
//!   wire layer relies on for its "corruption is a bug" contract.

use std::sync::Arc;

/// A growable, contiguous write buffer (subset of `bytes::BytesMut`).
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with no allocation.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Written length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Drop the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        let len = self.vec.len();
        Bytes {
            data: Arc::new(self.vec),
            start: 0,
            end: len,
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.vec.len())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

/// An immutable, cheaply cloneable view of a byte buffer (subset of
/// `bytes::Bytes`). Reading through [`Buf`] advances an internal cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty view.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Copy `src` into a fresh owned buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::new(src.to_vec()),
            start: 0,
            end: src.len(),
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `n` unread bytes as a new view; `self`
    /// keeps the remainder. Panics if `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Copy the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// A zero-copy sub-view of the unread bytes (subset of
    /// `bytes::Bytes::slice`): shares the backing allocation. Panics if the
    /// range is out of bounds, matching upstream.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(begin <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Recover the underlying allocation as a [`BytesMut`] when this is the
    /// only reference to it. The result holds the unread bytes (for a fully
    /// consumed view: empty, with the original capacity) — the engine's
    /// buffer pool uses this to recycle frame buffers. Returns `Err(self)`
    /// when the allocation is shared.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        let (start, end) = (self.start, self.end);
        match Arc::try_unwrap(self.data) {
            Ok(mut vec) => {
                vec.truncate(end);
                if start > 0 {
                    vec.drain(..start);
                }
                Ok(BytesMut { vec })
            }
            Err(data) => Err(Bytes { data, start, end }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        let end = vec.len();
        Bytes {
            data: Arc::new(vec),
            start: 0,
            end,
        }
    }
}

macro_rules! get_impl {
    ($self:ident, $ty:ty) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let s = $self.chunk();
        assert!(s.len() >= N, "buffer underflow");
        let v = <$ty>::from_le_bytes(s[..N].try_into().unwrap());
        $self.advance(N);
        v
    }};
}

/// Read cursor over a byte source (subset of `bytes::Buf`). All `get_*`
/// methods read little-endian and panic on underflow.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let s = self.chunk();
        assert!(!s.is_empty(), "buffer underflow");
        let v = s[0];
        self.advance(1);
        v
    }
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        get_impl!(self, u16)
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        get_impl!(self, u32)
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        get_impl!(self, u64)
    }
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        get_impl!(self, i64)
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
    /// Fill `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let s = self.chunk();
        assert!(s.len() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&s[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        *self = &self[n..];
    }
}

/// Write cursor over a byte sink (subset of `bytes::BufMut`). All `put_*`
/// methods write little-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Write one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Write a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Write a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Write a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Write a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Write a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(u64::MAX - 3);
        b.put_i64_le(-42);
        b.put_f64_le(2.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 2.5);
        let mut dst = [0u8; 3];
        r.copy_to_slice(&mut dst);
        assert_eq!(&dst, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_the_allocation() {
        let mut b = BytesMut::new();
        b.put_slice(b"hello world");
        let r = b.freeze();
        let mid = r.slice(6..);
        assert_eq!(&mid[..], b"world");
        // A slice of a slice stays anchored to the same buffer.
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], b"or");
        assert_eq!(&r.slice(..5)[..], b"hello");
        assert!(r.slice(..).len() == 11);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let r = Bytes::copy_from_slice(b"abc");
        let _ = r.slice(2..9);
    }

    #[test]
    fn split_to_partitions_the_view() {
        let mut b = BytesMut::new();
        b.put_slice(b"hello world");
        let mut r = b.freeze();
        let head = r.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&r[..], b" world");
    }

    #[test]
    fn try_into_mut_recycles_unique_buffers() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(b"data");
        let r = b.freeze();
        let recycled = r.try_into_mut().expect("unique reference");
        assert_eq!(&recycled[..], b"data");
        assert!(recycled.capacity() >= 4);

        // A fully consumed view recycles to an empty buffer that keeps
        // its allocation.
        let mut b = BytesMut::with_capacity(64);
        b.put_u32_le(77);
        let mut r = b.freeze();
        assert_eq!(r.get_u32_le(), 77);
        let recycled = r.try_into_mut().expect("unique reference");
        assert!(recycled.is_empty());
        assert!(recycled.capacity() >= 4);

        let mut b = BytesMut::new();
        b.put_slice(b"data");
        let r = b.freeze();
        let _clone = r.clone();
        assert!(
            r.try_into_mut().is_err(),
            "shared reference must not recycle"
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = BytesMut::new().freeze();
        let _ = r.get_u32_le();
    }
}
