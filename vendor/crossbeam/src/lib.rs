//! Offline vendored subset of the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by the
//! workspace; this shim backs it with `std::sync::mpsc`, which has the same
//! unbounded MPSC semantics and FIFO-per-sender ordering guarantee the
//! engine's deterministic delivery order relies on.

/// MPSC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error: the receiving half was dropped.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error: no message available (or all senders dropped).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have been dropped.
        Disconnected,
    }

    /// Error: all senders dropped and the channel drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_per_sender_and_try_recv() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn clones_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7u32).unwrap())
                .join()
                .unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }
    }
}
