//! Offline vendored subset of the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind `parking_lot`'s non-poisoning
//! API: `lock()` returns the guard directly and `Condvar::wait` takes the
//! guard by `&mut`. Panics while holding a lock abort the whole test/job
//! anyway in this workspace (worker panics are joined and re-raised), so
//! swallowing poison is safe.

use std::sync;

/// A non-poisoning mutex (subset of `parking_lot::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases on drop.
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// A mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard live")
    }
}

impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard live")
    }
}

/// A condition variable compatible with [`Mutex`] (subset of
/// `parking_lot::Condvar`).
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock, sleep until notified, and
    /// re-acquire.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard live");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
