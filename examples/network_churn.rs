//! Network churn: reachability when the topology itself flickers.
//!
//! §II.A models slow topology change with an `isExists` attribute. This
//! example builds a sensor network whose nodes drop in and out (battery,
//! interference) and asks: starting from the gateway at `t0`, when does a
//! firmware update *actually* reach each sensor, given that a hop is only
//! possible while both endpoints are up?
//!
//! ```text
//! cargo run --release --example network_churn
//! ```

use std::sync::Arc;
use tempograph::algos::TemporalReachability;
use tempograph::gen::{generate_topology_churn, ChurnConfig};
use tempograph::prelude::*;

fn main() {
    // A sensor mesh: road_network's lattice is a fine stand-in, but we
    // rebuild its topology with the isExists attribute declared.
    let base = road_network(&RoadNetConfig {
        width: 30,
        height: 30,
        ..Default::default()
    });
    let mut b = TemplateBuilder::new("sensor-mesh", false);
    b.vertex_schema()
        .add(GraphTemplate::IS_EXISTS, AttrType::Bool);
    for v in base.vertices() {
        b.add_vertex(base.vertex_id(v));
    }
    for e in base.edges() {
        let (s, d) = base.endpoints(e);
        b.add_edge(base.edge_id(e), base.vertex_id(s), base.vertex_id(d))
            .unwrap();
    }
    let template = Arc::new(b.finalize().unwrap());
    // Gateway in the mesh centre, where connectivity is richest (a corner
    // vertex can have degree 1 and be cut off by a single dead neighbour).
    let gateway = VertexIdx(15 * 30 + 15);

    let series = Arc::new(generate_topology_churn(
        template.clone(),
        &ChurnConfig {
            timesteps: 40,
            flip_prob: 0.02, // slow churn, per the model's premise
            initial_alive: 0.85,
            pinned_alive: vec![gateway],
            ..Default::default()
        },
    ));

    let parts = MultilevelPartitioner::default().partition(&template, 4);
    let pg = Arc::new(discover_subgraphs(template.clone(), parts));
    let exists_col = template
        .vertex_schema()
        .index_of(GraphTemplate::IS_EXISTS)
        .unwrap();

    let result = run_job(
        &pg,
        &InstanceSource::Memory(series.clone()),
        TemporalReachability::factory(gateway, exists_col),
        JobConfig::sequentially_dependent(40).while_active(40),
    );

    println!(
        "firmware propagation from the gateway ({} sensors):",
        template.num_vertices()
    );
    let mut cumulative = 0u64;
    for t in 0..result.timesteps_run {
        let newly = result.counter_at(TemporalReachability::REACHED, t);
        cumulative += newly;
        if newly > 0 {
            println!(
                "  t = {t:2}: +{newly:4} reached (cumulative {cumulative:4})  {}",
                "#".repeat((newly / 20 + 1).min(60) as usize)
            );
        }
    }
    let never = template.num_vertices() as u64 - cumulative;
    println!(
        "\ncoverage after {} timesteps: {:.1}% ({} sensors never reachable — \
         offline or cut off whenever the wave passed)",
        result.timesteps_run,
        100.0 * cumulative as f64 / template.num_vertices() as f64,
        never
    );

    // How much did churn delay things vs. a static network? A fully-alive
    // network reaches everything at t = 0 (one BFS); every reach time > 0
    // is churn-induced delay.
    let delayed = result.emitted.iter().filter(|e| e.value > 0.0).count();
    println!("{delayed} sensors were delayed past the first instance by churn");
}
