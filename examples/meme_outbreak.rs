//! Meme outbreak: trace a hashtag spreading through a social network.
//!
//! Runs the paper's Meme Tracking algorithm (§III.B) on a WIKI-like
//! small-world network with an SIR cascade, then prints the outbreak curve:
//! how many users were first reached per timestep, the cumulative reach,
//! and the inflection point — the analyses the paper motivates (ad
//! placement, epidemic management).
//!
//! ```text
//! cargo run --release --example meme_outbreak
//! ```

use std::sync::Arc;
use tempograph::prelude::*;

fn main() {
    let template = Arc::new(wiki_like(0.5)); // ≈ 6 000 users
    let meme = "#solar-eclipse";
    let series = Arc::new(generate_sir_tweets(
        template.clone(),
        &SirConfig {
            timesteps: 50,
            meme: meme.to_string(),
            hit_prob: 0.02, // the paper's WIKI hit probability
            initial_infected: 12,
            infectious_steps: 4,
            background_rate: 0.01,
            ..Default::default()
        },
    ));

    let parts = MultilevelPartitioner::default().partition(&template, 4);
    let pg = Arc::new(discover_subgraphs(template.clone(), parts));
    let tweets_col = template.vertex_schema().index_of(TWEETS_ATTR).unwrap();

    let result = run_job(
        &pg,
        &InstanceSource::Memory(series),
        MemeTracking::factory(meme, tweets_col),
        JobConfig::sequentially_dependent(50),
    );

    println!(
        "outbreak curve for {meme} ({} users):",
        template.num_vertices()
    );
    let mut cumulative = 0u64;
    let mut peak = (0usize, 0u64);
    for t in 0..result.timesteps_run {
        let newly = result.counter_at(MemeTracking::COLORED, t);
        cumulative += newly;
        if newly > peak.1 {
            peak = (t, newly);
        }
        if newly > 0 {
            println!(
                "  t = {t:2}: +{newly:5}  (cumulative {cumulative:6})  {}",
                "#".repeat((newly / 10 + 1).min(60) as usize)
            );
        }
    }
    println!(
        "\npeak spread at timestep {} (+{} users); final reach {:.1}% of the network",
        peak.0,
        peak.1,
        100.0 * cumulative as f64 / template.num_vertices() as f64
    );

    // Who were the earliest spreaders? (first-coloured vertices)
    let mut first: Vec<_> = result
        .emitted
        .iter()
        .filter(|e| e.value as usize == 0)
        .take(10)
        .collect();
    first.sort_by_key(|e| e.vertex);
    println!(
        "seed users detected at t0: {:?}",
        first.iter().map(|e| e.vertex.0).collect::<Vec<_>>()
    );
}
