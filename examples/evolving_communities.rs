//! Evolving communities: per-instance clustering with a merged stability
//! series — §II.B's "perform clustering on each instance and find their
//! intersection to show how communities evolve".
//!
//! Clusters each instance's *active* users (those who tweeted in the
//! interval) into activity components and reports, per transition between
//! consecutive instances, how many users stayed in the same community —
//! rising stability indicates a crystallising conversation, falling
//! stability a dissolving one.
//!
//! ```text
//! cargo run --release --example evolving_communities
//! ```

use std::sync::Arc;
use tempograph::algos::CommunityEvolution;
use tempograph::prelude::*;

fn main() {
    let template = Arc::new(wiki_like(0.4)); // ≈ 4 800 users
    let series = Arc::new(generate_sir_tweets(
        template.clone(),
        &SirConfig {
            timesteps: 40,
            meme: "#debate".into(),
            hit_prob: 0.03,
            initial_infected: 15,
            infectious_steps: 6,
            background_rate: 0.03,
            ..Default::default()
        },
    ));

    let parts = MultilevelPartitioner::default().partition(&template, 4);
    let pg = Arc::new(discover_subgraphs(template.clone(), parts));
    let tweets_col = template.vertex_schema().index_of(TWEETS_ATTR).unwrap();

    let result = run_job(
        &pg,
        &InstanceSource::Memory(series.clone()),
        CommunityEvolution::factory(tweets_col),
        JobConfig::eventually_dependent(40),
    );

    println!("community stability per transition (stable users t → t+1):");
    let mut series_vals = vec![0u64; 39];
    for e in &result.emitted {
        series_vals[e.vertex.idx()] = e.value as u64;
    }
    for (t, &stable) in series_vals.iter().enumerate() {
        if stable > 0 {
            println!(
                "  {t:2} → {:2}: {stable:5}  {}",
                t + 1,
                "#".repeat((stable / 5 + 1).min(60) as usize)
            );
        }
    }
    let total: u64 = result
        .merge_counters
        .get(CommunityEvolution::STABLE_TOTAL)
        .map(|v| v.iter().sum())
        .unwrap_or(0);
    println!("\ntotal stable user-transitions: {total}");

    // Context: how much activity was there at all?
    let active_per_t: Vec<usize> = (0..40)
        .map(|t| {
            series
                .get(t)
                .unwrap()
                .vertex_text_list(TWEETS_ATTR)
                .unwrap()
                .iter()
                .filter(|r| !r.is_empty())
                .count()
        })
        .collect();
    println!(
        "active users ranged {}..{} per instance",
        active_per_t.iter().min().unwrap(),
        active_per_t.iter().max().unwrap()
    );
}
