//! Hashtag trends: eventually dependent aggregation with a Merge phase.
//!
//! Runs the paper's Hashtag Aggregation (§III.A) over a social network's
//! tweet stream and prints the per-timestep frequency of one hashtag plus
//! its rate of change — the "statistical summary … such as the count of
//! that hashtag across time or the rate of change of occurrence" the paper
//! describes. Every per-instance count flows to a Merge BSP which a master
//! subgraph aggregates, mimicking `Master.Compute`.
//!
//! ```text
//! cargo run --release --example hashtag_trends
//! ```
//!
//! Set `TEMPOGRAPH_TRACE=1` to also record a structured execution trace:
//! the run writes `hashtag_trends.trace.json` (Chrome trace-event format —
//! open it at <https://ui.perfetto.dev>) and prints a top-N summary of the
//! slowest supersteps and worst barrier waits. Set
//! `TEMPOGRAPH_FAULTS=<seed>` to inject a deterministic crash-and-recover
//! schedule (checkpoints every 10 timesteps) — the output is identical
//! either way. Set `TEMPOGRAPH_METRICS=1` to fold per-worker metric
//! shards into a registry and print the Prometheus exposition plus a
//! top-5 summary after the run.

use std::sync::Arc;
use tempograph::prelude::*;

/// `TEMPOGRAPH_TRACE` opt-in (unset/`0`/`off` ⇒ no tracing).
fn trace_config() -> Option<TraceConfig> {
    match std::env::var("TEMPOGRAPH_TRACE").ok()?.trim() {
        "" | "0" | "off" | "false" => None,
        _ => Some(TraceConfig::new()),
    }
}

/// `TEMPOGRAPH_METRICS` opt-in (unset/`0`/`off` ⇒ no registry).
fn metrics_enabled() -> bool {
    match std::env::var("TEMPOGRAPH_METRICS")
        .as_deref()
        .map(str::trim)
    {
        Err(_) | Ok("" | "0" | "off" | "false") => false,
        Ok(_) => true,
    }
}

/// `TEMPOGRAPH_FAULTS=<seed>` opt-in: derive a deterministic fault plan,
/// checkpoint every 10 timesteps, and let the run crash and recover.
fn maybe_faulted(config: JobConfig<Vec<u64>>) -> JobConfig<Vec<u64>> {
    match FaultPlan::from_env(3, 50) {
        Some(plan) => {
            let dir = std::env::temp_dir().join("tempograph-hashtag-trends-ckpt");
            println!(
                "fault injection armed (seed {}); checkpoints -> {}",
                plan.seed().unwrap_or(0),
                dir.display()
            );
            config.with_checkpoint(10, dir).with_faults(plan)
        }
        None => config,
    }
}

fn main() {
    let template = Arc::new(wiki_like(0.5));
    let tag = "#meme";
    let series = Arc::new(generate_sir_tweets(
        template.clone(),
        &SirConfig {
            timesteps: 50,
            meme: tag.to_string(),
            hit_prob: 0.02,
            initial_infected: 10,
            infectious_steps: 5,
            background_rate: 0.02,
            ..Default::default()
        },
    ));

    let parts = MultilevelPartitioner::default().partition(&template, 3);
    let pg = Arc::new(discover_subgraphs(template.clone(), parts));
    let tweets_col = template.vertex_schema().index_of(TWEETS_ATTR).unwrap();

    let mut config = maybe_faulted(JobConfig::eventually_dependent(50));
    if let Some(tc) = trace_config() {
        config = config.with_trace(tc);
    }
    if metrics_enabled() {
        config = config.with_metrics();
    }
    let result = run_job(
        &pg,
        &InstanceSource::Memory(series),
        HashtagAggregation::factory(tag, tweets_col),
        config,
    );

    // The merge master emits (timestep, count) pairs (timestep encoded in
    // the vertex field — see the algorithm's docs).
    let mut counts = vec![0u64; 50];
    for e in &result.emitted {
        counts[e.vertex.idx()] = e.value as u64;
    }

    println!("frequency of {tag} per 5-minute window:");
    let mut prev = 0i64;
    for (t, &c) in counts.iter().enumerate() {
        let delta = c as i64 - prev;
        prev = c as i64;
        if c > 0 {
            println!(
                "  t = {t:2}: {c:5}  (Δ {delta:+4})  {}",
                "#".repeat((c / 5 + 1).min(60) as usize)
            );
        }
    }
    let total: u64 = result
        .merge_counters
        .get(HashtagAggregation::TOTAL)
        .map(|v| v.iter().sum())
        .unwrap_or(0);
    println!("\ntotal occurrences across all 50 windows: {total}");
    let merge_ss = result
        .merge_metrics
        .iter()
        .map(|m| m.supersteps)
        .max()
        .unwrap_or(0);
    println!("merge phase completed in {merge_ss} supersteps");
    if result.recoveries > 0 {
        println!(
            "recovered from {} injected worker failure(s)",
            result.recoveries
        );
    }

    if let Some(registry) = &result.registry {
        let snap = registry.snapshot();
        println!(
            "\nmetrics (Prometheus exposition):\n{}",
            snap.to_prometheus()
        );
        println!("{}", snap.to_summary(5));
    }

    if let Some(trace) = &result.trace {
        let path = "hashtag_trends.trace.json";
        std::fs::write(path, trace.to_chrome_json()).expect("write trace");
        println!(
            "\ntrace: {} events -> {path} (open at https://ui.perfetto.dev)\n{}",
            trace.num_events(),
            trace.summary(5)
        );
    }
}
