//! Quickstart: the whole pipeline in ~80 lines.
//!
//! Builds a small time-series road network, partitions it, writes it to a
//! GoFS dataset on disk, and runs a sequentially dependent TI-BSP program
//! that tracks the hottest road segment over time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use tempograph::prelude::*;

/// Finds, per timestep, the maximum edge latency seen so far anywhere in
/// the graph — a minimal sequentially dependent program: each timestep's
/// result feeds the next via `send_to_next_timestep`.
struct RunningMax {
    latency_col: usize,
    best: f64,
}

impl SubgraphProgram for RunningMax {
    type Msg = f64;

    fn compute(&mut self, ctx: &mut Context<'_, f64>, msgs: &[Envelope<f64>]) {
        if ctx.superstep() == 0 {
            // Carry over the previous timestep's running maximum.
            for e in msgs {
                self.best = self.best.max(e.payload);
            }
            let instance = ctx.instance();
            let local_max = instance
                .edge_f64(self.latency_col)
                .expect("latency column")
                .iter()
                .fold(f64::MIN, |a, &b| a.max(b));
            self.best = self.best.max(local_max);
            ctx.add_counter("max_latency_milli", (self.best * 1e3) as u64);
        }
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, f64>) {
        if ctx.timestep() + 1 < ctx.num_timesteps() {
            ctx.send_to_next_timestep(self.best);
        }
    }
}

fn main() {
    // 1. A road-network template: static topology + a `latency` edge attr.
    let template = Arc::new(road_network(&RoadNetConfig {
        width: 40,
        height: 40,
        ..Default::default()
    }));
    println!(
        "template: {} vertices, {} edges",
        template.num_vertices(),
        template.num_edges()
    );

    // 2. Fifty instances of synthetic traffic (one every 5 simulated min).
    let series = Arc::new(generate_road_latencies(
        template.clone(),
        &RoadLatencyConfig::default(),
    ));
    println!(
        "series: {} instances, δ = {}s",
        series.len(),
        series.period()
    );

    // 3. Partition into 4 "hosts" and discover subgraphs.
    let parts = MultilevelPartitioner::default().partition(&template, 4);
    let pg = Arc::new(discover_subgraphs(template.clone(), parts));
    println!(
        "partitioned: {} subgraphs across {} partitions",
        pg.subgraphs().len(),
        pg.num_partitions()
    );

    // 4. Persist as a GoFS dataset (temporal packing 10 × binning 5) and
    //    run straight off disk, exactly like the paper's deployment.
    let dir = std::env::temp_dir().join("tempograph-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    tempograph::gofs::store::write_dataset(&dir, pg.clone(), &series, 10, 5)
        .expect("write dataset");

    let latency_col = template
        .edge_schema()
        .index_of(LATENCY_ATTR)
        .expect("declared by the generator");
    let result = run_job(
        &pg,
        &InstanceSource::Gofs(dir.clone()),
        move |_, _| RunningMax {
            latency_col,
            best: f64::MIN,
        },
        JobConfig::sequentially_dependent(series.len()),
    );

    // 5. Report.
    println!("\nrunning max latency (ms) per timestep:");
    for t in (0..result.timesteps_run).step_by(10) {
        // The counter holds per-partition maxima ×1000; take the max.
        let per_p = &result.counters["max_latency_milli"][t];
        println!(
            "  t = {t:2}: {:.1}",
            *per_p.iter().max().unwrap() as f64 / 1e3
        );
    }
    let loads: u64 = result.metrics.iter().flatten().map(|m| m.slice_loads).sum();
    println!("\nslice files loaded lazily from disk: {loads}");
    std::fs::remove_dir_all(&dir).ok();
}
