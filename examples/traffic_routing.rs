//! Traffic routing: Time-Dependent Shortest Path vs a static plan.
//!
//! Recreates the paper's motivating example (§III.C, Fig. 5a): a navigator
//! that plans a route on the *current* traffic snapshot can be badly wrong
//! by the time the vehicle reaches mid-route, while TDSP — which idles at
//! vertices for better future edges — finds the true earliest arrivals.
//!
//! The example runs both on the same 50-instance synthetic road network and
//! reports how many destinations the static plan mispredicts and by how
//! much.
//!
//! ```text
//! cargo run --release --example traffic_routing
//! ```

use std::sync::Arc;
use tempograph::prelude::*;

fn main() {
    let template = Arc::new(carn_like(0.25)); // ≈ 2 500 intersections
    let series = Arc::new(generate_road_latencies(
        template.clone(),
        &RoadLatencyConfig {
            timesteps: 50,
            period: 300,
            min_latency: 5.0,
            max_latency: 140.0,
            ..Default::default()
        },
    ));
    let source = VertexIdx(0);
    let latency_col = template.edge_schema().index_of(LATENCY_ATTR).unwrap();

    let parts = MultilevelPartitioner::default().partition(&template, 4);
    let pg = Arc::new(discover_subgraphs(template.clone(), parts));
    let src = InstanceSource::Memory(series.clone());

    // --- 1. TDSP: the paper's Algorithm 2 over all 50 instances. ---------
    let tdsp = run_job(
        &pg,
        &src,
        Tdsp::factory(source, latency_col),
        JobConfig::sequentially_dependent(series.len()).while_active(series.len()),
    );
    let mut true_arrival = vec![f64::INFINITY; template.num_vertices()];
    for e in &tdsp.emitted {
        true_arrival[e.vertex.idx()] = e.value;
    }
    let reached = true_arrival.iter().filter(|a| a.is_finite()).count();
    println!(
        "TDSP: {} of {} vertices reached within {} timesteps ({} run)",
        reached,
        template.num_vertices(),
        series.len(),
        tdsp.timesteps_run
    );

    // --- 2. Static plan: SSSP on the t0 snapshot only. -------------------
    let static_plan = run_job(
        &pg,
        &src,
        Sssp::factory(source, Some(latency_col)),
        JobConfig::independent(1),
    );
    let mut planned = vec![f64::INFINITY; template.num_vertices()];
    for e in &static_plan.emitted {
        planned[e.vertex.idx()] = e.value;
    }

    // --- 3. Compare: the static plan is (at best) an estimate. -----------
    // TDSP arrivals are *achievable*; the static estimate assumes t0
    // latencies hold forever. Count how often the static ETA is optimistic
    // versus what time-aware routing actually achieves.
    let mut optimistic = 0usize;
    let mut worst_gap = 0.0f64;
    let mut gaps = Vec::new();
    for v in 0..template.num_vertices() {
        if true_arrival[v].is_finite() && planned[v].is_finite() {
            let gap = true_arrival[v] - planned[v];
            gaps.push(gap.abs());
            if planned[v] < true_arrival[v] - 1e-9 {
                optimistic += 1;
                worst_gap = worst_gap.max(gap);
            }
        }
    }
    gaps.sort_by(f64::total_cmp);
    let median = gaps.get(gaps.len() / 2).copied().unwrap_or(0.0);
    println!(
        "static t0 plan: optimistic for {optimistic} destinations \
         (worst underestimate {worst_gap:.0}s, median |ETA error| {median:.0}s)"
    );
    println!("\nper-timestep TDSP progress (vertices finalized):");
    for t in 0..tdsp.timesteps_run {
        let n = tdsp.counter_at(Tdsp::FINALIZED, t);
        if n > 0 {
            println!("  t = {t:2}: {n:5} {}", "#".repeat((n / 20 + 1) as usize));
        }
    }
}
