//! `tempograph` — command-line driver for the time-series graph stack.
//!
//! ```text
//! tempograph generate --preset carn --scale 0.5 --workload road \
//!                     --partitions 6 --out /tmp/carn-road
//! tempograph inspect  /tmp/carn-road
//! tempograph run      --algo tdsp --data /tmp/carn-road --source 0
//! tempograph partition --preset wiki --scale 0.5 --k 9 --algorithm ldg
//! ```
//!
//! Argument parsing is deliberately dependency-free: `--key value` pairs
//! after a subcommand.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use tempograph::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "inspect" => cmd_inspect(&opts, rest),
        "partition" => cmd_partition(&opts),
        "run" => cmd_run(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tempograph — distributed programming over time-series graphs

USAGE:
  tempograph generate  --out DIR [--preset carn|wiki] [--scale F]
                       [--workload road|tweets|churn] [--timesteps N]
                       [--partitions K] [--packing N] [--binning N]
                       [--partitioner multilevel|ldg|hash]
      Generate a synthetic time-series graph dataset as a GoFS store.

  tempograph inspect   DIR
      Print a stored dataset's metadata, template and partition stats.

  tempograph partition [--preset carn|wiki] [--scale F] [--k K]
                       [--partitioner multilevel|ldg|hash]
      Partition a generated template and report edge cut / balance.

  tempograph run       --algo ALGO --data DIR [--source V] [--meme TAG]
                       [--timesteps N]
      Run an algorithm over a stored dataset.
      ALGO: tdsp | meme | hash | sssp | bfs | wcc | pagerank | topn | stats";

fn parse_opts(rest: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = rest.iter();
    while let Some(key) = it.next() {
        if let Some(name) = key.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{name}"))?;
            opts.insert(name.to_string(), value.clone());
        }
        // bare positionals (e.g. inspect DIR) handled by the commands
    }
    Ok(opts)
}

fn opt<'a>(opts: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    opts.get(key).map(String::as_str).unwrap_or(default)
}

fn parse<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: `{v}`")),
    }
}

fn preset_of(opts: &HashMap<String, String>) -> Result<DatasetPreset, String> {
    match opt(opts, "preset", "carn") {
        "carn" => Ok(DatasetPreset::Carn),
        "wiki" => Ok(DatasetPreset::Wiki),
        other => Err(format!("unknown preset `{other}` (carn|wiki)")),
    }
}

fn partitioner_of(name: &str) -> Result<Box<dyn Partitioner>, String> {
    Ok(match name {
        "multilevel" => Box::new(MultilevelPartitioner::default()),
        "ldg" => Box::new(LdgPartitioner),
        "hash" => Box::new(HashPartitioner),
        other => return Err(format!("unknown partitioner `{other}`")),
    })
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("--out DIR is required")?;
    let preset = preset_of(opts)?;
    let scale: f64 = parse(opts, "scale", 0.5)?;
    let timesteps: usize = parse(opts, "timesteps", 50)?;
    let k: usize = parse(opts, "partitions", 6)?;
    let packing: usize = parse(opts, "packing", 10)?;
    let binning: usize = parse(opts, "binning", 5)?;
    let workload = opt(opts, "workload", "road");

    println!("generating {} template at scale {scale}…", preset.name());
    let base = preset.template(scale);
    // Churn workloads need the isExists attribute; rebuild with it declared.
    let template = if workload == "churn" {
        let mut b = TemplateBuilder::new(base.name().to_string(), base.directed());
        b.vertex_schema()
            .add(GraphTemplate::IS_EXISTS, AttrType::Bool);
        for v in base.vertices() {
            b.add_vertex(base.vertex_id(v));
        }
        for e in base.edges() {
            let (s, d) = base.endpoints(e);
            b.add_edge(base.edge_id(e), base.vertex_id(s), base.vertex_id(d))
                .map_err(|e| e.to_string())?;
        }
        Arc::new(b.finalize().map_err(|e| e.to_string())?)
    } else {
        Arc::new(base)
    };
    println!(
        "  {} vertices, {} edges",
        template.num_vertices(),
        template.num_edges()
    );

    println!("generating {timesteps} instances ({workload})…");
    let series = match workload {
        "road" => generate_road_latencies(
            template.clone(),
            &RoadLatencyConfig {
                timesteps,
                ..Default::default()
            },
        ),
        "tweets" => generate_sir_tweets(
            template.clone(),
            &SirConfig {
                timesteps,
                hit_prob: preset.hit_prob(),
                ..Default::default()
            },
        ),
        "churn" => tempograph::gen::generate_topology_churn(
            template.clone(),
            &tempograph::gen::ChurnConfig {
                timesteps,
                pinned_alive: vec![VertexIdx(0)],
                ..Default::default()
            },
        ),
        other => return Err(format!("unknown workload `{other}` (road|tweets|churn)")),
    };

    println!("partitioning into {k} parts…");
    let partitioner = partitioner_of(opt(opts, "partitioner", "multilevel"))?;
    let parts = partitioner.partition(&template, k);
    println!(
        "  edge cut {:.3}%, balance {:.3}",
        100.0 * tempograph::partition::cut_fraction(&template, &parts),
        tempograph::partition::balance(&template, &parts)
    );
    let pg = Arc::new(discover_subgraphs(template, parts));
    println!("  {} subgraphs", pg.subgraphs().len());

    println!("writing GoFS store to {out} (packing {packing} × binning {binning})…");
    let meta = tempograph::gofs::store::write_dataset(out, pg, &series, packing, binning)
        .map_err(|e| e.to_string())?;
    println!(
        "done: {} timesteps, {} partitions",
        meta.num_timesteps, meta.num_partitions
    );
    Ok(())
}

fn cmd_inspect(opts: &HashMap<String, String>, rest: &[String]) -> Result<(), String> {
    let dir = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .or_else(|| opts.get("data").map(|_| unreachable!()))
        .ok_or("usage: tempograph inspect DIR")?;
    let store = GofsStore::open(dir).map_err(|e| e.to_string())?;
    let meta = store.meta();
    println!("dataset  : {}", meta.name);
    println!("dir      : {dir}");
    println!(
        "series   : {} instances from t0 = {} every δ = {}s",
        meta.num_timesteps, meta.start_time, meta.period
    );
    println!(
        "layout   : {} partitions, packing {} × binning {}",
        meta.num_partitions, meta.packing, meta.binning
    );
    let t = store.template();
    println!(
        "template : {} vertices, {} edges, {}",
        t.num_vertices(),
        t.num_edges(),
        if t.directed() {
            "directed"
        } else {
            "undirected"
        }
    );
    print!("v-schema : ");
    for a in t.vertex_schema().iter() {
        print!("{}: {:?}  ", a.name, a.ty);
    }
    println!();
    print!("e-schema : ");
    for a in t.edge_schema().iter() {
        print!("{}: {:?}  ", a.name, a.ty);
    }
    println!();
    let pg = store.partitioned_graph();
    println!(
        "subgraphs: {} total; per partition: {:?}",
        pg.subgraphs().len(),
        (0..meta.num_partitions as u16)
            .map(|p| pg.subgraphs_of_partition(p).len())
            .collect::<Vec<_>>()
    );
    println!(
        "edge cut : {:.3}%",
        100.0 * tempograph::partition::cut_fraction(t, store.partitioning())
    );
    Ok(())
}

fn cmd_partition(opts: &HashMap<String, String>) -> Result<(), String> {
    let preset = preset_of(opts)?;
    let scale: f64 = parse(opts, "scale", 0.5)?;
    let k: usize = parse(opts, "k", 6)?;
    let name = opt(opts, "partitioner", "multilevel");
    let partitioner = partitioner_of(name)?;
    let template = preset.template(scale);
    let started = Clock::start();
    let parts = partitioner.partition(&template, k);
    let elapsed = started.elapsed();
    println!(
        "{} on {} ({} V, {} E), k = {k}:",
        name,
        preset.name(),
        template.num_vertices(),
        template.num_edges()
    );
    println!(
        "  edge cut {:.3}%  balance {:.3}  time {:.2?}",
        100.0 * tempograph::partition::cut_fraction(&template, &parts),
        tempograph::partition::balance(&template, &parts),
        elapsed
    );
    println!("  sizes: {:?}", parts.sizes());
    Ok(())
}

fn cmd_run(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = opts.get("data").ok_or("--data DIR is required")?;
    let algo = opts.get("algo").ok_or("--algo is required")?;
    let store = GofsStore::open(dir).map_err(|e| e.to_string())?;
    let t = store.template().clone();
    let pg = Arc::new(store.partitioned_graph());
    let max_ts = store.meta().num_timesteps;
    let timesteps: usize = parse(opts, "timesteps", max_ts)?.min(max_ts);
    let source = VertexIdx(parse(opts, "source", 0u32)?);
    let meme = opt(opts, "meme", "#meme").to_string();
    let src = InstanceSource::Gofs(dir.into());

    let find_v = |name: &str| t.vertex_schema().index_of(name);
    let find_e = |name: &str| t.edge_schema().index_of(name);

    println!(
        "running {algo} over {timesteps} timesteps on {} partitions…",
        pg.num_partitions()
    );
    let started = Clock::start();
    let result = match algo.as_str() {
        "tdsp" => {
            let col = find_e(LATENCY_ATTR).ok_or("dataset lacks a latency column")?;
            run_job(
                &pg,
                &src,
                Tdsp::factory(source, col),
                JobConfig::sequentially_dependent(timesteps).while_active(timesteps),
            )
        }
        "meme" => {
            let col = find_v(TWEETS_ATTR).ok_or("dataset lacks a tweets column")?;
            run_job(
                &pg,
                &src,
                MemeTracking::factory(meme, col),
                JobConfig::sequentially_dependent(timesteps),
            )
        }
        "hash" => {
            let col = find_v(TWEETS_ATTR).ok_or("dataset lacks a tweets column")?;
            run_job(
                &pg,
                &src,
                HashtagAggregation::factory(meme, col),
                JobConfig::eventually_dependent(timesteps),
            )
        }
        "sssp" => {
            let col = find_e(LATENCY_ATTR);
            run_job(
                &pg,
                &src,
                Sssp::factory(source, col),
                JobConfig::independent(1),
            )
        }
        "bfs" => run_job(
            &pg,
            &src,
            Sssp::factory(source, None),
            JobConfig::independent(1),
        ),
        "wcc" => run_job(&pg, &src, Wcc::factory(), JobConfig::independent(1)),
        "pagerank" => run_job(&pg, &src, PageRank::factory(10), JobConfig::independent(1)),
        "topn" => {
            let col = find_v(TWEETS_ATTR).ok_or("dataset lacks a tweets column")?;
            run_job(
                &pg,
                &src,
                TopNActivity::factory(5, col),
                JobConfig::independent(timesteps),
            )
        }
        "stats" => run_job(
            &pg,
            &src,
            tempograph::algos::InstanceStats::factory(
                find_v(TWEETS_ATTR),
                find_e(LATENCY_ATTR),
                200.0,
            ),
            JobConfig::independent(timesteps),
        ),
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    let elapsed = started.elapsed();

    println!(
        "finished in {elapsed:.2?} ({} timesteps run)",
        result.timesteps_run
    );
    println!("emitted values : {}", result.emitted.len());
    for (name, per_t) in &result.counters {
        let total: u64 = per_t.iter().flatten().sum();
        println!("counter {name:24} total {total}");
    }
    for (name, per_p) in &result.merge_counters {
        let total: u64 = per_p.iter().sum();
        println!("merge counter {name:18} total {total}");
    }
    let m: u64 = result
        .metrics
        .iter()
        .flatten()
        .map(|m| m.msgs_local + m.msgs_remote)
        .sum();
    let loads: u64 = result.metrics.iter().flatten().map(|m| m.slice_loads).sum();
    println!("messages       : {m}");
    println!("slice loads    : {loads}");
    Ok(())
}
