//! `tempograph` — command-line driver for the time-series graph stack.
//!
//! ```text
//! tempograph generate --preset carn --scale 0.5 --workload road \
//!                     --partitions 6 --out /tmp/carn-road
//! tempograph inspect  /tmp/carn-road
//! tempograph run      --algo tdsp --data /tmp/carn-road --source 0
//! tempograph partition --preset wiki --scale 0.5 --k 9 --algorithm ldg
//! ```
//!
//! Argument parsing is deliberately dependency-free: `--key value` pairs
//! after a subcommand.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use tempograph::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "inspect" => cmd_inspect(&opts, rest),
        "partition" => cmd_partition(&opts),
        "run" => cmd_run(&opts),
        "worker" => cmd_worker(&opts),
        "status" => cmd_status(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tempograph — distributed programming over time-series graphs

USAGE:
  tempograph generate  --out DIR [--preset carn|wiki] [--scale F]
                       [--workload road|tweets|churn] [--timesteps N]
                       [--partitions K] [--packing N] [--binning N]
                       [--partitioner multilevel|ldg|hash]
      Generate a synthetic time-series graph dataset as a GoFS store.

  tempograph inspect   DIR
      Print a stored dataset's metadata, template and partition stats.

  tempograph inspect   list                     [--ledger DIR]
  tempograph inspect   show RUN [--json true]   [--ledger DIR]
  tempograph inspect   diff OLD NEW [--threshold F] [--ledger DIR]
  tempograph inspect   rebalance RUN --data DIR [--max-moves N]
                       [--cost measured|invocations] [--ledger DIR]
      Query the run ledger: list recorded runs, show one (human or
      canonical JSON), gate-compare two (bench noise-floor rules; exits
      non-zero on a regression or count change), or propose a rebalance
      from a run's measured per-subgraph costs.

  tempograph partition [--preset carn|wiki] [--scale F] [--k K]
                       [--partitioner multilevel|ldg|hash]
      Partition a generated template and report edge cut / balance.

  tempograph run       --algo ALGO --data DIR [--source V] [--meme TAG]
                       [--timesteps N] [--ledger DIR] [--seed N]
                       [--deterministic true] [--observe true]
                       [--transport inprocess|tcp|tcp-process]
                       [--status-addr HOST:PORT] [--straggler-factor F]
                       [--faults SPEC] [--checkpoint-dir D]
                       [--checkpoint-every N]
      Run an algorithm over a stored dataset. With --ledger, the run is
      armed with metrics + cost attribution and recorded to the ledger
      (--deterministic strips measured timings so a seeded run records
      byte-identically across executions). --transport tcp runs the
      cluster over loopback TCP (worker threads); tcp-process spawns one
      real `tempograph worker` process per partition. Results —
      including ledger records — are byte-identical across transports:
      TCP workers ship telemetry frames at every barrier so the
      coordinator merges the same metrics/attribution an in-process run
      folds directly. --observe arms metrics + attribution without
      recording; --status-addr serves live cluster introspection for
      `tempograph status` (implies --observe); --straggler-factor (or
      env TEMPOGRAPH_STRAGGLER_FACTOR, default 4.0) tunes how many
      multiples of the median barrier wait flag a straggler.
      ALGO: tdsp | meme | hash | sssp | bfs | wcc | pagerank | topn | stats

  tempograph status    --addr HOST:PORT
      Query a running TCP coordinator's status endpoint (started via
      `run --status-addr`): per-worker epoch, timestep, supersteps,
      barrier-wait watermark, bytes sent/received, telemetry age.

  tempograph worker    --data DIR --algo ALGO --partition N
                       --coordinator ADDR [--timesteps N] [--source V]
                       [--meme TAG] [--observe true] [--faults SPEC]
                       [--checkpoint-dir D] [--checkpoint-every N]
      One TCP cluster worker (spawned by `run --transport tcp-process`;
      rarely invoked by hand). Flags after --coordinator must mirror the
      coordinator's so every worker runs the identical job.";

fn parse_opts(rest: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = rest.iter();
    while let Some(key) = it.next() {
        if let Some(name) = key.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{name}"))?;
            opts.insert(name.to_string(), value.clone());
        }
        // bare positionals (e.g. inspect DIR) handled by the commands
    }
    Ok(opts)
}

fn opt<'a>(opts: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    opts.get(key).map(String::as_str).unwrap_or(default)
}

fn parse<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: `{v}`")),
    }
}

fn preset_of(opts: &HashMap<String, String>) -> Result<DatasetPreset, String> {
    match opt(opts, "preset", "carn") {
        "carn" => Ok(DatasetPreset::Carn),
        "wiki" => Ok(DatasetPreset::Wiki),
        other => Err(format!("unknown preset `{other}` (carn|wiki)")),
    }
}

fn partitioner_of(name: &str) -> Result<Box<dyn Partitioner>, String> {
    Ok(match name {
        "multilevel" => Box::new(MultilevelPartitioner::default()),
        "ldg" => Box::new(LdgPartitioner),
        "hash" => Box::new(HashPartitioner),
        other => return Err(format!("unknown partitioner `{other}`")),
    })
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("--out DIR is required")?;
    let preset = preset_of(opts)?;
    let scale: f64 = parse(opts, "scale", 0.5)?;
    let timesteps: usize = parse(opts, "timesteps", 50)?;
    let k: usize = parse(opts, "partitions", 6)?;
    let packing: usize = parse(opts, "packing", 10)?;
    let binning: usize = parse(opts, "binning", 5)?;
    let workload = opt(opts, "workload", "road");

    println!("generating {} template at scale {scale}…", preset.name());
    let base = preset.template(scale);
    // Churn workloads need the isExists attribute; rebuild with it declared.
    let template = if workload == "churn" {
        let mut b = TemplateBuilder::new(base.name().to_string(), base.directed());
        b.vertex_schema()
            .add(GraphTemplate::IS_EXISTS, AttrType::Bool);
        for v in base.vertices() {
            b.add_vertex(base.vertex_id(v));
        }
        for e in base.edges() {
            let (s, d) = base.endpoints(e);
            b.add_edge(base.edge_id(e), base.vertex_id(s), base.vertex_id(d))
                .map_err(|e| e.to_string())?;
        }
        Arc::new(b.finalize().map_err(|e| e.to_string())?)
    } else {
        Arc::new(base)
    };
    println!(
        "  {} vertices, {} edges",
        template.num_vertices(),
        template.num_edges()
    );

    println!("generating {timesteps} instances ({workload})…");
    let series = match workload {
        "road" => generate_road_latencies(
            template.clone(),
            &RoadLatencyConfig {
                timesteps,
                ..Default::default()
            },
        ),
        "tweets" => generate_sir_tweets(
            template.clone(),
            &SirConfig {
                timesteps,
                hit_prob: preset.hit_prob(),
                ..Default::default()
            },
        ),
        "churn" => tempograph::gen::generate_topology_churn(
            template.clone(),
            &tempograph::gen::ChurnConfig {
                timesteps,
                pinned_alive: vec![VertexIdx(0)],
                ..Default::default()
            },
        ),
        other => return Err(format!("unknown workload `{other}` (road|tweets|churn)")),
    };

    println!("partitioning into {k} parts…");
    let partitioner = partitioner_of(opt(opts, "partitioner", "multilevel"))?;
    let parts = partitioner.partition(&template, k);
    println!(
        "  edge cut {:.3}%, balance {:.3}",
        100.0 * tempograph::partition::cut_fraction(&template, &parts),
        tempograph::partition::balance(&template, &parts)
    );
    let pg = Arc::new(discover_subgraphs(template, parts));
    println!("  {} subgraphs", pg.subgraphs().len());

    println!("writing GoFS store to {out} (packing {packing} × binning {binning})…");
    let meta = tempograph::gofs::store::write_dataset(out, pg, &series, packing, binning)
        .map_err(|e| e.to_string())?;
    println!(
        "done: {} timesteps, {} partitions",
        meta.num_timesteps, meta.num_partitions
    );
    Ok(())
}

/// Bare (non-flag) arguments, skipping each `--key`'s value.
fn positionals(rest: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            let _ = it.next();
        } else {
            out.push(a.as_str());
        }
    }
    out
}

fn cmd_inspect(opts: &HashMap<String, String>, rest: &[String]) -> Result<(), String> {
    let pos = positionals(rest);
    match pos.first().copied() {
        Some("list") => return inspect_list(opts),
        Some("show") => return inspect_show(opts, &pos[1..]),
        Some("diff") => return inspect_diff(opts, &pos[1..]),
        Some("rebalance") => return inspect_rebalance(opts, &pos[1..]),
        _ => {}
    }
    let dir = *pos
        .first()
        .ok_or("usage: tempograph inspect DIR | list | show | diff | rebalance")?;
    let store = GofsStore::open(dir).map_err(|e| e.to_string())?;
    let meta = store.meta();
    println!("dataset  : {}", meta.name);
    println!("dir      : {dir}");
    println!(
        "series   : {} instances from t0 = {} every δ = {}s",
        meta.num_timesteps, meta.start_time, meta.period
    );
    println!(
        "layout   : {} partitions, packing {} × binning {}",
        meta.num_partitions, meta.packing, meta.binning
    );
    let t = store.template();
    println!(
        "template : {} vertices, {} edges, {}",
        t.num_vertices(),
        t.num_edges(),
        if t.directed() {
            "directed"
        } else {
            "undirected"
        }
    );
    print!("v-schema : ");
    for a in t.vertex_schema().iter() {
        print!("{}: {:?}  ", a.name, a.ty);
    }
    println!();
    print!("e-schema : ");
    for a in t.edge_schema().iter() {
        print!("{}: {:?}  ", a.name, a.ty);
    }
    println!();
    let pg = store.partitioned_graph();
    println!(
        "subgraphs: {} total; per partition: {:?}",
        pg.subgraphs().len(),
        (0..meta.num_partitions as u16)
            .map(|p| pg.subgraphs_of_partition(p).len())
            .collect::<Vec<_>>()
    );
    println!(
        "edge cut : {:.3}%",
        100.0 * tempograph::partition::cut_fraction(t, store.partitioning())
    );
    Ok(())
}

fn open_ledger(opts: &HashMap<String, String>) -> Result<Ledger, String> {
    Ledger::open(opt(opts, "ledger", "ledger")).map_err(|e| e.to_string())
}

fn inspect_list(opts: &HashMap<String, String>) -> Result<(), String> {
    let ledger = open_ledger(opts)?;
    let names = ledger.list().map_err(|e| e.to_string())?;
    if names.is_empty() {
        println!("no runs recorded in {}", ledger.dir().display());
        return Ok(());
    }
    for name in names {
        match ledger.load(&name) {
            Ok(rec) => println!(
                "{name}  {} ({})  {} ts  wall {:.3} ms",
                rec.config.algorithm,
                rec.config.pattern,
                rec.aggregates.timesteps_run,
                rec.aggregates.wall_ns as f64 / 1e6
            ),
            Err(e) => println!("{name}  [unreadable: {e}]"),
        }
    }
    Ok(())
}

fn inspect_show(opts: &HashMap<String, String>, pos: &[&str]) -> Result<(), String> {
    let name = *pos
        .first()
        .ok_or("usage: tempograph inspect show RUN [--json true] [--ledger DIR]")?;
    let ledger = open_ledger(opts)?;
    let rec = ledger.load(name).map_err(|e| e.to_string())?;
    if parse(opts, "json", false)? {
        println!("{}", rec.to_value().write_pretty());
        return Ok(());
    }
    let c = &rec.config;
    let a = &rec.aggregates;
    println!("run        : {name}");
    println!("algorithm  : {} ({})", c.algorithm, c.pattern);
    println!(
        "dataset    : {} ({} partitions, {} subgraphs, {} timesteps, seed {:#x})",
        c.dataset, c.partitions, c.subgraphs, c.timesteps, c.seed
    );
    println!("series     : t0 = {} every δ = {}s", c.start_time, c.period);
    print!("env        :");
    for (k, v) in &c.env {
        print!(" {k}={v}");
    }
    println!();
    println!(
        "wall       : {:.3} ms (virtual {:.3} ms over {} timesteps run)",
        a.wall_ns as f64 / 1e6,
        a.virtual_ns as f64 / 1e6,
        a.timesteps_run
    );
    println!(
        "phases     : compute {:.3} ms, msg {:.3} ms, sync {:.3} ms, io {:.3} ms",
        a.compute_ns as f64 / 1e6,
        a.msg_ns as f64 / 1e6,
        a.sync_ns as f64 / 1e6,
        a.io_ns as f64 / 1e6
    );
    println!(
        "traffic    : {} local + {} remote msgs ({} bytes, {} batches, {} combined)",
        a.msgs_local, a.msgs_remote, a.bytes_remote, a.batches_remote, a.msgs_combined
    );
    println!(
        "work       : {} supersteps, {} slice loads, {} retries, {} recoveries, {} emits",
        a.supersteps, a.slice_loads, a.send_retries, a.recoveries, a.emitted_values
    );
    for w in &rec.workers {
        println!(
            "worker {:>4}: compute {:.3} ms, msg {:.3} ms, sync {:.3} ms, io {:.3} ms, \
             wall {:.3} ms, {} supersteps",
            w.partition,
            w.compute_ns as f64 / 1e6,
            w.msg_ns as f64 / 1e6,
            w.sync_ns as f64 / 1e6,
            w.io_ns as f64 / 1e6,
            w.wall_ns as f64 / 1e6,
            w.supersteps
        );
    }
    if !rec.attribution.is_empty() {
        let mut per_sg = rec.per_subgraph_costs(true);
        let invocations = rec.per_subgraph_costs(false);
        per_sg.sort_by_key(|&(id, ns)| (std::cmp::Reverse(ns), id.idx()));
        println!(
            "attribution: {} subgraphs, top by measured compute:",
            per_sg.len()
        );
        for &(id, ns) in per_sg.iter().take(8) {
            let inv = invocations
                .iter()
                .find(|(i, _)| *i == id)
                .map_or(0, |&(_, n)| n);
            println!(
                "  subgraph {:>4}: {:.3} ms over {} invocations",
                id.idx(),
                ns as f64 / 1e6,
                inv
            );
        }
    }
    for (cname, total) in &rec.counters {
        println!("counter {cname:24} total {total}");
    }
    Ok(())
}

fn inspect_diff(opts: &HashMap<String, String>, pos: &[&str]) -> Result<(), String> {
    let [old_name, new_name] = pos else {
        return Err("usage: tempograph inspect diff OLD NEW [--threshold F] [--ledger DIR]".into());
    };
    let threshold: f64 = parse(opts, "threshold", tempograph::ledger::DEFAULT_THRESHOLD)?;
    let ledger = open_ledger(opts)?;
    let old = ledger.load(old_name).map_err(|e| e.to_string())?;
    let new = ledger.load(new_name).map_err(|e| e.to_string())?;
    let diff = diff_records(&old, &new, threshold);
    println!(
        "comparing {old_name} -> {new_name} (threshold +{:.0}%, noise floor {} ms)",
        threshold * 100.0,
        tempograph::ledger::NOISE_FLOOR_NS / 1_000_000
    );
    if diff.config_differs {
        println!("warning: config fingerprints differ (not apples-to-apples)");
    }
    if diff.deltas.is_empty() {
        println!("records agree on every gated field");
        return Ok(());
    }
    for d in &diff.deltas {
        println!("  {}", d.describe());
    }
    let fatal = diff.fatal().count();
    if fatal > 0 {
        return Err(format!("{fatal} gate-fatal delta(s)"));
    }
    println!("ok: drift only, nothing gate-fatal");
    Ok(())
}

fn inspect_rebalance(opts: &HashMap<String, String>, pos: &[&str]) -> Result<(), String> {
    let name = *pos.first().ok_or(
        "usage: tempograph inspect rebalance RUN --data DIR [--max-moves N] \
         [--cost measured|invocations] [--ledger DIR]",
    )?;
    let dir = opts.get("data").ok_or("--data DIR is required")?;
    let max_moves: usize = parse(opts, "max-moves", 3)?;
    let measured = match opt(opts, "cost", "measured") {
        "measured" => true,
        "invocations" => false,
        other => {
            return Err(format!(
                "unknown cost source `{other}` (measured|invocations)"
            ))
        }
    };
    let ledger = open_ledger(opts)?;
    let rec = ledger.load(name).map_err(|e| e.to_string())?;
    if rec.attribution.is_empty() {
        return Err(format!(
            "run `{name}` has no cost attribution (record it via `tempograph run --ledger`)"
        ));
    }
    let store = GofsStore::open(dir).map_err(|e| e.to_string())?;
    let pg = store.partitioned_graph();
    if pg.subgraphs().len() != rec.config.subgraphs as usize
        || pg.num_partitions() != rec.config.partitions as usize
    {
        return Err(format!(
            "dataset {dir} has {} subgraphs / {} partitions but run `{name}` recorded {} / {}",
            pg.subgraphs().len(),
            pg.num_partitions(),
            rec.config.subgraphs,
            rec.config.partitions
        ));
    }
    let costs = rec.per_subgraph_costs(measured);
    let plan = suggest_rebalance_from(&pg, CostSource::MeasuredPerSubgraph(&costs), max_moves);
    println!(
        "run {name}: {} cost source over {} attributed subgraphs",
        if measured {
            "measured-ns"
        } else {
            "invocation-count"
        },
        costs.len()
    );
    println!(
        "makespan {} -> {} (predicted speedup {:.3}x)",
        plan.makespan_before,
        plan.makespan_after,
        plan.predicted_speedup()
    );
    if plan.moves.is_empty() {
        println!("no beneficial moves found");
        return Ok(());
    }
    for mv in &plan.moves {
        println!(
            "  move subgraph {:>4}: partition {} -> {} (shifts cost {})",
            mv.subgraph.idx(),
            mv.from,
            mv.to,
            mv.est_cost
        );
    }
    plan.apply(&pg)
        .map_err(|e| format!("plan failed validation against {dir}: {e}"))?;
    println!("plan validates against {dir}");
    Ok(())
}

fn cmd_partition(opts: &HashMap<String, String>) -> Result<(), String> {
    let preset = preset_of(opts)?;
    let scale: f64 = parse(opts, "scale", 0.5)?;
    let k: usize = parse(opts, "k", 6)?;
    let name = opt(opts, "partitioner", "multilevel");
    let partitioner = partitioner_of(name)?;
    let template = preset.template(scale);
    let started = Clock::start();
    let parts = partitioner.partition(&template, k);
    let elapsed = started.elapsed();
    println!(
        "{} on {} ({} V, {} E), k = {k}:",
        name,
        preset.name(),
        template.num_vertices(),
        template.num_edges()
    );
    println!(
        "  edge cut {:.3}%  balance {:.3}  time {:.2?}",
        100.0 * tempograph::partition::cut_fraction(&template, &parts),
        tempograph::partition::balance(&template, &parts),
        elapsed
    );
    println!("  sizes: {:?}", parts.sizes());
    Ok(())
}

/// Config adjustments shared by the coordinator and every worker — a
/// worker process must rebuild the byte-identical [`JobConfig`] (same
/// barrier schedule, same fault plan) from its mirrored flags.
struct JobTuning {
    /// Arm metrics + attribution for ledger recording.
    ledger_on: bool,
    /// `--observe true` — arm metrics + attribution without recording.
    observe: bool,
    /// `--status-addr HOST:PORT` — serve live introspection (implies
    /// observe; coordinator-side only, never mirrored to workers).
    status_addr: Option<String>,
    /// `--straggler-factor F` or env `TEMPOGRAPH_STRAGGLER_FACTOR`.
    straggler_factor: Option<f64>,
    /// `--checkpoint-every N --checkpoint-dir D`.
    checkpoint: Option<(usize, String)>,
    /// `--faults SPEC` (see `FaultPlan::from_spec`).
    fault_spec: Option<String>,
}

impl JobTuning {
    fn from_opts(opts: &HashMap<String, String>) -> Result<JobTuning, String> {
        let checkpoint = match (opts.get("checkpoint-dir"), opts.get("checkpoint-every")) {
            (Some(dir), every) => Some((
                every
                    .map(|v| {
                        v.parse()
                            .map_err(|_| format!("invalid value for --checkpoint-every: `{v}`"))
                    })
                    .transpose()?
                    .unwrap_or(1),
                dir.clone(),
            )),
            (None, Some(_)) => return Err("--checkpoint-every requires --checkpoint-dir".into()),
            (None, None) => None,
        };
        let straggler_factor: Option<f64> = match opts.get("straggler-factor") {
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value for --straggler-factor: `{v}`"))?,
            ),
            None => match std::env::var("TEMPOGRAPH_STRAGGLER_FACTOR") {
                Ok(v) => Some(v.parse().map_err(|_| {
                    format!("invalid TEMPOGRAPH_STRAGGLER_FACTOR in environment: `{v}`")
                })?),
                Err(_) => None,
            },
        };
        if let Some(f) = straggler_factor {
            if f.is_nan() || f < 1.0 {
                return Err(format!("--straggler-factor must be >= 1.0, got {f}"));
            }
        }
        Ok(JobTuning {
            ledger_on: opts.contains_key("ledger"),
            observe: parse(opts, "observe", false)?,
            status_addr: opts.get("status-addr").cloned(),
            straggler_factor,
            checkpoint,
            fault_spec: opts.get("faults").cloned(),
        })
    }

    /// True when the job should carry metrics + attribution — the same
    /// predicate arms telemetry shipping on both sides of a TCP cluster.
    fn observability_on(&self) -> bool {
        self.ledger_on || self.observe || self.status_addr.is_some()
    }

    fn apply<M>(&self, mut cfg: JobConfig<M>) -> Result<JobConfig<M>, String> {
        if self.observability_on() {
            cfg = cfg.with_metrics().with_attribution();
        }
        if let Some(addr) = &self.status_addr {
            cfg = cfg.with_status_addr(addr.clone());
        }
        if let Some(f) = self.straggler_factor {
            cfg = cfg.with_straggler_factor(f);
        }
        if let Some((every, dir)) = &self.checkpoint {
            cfg = cfg.with_checkpoint(*every, dir);
        }
        if let Some(spec) = &self.fault_spec {
            cfg = cfg.with_faults(FaultPlan::from_spec(spec)?);
        }
        Ok(cfg)
    }
}

/// How to execute one (factory, config) pair: locally, over a TCP
/// cluster, or as one TCP worker. Lets [`dispatch_algo`] own the
/// algo-name → (program, pattern) table once, while each caller supplies
/// the execution mode — the table is the single point that guarantees a
/// worker process builds the same job as its coordinator.
trait AlgoRunner {
    type Out;
    fn run<P, F>(self, factory: F, config: JobConfig<P::Msg>) -> Self::Out
    where
        P: SubgraphProgram,
        F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync + 'static;
}

/// The in-process simulated cluster (`run_job`).
struct LocalRunner<'a> {
    pg: &'a Arc<PartitionedGraph>,
    src: &'a InstanceSource,
}

impl AlgoRunner for LocalRunner<'_> {
    type Out = JobResult;
    fn run<P, F>(self, factory: F, config: JobConfig<P::Msg>) -> JobResult
    where
        P: SubgraphProgram,
        F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync + 'static,
    {
        run_job(self.pg, self.src, factory, config)
    }
}

/// A TCP cluster (`run_job_tcp`), threads or spawned worker processes.
struct TcpRunner<'a> {
    pg: &'a Arc<PartitionedGraph>,
    src: &'a InstanceSource,
    cluster: Cluster,
}

impl AlgoRunner for TcpRunner<'_> {
    type Out = Result<JobResult, EngineError>;
    fn run<P, F>(self, factory: F, config: JobConfig<P::Msg>) -> Self::Out
    where
        P: SubgraphProgram,
        F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync + 'static,
    {
        run_job_tcp(self.pg, self.src, factory, config, self.cluster)
    }
}

/// One worker process in a TCP cluster (`run_tcp_worker`); yields the
/// process exit code.
struct WorkerRunner {
    coordinator: String,
    partition: u16,
    pg: Arc<PartitionedGraph>,
    src: InstanceSource,
}

impl AlgoRunner for WorkerRunner {
    type Out = i32;
    fn run<P, F>(self, factory: F, config: JobConfig<P::Msg>) -> i32
    where
        P: SubgraphProgram,
        F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync + 'static,
    {
        run_tcp_worker::<P, F>(
            self.coordinator,
            self.partition,
            self.pg,
            self.src,
            factory,
            config,
        )
    }
}

/// The algo-name → (program factory, job pattern) table, shared by `run`
/// (all transports) and `worker` so both sides of a TCP cluster agree on
/// the job byte-for-byte.
#[allow(clippy::too_many_arguments)]
fn dispatch_algo<R: AlgoRunner>(
    algo: &str,
    t: &GraphTemplate,
    timesteps: usize,
    source: VertexIdx,
    meme: String,
    tuning: &JobTuning,
    runner: R,
) -> Result<R::Out, String> {
    let find_v = |name: &str| t.vertex_schema().index_of(name);
    let find_e = |name: &str| t.edge_schema().index_of(name);
    Ok(match algo {
        "tdsp" => {
            let col = find_e(LATENCY_ATTR).ok_or("dataset lacks a latency column")?;
            runner.run(
                Tdsp::factory(source, col),
                tuning
                    .apply(JobConfig::sequentially_dependent(timesteps).while_active(timesteps))?,
            )
        }
        "meme" => {
            let col = find_v(TWEETS_ATTR).ok_or("dataset lacks a tweets column")?;
            runner.run(
                MemeTracking::factory(meme, col),
                tuning.apply(JobConfig::sequentially_dependent(timesteps))?,
            )
        }
        "hash" => {
            let col = find_v(TWEETS_ATTR).ok_or("dataset lacks a tweets column")?;
            runner.run(
                HashtagAggregation::factory(meme, col),
                tuning.apply(JobConfig::eventually_dependent(timesteps))?,
            )
        }
        "sssp" => {
            let col = find_e(LATENCY_ATTR);
            runner.run(
                Sssp::factory(source, col),
                tuning.apply(JobConfig::independent(1))?,
            )
        }
        "bfs" => runner.run(
            Sssp::factory(source, None),
            tuning.apply(JobConfig::independent(1))?,
        ),
        "wcc" => runner.run(Wcc::factory(), tuning.apply(JobConfig::independent(1))?),
        "pagerank" => runner.run(
            PageRank::factory(10),
            tuning.apply(JobConfig::independent(1))?,
        ),
        "topn" => {
            let col = find_v(TWEETS_ATTR).ok_or("dataset lacks a tweets column")?;
            runner.run(
                TopNActivity::factory(5, col),
                tuning.apply(JobConfig::independent(timesteps))?,
            )
        }
        "stats" => runner.run(
            tempograph::algos::InstanceStats::factory(
                find_v(TWEETS_ATTR),
                find_e(LATENCY_ATTR),
                200.0,
            ),
            tuning.apply(JobConfig::independent(timesteps))?,
        ),
        other => return Err(format!("unknown algorithm `{other}`")),
    })
}

fn cmd_worker(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = opts.get("data").ok_or("--data DIR is required")?;
    let algo = opts.get("algo").ok_or("--algo is required")?;
    let partition: u16 = opts
        .get("partition")
        .ok_or("--partition N is required")?
        .parse()
        .map_err(|_| "invalid value for --partition".to_string())?;
    let coordinator = opts
        .get("coordinator")
        .ok_or("--coordinator ADDR is required")?
        .clone();
    let store = GofsStore::open(dir).map_err(|e| e.to_string())?;
    let t = store.template().clone();
    let pg = Arc::new(store.partitioned_graph());
    let max_ts = store.meta().num_timesteps;
    let timesteps: usize = parse(opts, "timesteps", max_ts)?.min(max_ts);
    let source = VertexIdx(parse(opts, "source", 0u32)?);
    let meme = opt(opts, "meme", "#meme").to_string();
    let tuning = JobTuning::from_opts(opts)?;
    let code = dispatch_algo(
        algo,
        &t,
        timesteps,
        source,
        meme,
        &tuning,
        WorkerRunner {
            coordinator,
            partition,
            pg,
            src: InstanceSource::Gofs(dir.into()),
        },
    )?;
    // Exit code is the cross-process failure-attribution channel (see
    // `INJECTED_EXIT_CODE`) — bypass ExitCode to report it exactly.
    std::process::exit(code);
}

fn cmd_status(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts.get("addr").ok_or("--addr HOST:PORT is required")?;
    let reply = query_status(addr).map_err(|e| e.to_string())?;
    println!("cluster @ {addr}: {} workers", reply.workers.len());
    println!(
        "{:>9}  {:>5}  {:>8}  {:>10}  {:>14}  {:>12}  {:>12}  {:>14}",
        "partition",
        "epoch",
        "timestep",
        "supersteps",
        "barrier-wait",
        "sent",
        "received",
        "last telemetry"
    );
    for w in &reply.workers {
        let age = if w.last_telemetry_ms == u64::MAX {
            "never".to_string()
        } else {
            format!("{} ms ago", w.last_telemetry_ms)
        };
        println!(
            "{:>9}  {:>5}  {:>8}  {:>10}  {:>11.3} ms  {:>10} B  {:>10} B  {:>14}",
            w.partition,
            w.epoch,
            w.timestep,
            w.supersteps,
            w.barrier_wait_ns as f64 / 1e6,
            w.bytes_sent,
            w.bytes_received,
            age
        );
    }
    Ok(())
}

fn cmd_run(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = opts.get("data").ok_or("--data DIR is required")?;
    let algo = opts.get("algo").ok_or("--algo is required")?;
    let store = GofsStore::open(dir).map_err(|e| e.to_string())?;
    let t = store.template().clone();
    let pg = Arc::new(store.partitioned_graph());
    let max_ts = store.meta().num_timesteps;
    let timesteps: usize = parse(opts, "timesteps", max_ts)?.min(max_ts);
    let source = VertexIdx(parse(opts, "source", 0u32)?);
    let meme = opt(opts, "meme", "#meme").to_string();
    let src = InstanceSource::Gofs(dir.into());
    let tuning = JobTuning::from_opts(opts)?;
    let transport = opt(opts, "transport", "inprocess");

    println!(
        "running {algo} over {timesteps} timesteps on {} partitions ({transport})…",
        pg.num_partitions()
    );
    let started = Clock::start();
    let result = match transport {
        "inprocess" => dispatch_algo(
            algo,
            &t,
            timesteps,
            source,
            meme,
            &tuning,
            LocalRunner { pg: &pg, src: &src },
        )?,
        "tcp" => dispatch_algo(
            algo,
            &t,
            timesteps,
            source,
            meme,
            &tuning,
            TcpRunner {
                pg: &pg,
                src: &src,
                cluster: Cluster::Threads,
            },
        )?
        .map_err(|e| format!("tcp job failed: {e}"))?,
        "tcp-process" => {
            let worker_bin = std::env::current_exe().map_err(|e| e.to_string())?;
            // Mirror every job-shaping flag so workers rebuild the
            // identical config (see `tempograph worker` usage).
            let mut worker_args: Vec<String> = vec![
                "worker".into(),
                "--data".into(),
                dir.clone(),
                "--algo".into(),
                algo.clone(),
                "--timesteps".into(),
                timesteps.to_string(),
                "--source".into(),
                source.0.to_string(),
                "--meme".into(),
                meme.clone(),
            ];
            if tuning.observability_on() {
                // Workers must arm metrics + attribution whenever the
                // coordinator does (--ledger / --observe / --status-addr)
                // so they ship telemetry frames the coordinator merges;
                // otherwise a tcp-process ledger record would be empty.
                worker_args.extend(["--observe".into(), "true".into()]);
            }
            if let Some((every, ckdir)) = &tuning.checkpoint {
                worker_args.extend([
                    "--checkpoint-every".into(),
                    every.to_string(),
                    "--checkpoint-dir".into(),
                    ckdir.clone(),
                ]);
            }
            if let Some(spec) = &tuning.fault_spec {
                worker_args.extend(["--faults".into(), spec.clone()]);
            }
            dispatch_algo(
                algo,
                &t,
                timesteps,
                source,
                meme,
                &tuning,
                TcpRunner {
                    pg: &pg,
                    src: &src,
                    cluster: Cluster::Processes {
                        worker_bin,
                        worker_args,
                    },
                },
            )?
            .map_err(|e| format!("tcp-process job failed: {e}"))?
        }
        other => {
            return Err(format!(
                "unknown transport `{other}` (inprocess|tcp|tcp-process)"
            ))
        }
    };
    let elapsed = started.elapsed();

    println!(
        "finished in {elapsed:.2?} ({} timesteps run)",
        result.timesteps_run
    );
    println!("emitted values : {}", result.emitted.len());
    for (name, per_t) in &result.counters {
        let total: u64 = per_t.iter().flatten().sum();
        println!("counter {name:24} total {total}");
    }
    for (name, per_p) in &result.merge_counters {
        let total: u64 = per_p.iter().sum();
        println!("merge counter {name:18} total {total}");
    }
    let m: u64 = result
        .metrics
        .iter()
        .flatten()
        .map(|m| m.msgs_local + m.msgs_remote)
        .sum();
    let loads: u64 = result.metrics.iter().flatten().map(|m| m.slice_loads).sum();
    println!("messages       : {m}");
    println!("slice loads    : {loads}");

    // With observability armed, print the coordinator-side registry totals
    // next to the worker-local sums above. Over TCP the histogram content
    // arrives only via telemetry frames, so nonzero observation counts here
    // prove the worker shards were shipped and merged; everything printed
    // is deterministic, so the line must match across transports.
    if let Some(reg) = &result.registry {
        let snap = reg.snapshot();
        let hist_count = |name: &str| match snap.get(name, &[]) {
            Some(tempograph::metrics::Metric::Histogram(h)) => h.count(),
            _ => 0,
        };
        let reg_msgs = snap.counter_total("tempograph_msgs_local_total")
            + snap.counter_total("tempograph_msgs_remote_total");
        println!(
            "registry       : messages {reg_msgs}, slice loads {}, compute spans {}, barrier waits {}",
            snap.counter_total("tempograph_slice_loads_total"),
            hist_count("tempograph_superstep_compute_ns"),
            hist_count("tempograph_barrier_wait_ns"),
        );
    }

    if let Some(ldir) = opts.get("ledger") {
        let pattern = match algo.as_str() {
            "tdsp" | "meme" => "sequentially-dependent",
            "hash" => "eventually-dependent",
            _ => "independent",
        };
        let meta = store.meta();
        let fp = ConfigFingerprint {
            algorithm: algo.clone(),
            pattern: pattern.to_string(),
            partitions: pg.num_partitions() as u32,
            subgraphs: pg.subgraphs().len() as u32,
            timesteps: timesteps as u32,
            start_time: meta.start_time,
            period: meta.period,
            seed: parse(opts, "seed", 0u64)?,
            dataset: dir.clone(),
            env: ConfigFingerprint::host_env(),
        };
        let mut rec = RunRecord::from_result(fp, &result);
        if parse(opts, "deterministic", false)? {
            rec.strip_nondeterminism();
        }
        let ledger = Ledger::open(ldir).map_err(|e| e.to_string())?;
        let name = ledger.record(&rec).map_err(|e| e.to_string())?;
        println!(
            "recorded run   : {name} ({})",
            ledger.path_of(&name).display()
        );
    }
    Ok(())
}
