//! # tempograph — distributed programming over time-series graphs
//!
//! A Rust reproduction of *"Distributed Programming over Time-series
//! Graphs"* (IPDPS 2015): the time-series graph data model, the
//! **Temporally Iterative BSP (TI-BSP)** abstraction on a subgraph-centric
//! engine, GoFS-style slice storage, a METIS-like partitioner, a
//! vertex-centric baseline, and the paper's algorithms (Hashtag
//! Aggregation, Meme Tracking, Time-Dependent Shortest Path).
//!
//! This facade crate re-exports every subsystem; see the README for a tour
//! and `examples/` for runnable end-to-end scenarios.
//!
//! ```
//! use tempograph::prelude::*;
//!
//! // Build a tiny road network that changes every 5 minutes.
//! let mut b = TemplateBuilder::new("demo", false);
//! b.edge_schema().add("latency", AttrType::Double);
//! b.add_vertex(0); b.add_vertex(1);
//! b.add_edge(0, 0, 1).unwrap();
//! let template = std::sync::Arc::new(b.finalize().unwrap());
//! let mut series = TimeSeriesCollection::new(template, 0, 300);
//! series.push(series.new_instance()).unwrap();
//! assert_eq!(series.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub use tempograph_algos as algos;
pub use tempograph_core as core;
pub use tempograph_engine as engine;
pub use tempograph_gen as gen;
pub use tempograph_gofs as gofs;
pub use tempograph_ledger as ledger;
pub use tempograph_metrics as metrics;
pub use tempograph_partition as partition;
pub use tempograph_pregel as pregel;
pub use tempograph_trace as trace;

/// The names most programs need, in one import.
pub mod prelude {
    pub use tempograph_algos::{
        HashtagAggregation, MemeTracking, PageRank, Sssp, Tdsp, TopNActivity, Wcc,
    };
    pub use tempograph_core::{
        AttrType, AttrValue, GraphInstance, GraphTemplate, Schema, TemplateBuilder,
        TimeSeriesCollection, VertexIdx,
    };
    pub use tempograph_engine::{
        query_status, run_job, run_job_tcp, run_tcp_worker, AttributionRow, CheckpointConfig,
        Cluster, Context, CostAttribution, EngineError, Envelope, FaultPlan, InstanceSource,
        JobConfig, JobResult, Pattern, StatusReplyMsg, SubgraphProgram, TimestepMode, Transport,
        WorkerStatusWire, DEFAULT_STRAGGLER_FACTOR,
    };
    pub use tempograph_gen::{
        carn_like, generate_road_latencies, generate_sir_tweets, road_network, small_world,
        wiki_like, DatasetPreset, RoadLatencyConfig, RoadNetConfig, SirConfig, SmallWorldConfig,
        LATENCY_ATTR, TWEETS_ATTR,
    };
    pub use tempograph_gofs::{GofsStore, GofsWriter, InstanceLoader};
    pub use tempograph_ledger::{diff_records, ConfigFingerprint, Ledger, RecordDiff, RunRecord};
    pub use tempograph_metrics::{Histogram, Registry, Snapshot};
    pub use tempograph_partition::{
        discover_subgraphs, suggest_rebalance, suggest_rebalance_from, CostSource, HashPartitioner,
        LdgPartitioner, MultilevelPartitioner, PartitionedGraph, Partitioner, Partitioning,
        RebalancePlan, Subgraph, SubgraphId,
    };
    pub use tempograph_trace::{Clock, Trace, TraceConfig, TraceMode, TraceSink};
}
