//! Deterministic fault injection for chaos-testing the TI-BSP engine.
//!
//! A [`FaultPlan`] is a fixed schedule of failures — worker panics at a
//! `(partition, timestep, superstep)` coordinate, torn checkpoint writes,
//! transient send failures — that the executor consults at well-defined
//! points (superstep entry, the remote-send path, the checkpoint writer).
//! Because the engine itself is deterministic, a plan derived from a `u64`
//! seed reproduces the *same* crash at the *same* point of the *same*
//! computation on every run: chaos runs are exactly replayable, which is
//! what lets `tests/recovery_equivalence.rs` assert that a crashed-and-
//! recovered job is byte-identical to an undisturbed one.
//!
//! Panic-style events carry a one-shot flag (shared across recovery
//! attempts of one `run_job` call), so a worker that died at timestep `t`
//! does not die again when re-executing `t` after restoring a checkpoint —
//! mirroring a real transient host failure. Send-failure events are
//! stateless: they model a retried transmission and re-fire identically on
//! re-execution, keeping the recovered message stream equal to the clean
//! one.

use std::sync::atomic::{AtomicBool, Ordering};

/// Marker embedded in every injected panic's payload. The recovery loop in
/// [`crate::run_job`] only catches worker deaths whose panic message
/// contains this marker: a *real* bug would deterministically re-trigger
/// after restore, so recovering from it would loop forever — those panics
/// are re-surfaced to the caller instead.
pub const INJECTED_FAULT_MARKER: &str = "injected fault";

/// Panic message for an injected worker death (superstep `usize::MAX`
/// denotes "during checkpoint write").
pub(crate) fn injected_panic_message(partition: u16, timestep: usize, superstep: usize) -> String {
    if superstep == usize::MAX {
        format!(
            "{INJECTED_FAULT_MARKER}: worker for partition {partition} killed mid-checkpoint-write \
             at timestep {timestep}"
        )
    } else {
        format!(
            "{INJECTED_FAULT_MARKER}: worker for partition {partition} killed at timestep \
             {timestep}, superstep {superstep}"
        )
    }
}

/// True when a worker thread's panic payload came from an injected fault.
pub(crate) fn payload_is_injected(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<String>()
        .map(|s| s.contains(INJECTED_FAULT_MARKER))
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.contains(INJECTED_FAULT_MARKER))
        })
        .unwrap_or(false)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultKind {
    /// Kill the worker at the start of this superstep.
    Panic { superstep: u64 },
    /// Kill the worker halfway through writing its checkpoint file for
    /// this timestep (exercises the tempfile + rename atomicity).
    CheckpointPanic,
    /// One transient send failure: the first transmission of each remote
    /// batch this worker sends during this superstep is "lost" and
    /// retried (counted in `TimestepMetrics::send_retries`).
    SendFail { superstep: u64 },
    /// Damage the worker's `frame`-th outgoing data frame at the transport
    /// seam (TCP only; the in-process transport has no frames to damage).
    /// Stateless like `SendFail`: every damaged transmission is immediately
    /// retransmitted, so delivery stays exactly-once and results are
    /// byte-identical to a fault-free run. `frame` counts this worker's
    /// data frames from 1 within one transport epoch. The `timestep` field
    /// of the enclosing event is unused (stored as 0).
    Frame { frame: u64, fault: FrameFault },
}

/// How an injected transport fault damages a data frame's first
/// transmission. All four preserve exactly-once delivery: the sender
/// immediately compensates (retransmit / receiver-side dedup), mirroring a
/// reliable transport riding on a lossy wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// The first transmission is lost before the wire; the sender
    /// retransmits at once (ticks `TimestepMetrics::send_retries`).
    Drop,
    /// The frame is transmitted twice with the same sequence number; the
    /// receiver deduplicates by `(peer, seq)`.
    Duplicate,
    /// The frame is held back and sent after the next data frame to the
    /// same destination (or flushed before the end-of-phase sentinel); the
    /// receiver restores sequence order.
    Reorder,
    /// The first transmission's payload is corrupted in flight (the
    /// declared checksum no longer matches); the receiver discards it on
    /// checksum failure and the sender retransmits a clean copy.
    Truncate,
}

#[derive(Debug)]
struct FaultEvent {
    partition: u16,
    timestep: u64,
    kind: FaultKind,
    /// One-shot latch for panic-style events; shared across the recovery
    /// attempts of one job so a fault does not re-fire after restore.
    fired: AtomicBool,
}

impl FaultEvent {
    fn fire_once(&self) -> bool {
        // AcqRel (lint rule A01): the latch decides which worker run dies,
        // and recovery attempts read it after the previous attempt's writes
        // — the winner's `true` must be visible before any later check.
        !self.fired.swap(true, Ordering::AcqRel)
    }
}

/// A deterministic, reproducible schedule of injected failures.
///
/// Build one explicitly with [`FaultPlan::panic_at`] /
/// [`FaultPlan::fail_send_at`] / [`FaultPlan::panic_in_checkpoint`], or
/// derive a pseudo-random schedule from a seed with
/// [`FaultPlan::from_seed`]. Install it with
/// [`crate::JobConfig::with_faults`]; recovery additionally requires
/// [`crate::JobConfig::with_checkpoint`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (inject failures via the builder methods).
    pub fn new() -> Self {
        Self::default()
    }

    /// The seed this plan was derived from, if any.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Schedule a worker death at the start of `(partition, timestep,
    /// superstep)`. Fires at most once per plan.
    pub fn panic_at(mut self, partition: u16, timestep: usize, superstep: usize) -> Self {
        self.events.push(FaultEvent {
            partition,
            timestep: timestep as u64,
            kind: FaultKind::Panic {
                superstep: superstep as u64,
            },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a worker death halfway through writing its checkpoint file
    /// at the end of `timestep`. Fires at most once per plan.
    pub fn panic_in_checkpoint(mut self, partition: u16, timestep: usize) -> Self {
        self.events.push(FaultEvent {
            partition,
            timestep: timestep as u64,
            kind: FaultKind::CheckpointPanic,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a transient send failure for every remote batch `partition`
    /// sends during `(timestep, superstep)`. Stateless: re-fires
    /// identically when the superstep is re-executed after recovery.
    pub fn fail_send_at(mut self, partition: u16, timestep: usize, superstep: usize) -> Self {
        self.events.push(FaultEvent {
            partition,
            timestep: timestep as u64,
            kind: FaultKind::SendFail {
                superstep: superstep as u64,
            },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a transport-seam fault on the `frame`-th data frame (1-based
    /// within a transport epoch) that `partition` sends over a TCP
    /// transport. Ignored by the in-process transport. Stateless.
    pub fn frame_fault_at(mut self, partition: u16, frame: u64, fault: FrameFault) -> Self {
        assert!(frame >= 1, "frame faults count data frames from 1");
        self.events.push(FaultEvent {
            partition,
            timestep: 0,
            kind: FaultKind::Frame { frame, fault },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Derive a pseudo-random schedule from `seed` for a job over
    /// `partitions` workers and (up to) `timesteps` timesteps: one or two
    /// worker deaths, possibly one torn checkpoint write, and up to three
    /// transient send failures. Identical seeds yield identical schedules
    /// on every platform (splitmix64, no external RNG).
    pub fn from_seed(seed: u64, partitions: u16, timesteps: usize) -> Self {
        assert!(partitions >= 1 && timesteps >= 1);
        let mut s = SplitMix64(seed);
        let mut plan = FaultPlan::new();
        let n_panics = 1 + (s.next() % 2) as usize;
        for _ in 0..n_panics {
            let p = (s.next() % partitions as u64) as u16;
            let t = (s.next() % timesteps as u64) as usize;
            let ss = (s.next() % 3) as usize;
            plan = plan.panic_at(p, t, ss);
        }
        if s.next().is_multiple_of(4) {
            let p = (s.next() % partitions as u64) as u16;
            let t = (s.next() % timesteps as u64) as usize;
            plan = plan.panic_in_checkpoint(p, t);
        }
        let n_sends = (s.next() % 4) as usize;
        for _ in 0..n_sends {
            let p = (s.next() % partitions as u64) as u16;
            let t = (s.next() % timesteps as u64) as usize;
            let ss = (s.next() % 3) as usize;
            plan = plan.fail_send_at(p, t, ss);
        }
        plan.seed = Some(seed);
        plan
    }

    /// Read a seed from the `TEMPOGRAPH_FAULTS` env var (unset/`0`/`off` ⇒
    /// `None`) and derive a plan via [`FaultPlan::from_seed`].
    pub fn from_env(partitions: u16, timesteps: usize) -> Option<Self> {
        let v = std::env::var("TEMPOGRAPH_FAULTS").ok()?;
        let v = v.trim();
        if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") {
            return None;
        }
        let seed: u64 = v.parse().ok()?;
        Some(Self::from_seed(seed, partitions, timesteps))
    }

    /// Number of scheduled panic-style events (worker deaths + torn
    /// checkpoint writes). Bounds the recovery attempts a job can need.
    pub fn panic_events(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Panic { .. } | FaultKind::CheckpointPanic))
            .count()
    }

    /// Re-arm every one-shot event, so the same plan value can drive a
    /// second independent `run_job` call.
    pub fn reset(&self) {
        for e in &self.events {
            // Release pairs with the AcqRel swap in `fire_once` (lint rule
            // A01): workers of the next run must observe the re-armed latch.
            e.fired.store(false, Ordering::Release);
        }
    }

    /// One-shot check: should `partition` die at the start of
    /// `(timestep, superstep)`?
    pub(crate) fn should_panic(&self, partition: u16, timestep: u64, superstep: u64) -> bool {
        self.events.iter().any(|e| {
            e.partition == partition
                && e.timestep == timestep
                && e.kind == FaultKind::Panic { superstep }
                && e.fire_once()
        })
    }

    /// One-shot check: should `partition` die mid-checkpoint-write at the
    /// end of `timestep`?
    pub(crate) fn should_panic_in_checkpoint(&self, partition: u16, timestep: u64) -> bool {
        self.events.iter().any(|e| {
            e.partition == partition
                && e.timestep == timestep
                && e.kind == FaultKind::CheckpointPanic
                && e.fire_once()
        })
    }

    /// Stateless check: do `partition`'s remote sends transiently fail
    /// during `(timestep, superstep)`?
    pub(crate) fn should_fail_send(&self, partition: u16, timestep: u64, superstep: u64) -> bool {
        self.events.iter().any(|e| {
            e.partition == partition
                && e.timestep == timestep
                && e.kind == FaultKind::SendFail { superstep }
        })
    }

    /// Stateless check: how should the `frame`-th data frame `partition`
    /// sends be damaged at the transport seam, if at all?
    pub(crate) fn frame_fault(&self, partition: u16, frame: u64) -> Option<FrameFault> {
        self.events.iter().find_map(|e| match e.kind {
            FaultKind::Frame { frame: f, fault } if e.partition == partition && f == frame => {
                Some(fault)
            }
            _ => None,
        })
    }

    /// Append a seeded batch of transport-seam frame faults: 2–5 damaged
    /// frames spread over `partitions` senders' first `max_frame` data
    /// frames, cycling through all four [`FrameFault`] kinds. Deterministic
    /// for a given seed (splitmix64, like [`FaultPlan::from_seed`]).
    pub fn with_frame_faults_from_seed(
        mut self,
        seed: u64,
        partitions: u16,
        max_frame: u64,
    ) -> Self {
        assert!(partitions >= 1 && max_frame >= 1);
        let mut s = SplitMix64(seed ^ 0x00f0_a1e5_u64);
        let n = 2 + (s.next() % 4) as usize;
        const KINDS: [FrameFault; 4] = [
            FrameFault::Drop,
            FrameFault::Duplicate,
            FrameFault::Reorder,
            FrameFault::Truncate,
        ];
        for i in 0..n {
            let p = (s.next() % partitions as u64) as u16;
            let frame = 1 + s.next() % max_frame;
            self = self.frame_fault_at(p, frame, KINDS[i % KINDS.len()]);
        }
        self
    }

    /// Indices (into this plan's event list) of panic-style events whose
    /// one-shot latch has fired. A multi-process coordinator ships this
    /// list to freshly spawned workers so their independently parsed copy
    /// of the plan does not replay a death that already happened.
    pub fn fired_indices(&self) -> Vec<u32> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.fired.load(Ordering::Acquire))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Latch the events at `indices` as already fired (see
    /// [`FaultPlan::fired_indices`]). Out-of-range indices are ignored.
    pub fn mark_fired(&self, indices: &[u32]) {
        for &i in indices {
            if let Some(e) = self.events.get(i as usize) {
                // Release pairs with the Acquire loads in `fired_indices` /
                // `fire_once` (lint rule A01).
                e.fired.store(true, Ordering::Release);
            }
        }
    }

    /// Index of `partition`'s earliest panic-style event that has not yet
    /// fired, latching it as fired. A multi-process coordinator cannot
    /// observe *which* event killed a remote worker (the panic happened in
    /// another address space), so it attributes the death to the earliest
    /// unfired candidate — exact for deterministic plans, whose events fire
    /// in schedule order.
    pub fn attribute_death(&self, partition: u16) -> Option<u32> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.partition == partition
                    && matches!(e.kind, FaultKind::Panic { .. } | FaultKind::CheckpointPanic)
            })
            .find(|(_, e)| e.fire_once())
            .map(|(i, _)| i as u32)
    }

    /// Serialise this plan as a compact text spec (`;`-separated events),
    /// the inverse of [`FaultPlan::from_spec`]. Lets a coordinator hand the
    /// exact schedule to worker *processes* via a CLI argument.
    pub fn to_spec(&self) -> String {
        let mut parts = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let p = e.partition;
            let t = e.timestep;
            parts.push(match e.kind {
                FaultKind::Panic { superstep } => format!("panic@p{p}:t{t}:s{superstep}"),
                FaultKind::CheckpointPanic => format!("ckpt@p{p}:t{t}"),
                FaultKind::SendFail { superstep } => format!("send@p{p}:t{t}:s{superstep}"),
                FaultKind::Frame { frame, fault } => {
                    let name = match fault {
                        FrameFault::Drop => "drop",
                        FrameFault::Duplicate => "dup",
                        FrameFault::Reorder => "reorder",
                        FrameFault::Truncate => "trunc",
                    };
                    format!("{name}@p{p}:f{frame}")
                }
            });
        }
        parts.join(";")
    }

    /// Parse a plan from the text spec produced by [`FaultPlan::to_spec`].
    /// Event order (and therefore event indices) round-trips exactly, which
    /// is what makes [`FaultPlan::fired_indices`] meaningful across
    /// processes. An empty spec yields an empty plan.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(';').filter(|s| !s.trim().is_empty()) {
            let (kind, coords) = part
                .split_once('@')
                .ok_or_else(|| format!("fault spec `{part}` lacks `@`"))?;
            let field = |prefix: char| -> Result<u64, String> {
                coords
                    .split(':')
                    .find_map(|c| c.strip_prefix(prefix))
                    .ok_or_else(|| format!("fault spec `{part}` lacks `{prefix}` field"))?
                    .parse()
                    .map_err(|_| format!("fault spec `{part}`: bad `{prefix}` field"))
            };
            let p = field('p')? as u16;
            plan = match kind {
                "panic" => plan.panic_at(p, field('t')? as usize, field('s')? as usize),
                "ckpt" => plan.panic_in_checkpoint(p, field('t')? as usize),
                "send" => plan.fail_send_at(p, field('t')? as usize, field('s')? as usize),
                "drop" => plan.frame_fault_at(p, field('f')?, FrameFault::Drop),
                "dup" => plan.frame_fault_at(p, field('f')?, FrameFault::Duplicate),
                "reorder" => plan.frame_fault_at(p, field('f')?, FrameFault::Reorder),
                "trunc" => plan.frame_fault_at(p, field('f')?, FrameFault::Truncate),
                other => return Err(format!("unknown fault kind `{other}` in `{part}`")),
            };
        }
        Ok(plan)
    }
}

/// splitmix64 — tiny, seedable, platform-independent. Inlined rather than
/// depending on the vendored `rand` so fault schedules stay stable even if
/// the workspace RNG changes.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_events_fire_exactly_once() {
        let plan = FaultPlan::new().panic_at(1, 3, 0);
        assert!(!plan.should_panic(0, 3, 0), "wrong partition");
        assert!(!plan.should_panic(1, 2, 0), "wrong timestep");
        assert!(!plan.should_panic(1, 3, 1), "wrong superstep");
        assert!(plan.should_panic(1, 3, 0), "first hit fires");
        assert!(!plan.should_panic(1, 3, 0), "second hit is latched");
        plan.reset();
        assert!(plan.should_panic(1, 3, 0), "reset re-arms");
    }

    #[test]
    fn send_failures_are_stateless() {
        let plan = FaultPlan::new().fail_send_at(0, 1, 2);
        assert!(plan.should_fail_send(0, 1, 2));
        assert!(plan.should_fail_send(0, 1, 2), "re-fires on re-execution");
        assert!(!plan.should_fail_send(0, 1, 1));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_vary_by_seed() {
        let a = format!("{:?}", FaultPlan::from_seed(42, 3, 10));
        let b = format!("{:?}", FaultPlan::from_seed(42, 3, 10));
        assert_eq!(a, b, "same seed ⇒ same schedule");
        let c = format!("{:?}", FaultPlan::from_seed(43, 3, 10));
        assert_ne!(a, c, "different seed ⇒ different schedule");
        for seed in 0..50 {
            let plan = FaultPlan::from_seed(seed, 4, 8);
            assert!(plan.panic_events() >= 1, "every seeded plan kills someone");
            assert_eq!(plan.seed(), Some(seed));
        }
    }

    #[test]
    fn injected_payloads_are_recognised() {
        let msg = injected_panic_message(2, 5, 1);
        assert!(msg.contains("partition 2"));
        let payload: Box<dyn std::any::Any + Send> = Box::new(msg);
        assert!(payload_is_injected(payload.as_ref()));
        let other: Box<dyn std::any::Any + Send> = Box::new("index out of bounds".to_string());
        assert!(!payload_is_injected(other.as_ref()));
    }

    #[test]
    fn frame_faults_are_stateless_and_keyed_by_sender_and_ordinal() {
        let plan = FaultPlan::new()
            .frame_fault_at(1, 3, FrameFault::Drop)
            .frame_fault_at(2, 3, FrameFault::Reorder);
        assert_eq!(plan.frame_fault(1, 3), Some(FrameFault::Drop));
        assert_eq!(plan.frame_fault(1, 3), Some(FrameFault::Drop), "re-fires");
        assert_eq!(plan.frame_fault(2, 3), Some(FrameFault::Reorder));
        assert_eq!(plan.frame_fault(1, 2), None);
        assert_eq!(plan.frame_fault(0, 3), None);
    }

    #[test]
    fn spec_round_trips_every_event_kind_in_order() {
        let plan = FaultPlan::new()
            .panic_at(1, 3, 0)
            .panic_in_checkpoint(0, 2)
            .fail_send_at(2, 1, 0)
            .frame_fault_at(0, 3, FrameFault::Drop)
            .frame_fault_at(1, 5, FrameFault::Duplicate)
            .frame_fault_at(2, 7, FrameFault::Reorder)
            .frame_fault_at(0, 9, FrameFault::Truncate);
        let spec = plan.to_spec();
        assert_eq!(
            spec,
            "panic@p1:t3:s0;ckpt@p0:t2;send@p2:t1:s0;drop@p0:f3;dup@p1:f5;reorder@p2:f7;trunc@p0:f9"
        );
        let back = FaultPlan::from_spec(&spec).unwrap();
        assert_eq!(back.to_spec(), spec, "spec is a fixed point");
        assert_eq!(format!("{:?}", back.events), format!("{:?}", plan.events));
        assert!(FaultPlan::from_spec("").unwrap().events.is_empty());
        assert!(
            FaultPlan::from_spec("panic@p1:t3").is_err(),
            "missing field"
        );
        assert!(FaultPlan::from_spec("explode@p1:f1").is_err(), "bad kind");
    }

    #[test]
    fn fired_latches_ship_across_plan_copies() {
        let plan = FaultPlan::new().panic_at(0, 1, 0).panic_at(1, 2, 0);
        assert_eq!(plan.attribute_death(1), Some(1));
        assert_eq!(plan.fired_indices(), vec![1]);
        assert_eq!(plan.attribute_death(1), None, "latched");
        let copy = FaultPlan::from_spec(&plan.to_spec()).unwrap();
        copy.mark_fired(&plan.fired_indices());
        assert!(!copy.should_panic(1, 2, 0), "shipped latch holds");
        assert!(copy.should_panic(0, 1, 0), "unfired event still live");
    }

    #[test]
    fn seeded_frame_faults_are_reproducible() {
        let a = FaultPlan::new().with_frame_faults_from_seed(9, 3, 20);
        let b = FaultPlan::new().with_frame_faults_from_seed(9, 3, 20);
        assert_eq!(a.to_spec(), b.to_spec());
        assert!((2..=5).contains(&a.events.len()));
        for e in &a.events {
            assert!(matches!(e.kind, FaultKind::Frame { frame, .. } if (1..=20).contains(&frame)));
        }
    }

    #[test]
    fn env_opt_in_parses_seed() {
        // Uses explicit var names to avoid cross-test races: from_env reads
        // the real environment, so only assert the "unset ⇒ None" shape via
        // a name that is certainly unset plus direct seed derivation.
        assert!(FaultPlan::from_seed(7, 2, 4).panic_events() >= 1);
    }
}
