//! Deterministic fault injection for chaos-testing the TI-BSP engine.
//!
//! A [`FaultPlan`] is a fixed schedule of failures — worker panics at a
//! `(partition, timestep, superstep)` coordinate, torn checkpoint writes,
//! transient send failures — that the executor consults at well-defined
//! points (superstep entry, the remote-send path, the checkpoint writer).
//! Because the engine itself is deterministic, a plan derived from a `u64`
//! seed reproduces the *same* crash at the *same* point of the *same*
//! computation on every run: chaos runs are exactly replayable, which is
//! what lets `tests/recovery_equivalence.rs` assert that a crashed-and-
//! recovered job is byte-identical to an undisturbed one.
//!
//! Panic-style events carry a one-shot flag (shared across recovery
//! attempts of one `run_job` call), so a worker that died at timestep `t`
//! does not die again when re-executing `t` after restoring a checkpoint —
//! mirroring a real transient host failure. Send-failure events are
//! stateless: they model a retried transmission and re-fire identically on
//! re-execution, keeping the recovered message stream equal to the clean
//! one.

use std::sync::atomic::{AtomicBool, Ordering};

/// Marker embedded in every injected panic's payload. The recovery loop in
/// [`crate::run_job`] only catches worker deaths whose panic message
/// contains this marker: a *real* bug would deterministically re-trigger
/// after restore, so recovering from it would loop forever — those panics
/// are re-surfaced to the caller instead.
pub const INJECTED_FAULT_MARKER: &str = "injected fault";

/// Panic message for an injected worker death (superstep `usize::MAX`
/// denotes "during checkpoint write").
pub(crate) fn injected_panic_message(partition: u16, timestep: usize, superstep: usize) -> String {
    if superstep == usize::MAX {
        format!(
            "{INJECTED_FAULT_MARKER}: worker for partition {partition} killed mid-checkpoint-write \
             at timestep {timestep}"
        )
    } else {
        format!(
            "{INJECTED_FAULT_MARKER}: worker for partition {partition} killed at timestep \
             {timestep}, superstep {superstep}"
        )
    }
}

/// True when a worker thread's panic payload came from an injected fault.
pub(crate) fn payload_is_injected(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<String>()
        .map(|s| s.contains(INJECTED_FAULT_MARKER))
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.contains(INJECTED_FAULT_MARKER))
        })
        .unwrap_or(false)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultKind {
    /// Kill the worker at the start of this superstep.
    Panic { superstep: u64 },
    /// Kill the worker halfway through writing its checkpoint file for
    /// this timestep (exercises the tempfile + rename atomicity).
    CheckpointPanic,
    /// One transient send failure: the first transmission of each remote
    /// batch this worker sends during this superstep is "lost" and
    /// retried (counted in `TimestepMetrics::send_retries`).
    SendFail { superstep: u64 },
}

#[derive(Debug)]
struct FaultEvent {
    partition: u16,
    timestep: u64,
    kind: FaultKind,
    /// One-shot latch for panic-style events; shared across the recovery
    /// attempts of one job so a fault does not re-fire after restore.
    fired: AtomicBool,
}

impl FaultEvent {
    fn fire_once(&self) -> bool {
        // AcqRel (lint rule A01): the latch decides which worker run dies,
        // and recovery attempts read it after the previous attempt's writes
        // — the winner's `true` must be visible before any later check.
        !self.fired.swap(true, Ordering::AcqRel)
    }
}

/// A deterministic, reproducible schedule of injected failures.
///
/// Build one explicitly with [`FaultPlan::panic_at`] /
/// [`FaultPlan::fail_send_at`] / [`FaultPlan::panic_in_checkpoint`], or
/// derive a pseudo-random schedule from a seed with
/// [`FaultPlan::from_seed`]. Install it with
/// [`crate::JobConfig::with_faults`]; recovery additionally requires
/// [`crate::JobConfig::with_checkpoint`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (inject failures via the builder methods).
    pub fn new() -> Self {
        Self::default()
    }

    /// The seed this plan was derived from, if any.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Schedule a worker death at the start of `(partition, timestep,
    /// superstep)`. Fires at most once per plan.
    pub fn panic_at(mut self, partition: u16, timestep: usize, superstep: usize) -> Self {
        self.events.push(FaultEvent {
            partition,
            timestep: timestep as u64,
            kind: FaultKind::Panic {
                superstep: superstep as u64,
            },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a worker death halfway through writing its checkpoint file
    /// at the end of `timestep`. Fires at most once per plan.
    pub fn panic_in_checkpoint(mut self, partition: u16, timestep: usize) -> Self {
        self.events.push(FaultEvent {
            partition,
            timestep: timestep as u64,
            kind: FaultKind::CheckpointPanic,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Schedule a transient send failure for every remote batch `partition`
    /// sends during `(timestep, superstep)`. Stateless: re-fires
    /// identically when the superstep is re-executed after recovery.
    pub fn fail_send_at(mut self, partition: u16, timestep: usize, superstep: usize) -> Self {
        self.events.push(FaultEvent {
            partition,
            timestep: timestep as u64,
            kind: FaultKind::SendFail {
                superstep: superstep as u64,
            },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Derive a pseudo-random schedule from `seed` for a job over
    /// `partitions` workers and (up to) `timesteps` timesteps: one or two
    /// worker deaths, possibly one torn checkpoint write, and up to three
    /// transient send failures. Identical seeds yield identical schedules
    /// on every platform (splitmix64, no external RNG).
    pub fn from_seed(seed: u64, partitions: u16, timesteps: usize) -> Self {
        assert!(partitions >= 1 && timesteps >= 1);
        let mut s = SplitMix64(seed);
        let mut plan = FaultPlan::new();
        let n_panics = 1 + (s.next() % 2) as usize;
        for _ in 0..n_panics {
            let p = (s.next() % partitions as u64) as u16;
            let t = (s.next() % timesteps as u64) as usize;
            let ss = (s.next() % 3) as usize;
            plan = plan.panic_at(p, t, ss);
        }
        if s.next().is_multiple_of(4) {
            let p = (s.next() % partitions as u64) as u16;
            let t = (s.next() % timesteps as u64) as usize;
            plan = plan.panic_in_checkpoint(p, t);
        }
        let n_sends = (s.next() % 4) as usize;
        for _ in 0..n_sends {
            let p = (s.next() % partitions as u64) as u16;
            let t = (s.next() % timesteps as u64) as usize;
            let ss = (s.next() % 3) as usize;
            plan = plan.fail_send_at(p, t, ss);
        }
        plan.seed = Some(seed);
        plan
    }

    /// Read a seed from the `TEMPOGRAPH_FAULTS` env var (unset/`0`/`off` ⇒
    /// `None`) and derive a plan via [`FaultPlan::from_seed`].
    pub fn from_env(partitions: u16, timesteps: usize) -> Option<Self> {
        let v = std::env::var("TEMPOGRAPH_FAULTS").ok()?;
        let v = v.trim();
        if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") {
            return None;
        }
        let seed: u64 = v.parse().ok()?;
        Some(Self::from_seed(seed, partitions, timesteps))
    }

    /// Number of scheduled panic-style events (worker deaths + torn
    /// checkpoint writes). Bounds the recovery attempts a job can need.
    pub fn panic_events(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Panic { .. } | FaultKind::CheckpointPanic))
            .count()
    }

    /// Re-arm every one-shot event, so the same plan value can drive a
    /// second independent `run_job` call.
    pub fn reset(&self) {
        for e in &self.events {
            // Release pairs with the AcqRel swap in `fire_once` (lint rule
            // A01): workers of the next run must observe the re-armed latch.
            e.fired.store(false, Ordering::Release);
        }
    }

    /// One-shot check: should `partition` die at the start of
    /// `(timestep, superstep)`?
    pub(crate) fn should_panic(&self, partition: u16, timestep: u64, superstep: u64) -> bool {
        self.events.iter().any(|e| {
            e.partition == partition
                && e.timestep == timestep
                && e.kind == FaultKind::Panic { superstep }
                && e.fire_once()
        })
    }

    /// One-shot check: should `partition` die mid-checkpoint-write at the
    /// end of `timestep`?
    pub(crate) fn should_panic_in_checkpoint(&self, partition: u16, timestep: u64) -> bool {
        self.events.iter().any(|e| {
            e.partition == partition
                && e.timestep == timestep
                && e.kind == FaultKind::CheckpointPanic
                && e.fire_once()
        })
    }

    /// Stateless check: do `partition`'s remote sends transiently fail
    /// during `(timestep, superstep)`?
    pub(crate) fn should_fail_send(&self, partition: u16, timestep: u64, superstep: u64) -> bool {
        self.events.iter().any(|e| {
            e.partition == partition
                && e.timestep == timestep
                && e.kind == FaultKind::SendFail { superstep }
        })
    }
}

/// splitmix64 — tiny, seedable, platform-independent. Inlined rather than
/// depending on the vendored `rand` so fault schedules stay stable even if
/// the workspace RNG changes.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_events_fire_exactly_once() {
        let plan = FaultPlan::new().panic_at(1, 3, 0);
        assert!(!plan.should_panic(0, 3, 0), "wrong partition");
        assert!(!plan.should_panic(1, 2, 0), "wrong timestep");
        assert!(!plan.should_panic(1, 3, 1), "wrong superstep");
        assert!(plan.should_panic(1, 3, 0), "first hit fires");
        assert!(!plan.should_panic(1, 3, 0), "second hit is latched");
        plan.reset();
        assert!(plan.should_panic(1, 3, 0), "reset re-arms");
    }

    #[test]
    fn send_failures_are_stateless() {
        let plan = FaultPlan::new().fail_send_at(0, 1, 2);
        assert!(plan.should_fail_send(0, 1, 2));
        assert!(plan.should_fail_send(0, 1, 2), "re-fires on re-execution");
        assert!(!plan.should_fail_send(0, 1, 1));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_vary_by_seed() {
        let a = format!("{:?}", FaultPlan::from_seed(42, 3, 10));
        let b = format!("{:?}", FaultPlan::from_seed(42, 3, 10));
        assert_eq!(a, b, "same seed ⇒ same schedule");
        let c = format!("{:?}", FaultPlan::from_seed(43, 3, 10));
        assert_ne!(a, c, "different seed ⇒ different schedule");
        for seed in 0..50 {
            let plan = FaultPlan::from_seed(seed, 4, 8);
            assert!(plan.panic_events() >= 1, "every seeded plan kills someone");
            assert_eq!(plan.seed(), Some(seed));
        }
    }

    #[test]
    fn injected_payloads_are_recognised() {
        let msg = injected_panic_message(2, 5, 1);
        assert!(msg.contains("partition 2"));
        let payload: Box<dyn std::any::Any + Send> = Box::new(msg);
        assert!(payload_is_injected(payload.as_ref()));
        let other: Box<dyn std::any::Any + Send> = Box::new("index out of bounds".to_string());
        assert!(!payload_is_injected(other.as_ref()));
    }

    #[test]
    fn env_opt_in_parses_seed() {
        // Uses explicit var names to avoid cross-test races: from_env reads
        // the real environment, so only assert the "unset ⇒ None" shape via
        // a name that is certainly unset plus direct seed derivation.
        assert!(FaultPlan::from_seed(7, 2, 4).panic_events() >= 1);
    }
}
