//! Pluggable inter-partition transport.
//!
//! The executor's worker loop is written against one small surface — the
//! [`Transport`] trait: ship encoded `MessageBatch` frames to peers
//! ([`Transport::send`]), collect the frames peers shipped here
//! ([`Transport::exchange`]), and rendezvous at barriers that fold the
//! halting votes ([`Transport::arrive`] / [`Transport::barrier`]). Two
//! implementations exist:
//!
//! * [`InProcess`] — today's simulated cluster: crossbeam channels between
//!   worker threads and a shared [`SyncPoint`] barrier. Zero behaviour
//!   change from the pre-trait engine; [`crate::run_job`] uses it.
//! * [`Tcp`] — a real cluster over loopback/LAN TCP: one full-duplex
//!   framed connection per unordered worker pair (see [`crate::net`] for
//!   the frame layout), plus one control connection per worker to a
//!   coordinator that serves barriers by folding [`Contribution`] frames
//!   into [`Aggregate`] broadcasts. [`run_job_tcp`] drives it with workers
//!   as in-process threads ([`Cluster::Threads`]) or as real spawned worker
//!   processes ([`Cluster::Processes`], the `tempograph worker` binary).
//!
//! **Why both transports produce byte-identical results.** Delivery order
//! is canonicalised *after* transport: staged runs are merged by the
//! globally unique `(from, seq)` key, so TCP arrival nondeterminism cannot
//! leak into algorithm output. Barrier decisions are pure functions of the
//! folded [`Aggregate`], which both transports compute identically. The
//! cross-transport equivalence suite (`tests/transport_equivalence.rs`)
//! asserts this fingerprint-for-fingerprint.
//!
//! **Exactly-once delivery under injected frame faults.** Each data frame
//! carries a per-(sender → receiver) sequence number counted from 1; every
//! exchange ends with a [`crate::net::FrameKind::Sentinel`] watermark
//! declaring the cumulative count. The receiver sorts by sequence, drops
//! duplicates, skips checksum-damaged frames (the sender always follows
//! them with a clean retransmission), and fails with
//! [`EngineError::FrameLoss`] if the surviving sequence numbers do not
//! contiguously cover the watermark. See [`crate::FrameFault`] for the
//! injectable fault kinds.
//!
//! **Failure attribution.** A worker that observes a dead peer reports the
//! peer's partition to the coordinator in an Abort frame before unwinding;
//! the coordinator broadcasts the abort, reaps everyone, and surfaces a
//! typed [`EngineError::RemoteWorkerDied`] naming the *primary* death —
//! never the cascade. With checkpointing armed and an *injected* death
//! (the fault plan's panic events, or a killed worker process), the
//! coordinator instead relaunches the epoch from the latest committed
//! checkpoint, exactly like [`crate::run_job`]'s in-process recovery.

use crate::checkpoint::{self, CheckpointConfig};
use crate::error::{EngineError, WireError};
use crate::executor::{
    assemble_job_result, effective_timesteps, run_worker_body, JobConfig, WorkerOutput,
};
use crate::faults::{payload_is_injected, FaultPlan, FrameFault};
use crate::metrics::{AttributionRow, Emit, JobResult, MetricsShard, TimestepMetrics};
use crate::net::{
    accept_with_deadline, connect_with_retry, decode_payload, encode_payload, read_frame, AbortMsg,
    AttrRowWire, Frame, FrameConn, FrameKind, HelloMsg, MetricsShardWire, StartMsg, StatusReplyMsg,
    TelemetryMsg, TraceEventWire, WorkerStatusWire, COORDINATOR, RESUME_NONE,
};
use crate::program::SubgraphProgram;
use crate::provider::InstanceSource;
use crate::sync::{Aggregate, Contribution, SyncPoint};
use crate::wire::WireMsg;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use tempograph_partition::{PartitionedGraph, Subgraph, SubgraphId};
use tempograph_trace::{Clock, Trace, TraceEvent, TraceSink};

/// Handshake patience: how long the coordinator waits for worker hellos and
/// a worker waits for higher-numbered peers to dial its mesh listener.
/// Generous because process-mode workers pay binary startup plus graph
/// reload before their first frame.
pub(crate) const HANDSHAKE_TIMEOUT_MS: u64 = 30_000;

/// Exit code a worker process uses for an *injected* death (fault-plan
/// panic), so the coordinator can tell "recoverable drill" from "real bug"
/// across a process boundary, where panic payloads don't travel.
pub const INJECTED_EXIT_CODE: i32 = 42;

/// Which inbox a shipped frame is destined for. An enum (not a `u8` tag)
/// so every routing `match` is exhaustive — adding a delivery class forces
/// both the send and drain paths to be updated (lint rule W01).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchKind {
    /// Delivered at the next superstep of the current phase.
    Superstep,
    /// Delivered at superstep 0 of the next timestep.
    NextTimestep,
}

/// Inter-partition batch exchange and barrier synchronisation, as seen by
/// one worker. See the module docs for the contract both implementations
/// honour; the executor is written against this trait only.
pub trait Transport: Send {
    /// Number of partitions in the cluster (== workers, == peers + self).
    fn num_partitions(&self) -> usize;

    /// Ship one encoded `MessageBatch` frame to partition `dst`. Returns
    /// the number of *retransmissions* the transport performed (injected
    /// frame loss recovered under the exactly-once contract) — the worker
    /// accounts them as `send_retries`.
    fn send(&mut self, dst: u16, kind: BatchKind, bytes: Bytes) -> Result<u64, EngineError>;

    /// Collect every frame peers shipped to this worker during the phase
    /// that the preceding [`Transport::arrive`] closed. Must only be called
    /// between an `arrive` and the matching [`Transport::barrier`] — the
    /// rendezvous is what guarantees all peer sends are complete/in flight.
    fn exchange(&mut self) -> Result<Vec<(BatchKind, Bytes)>, EngineError>;

    /// Barrier rendezvous folding each worker's [`Contribution`] into the
    /// global [`Aggregate`] every worker receives.
    fn arrive(&mut self, c: Contribution) -> Result<Aggregate, EngineError>;

    /// Pure rendezvous: arrive with an empty contribution, discard the
    /// aggregate.
    fn barrier(&mut self) -> Result<(), EngineError> {
        self.arrive(Contribution::default()).map(|_| ())
    }

    /// Whether the worker should hand this transport per-round telemetry
    /// flushes. The default (`false`, used by [`InProcess`] and by a TCP
    /// run with observability disabled) keeps the disabled path to one
    /// virtual call and a branch: no snapshot is built, nothing allocates.
    fn wants_telemetry(&self) -> bool {
        false
    }

    /// Ship one observability snapshot to the coordinator. Called only
    /// when [`Transport::wants_telemetry`] returned `true` — once per
    /// closed timestep, plus one `final_flush` at job end.
    fn telemetry(&mut self, _flush: TelemetryFlush) -> Result<(), EngineError> {
        Ok(())
    }
}

/// One observability snapshot handed to [`Transport::telemetry`] when a
/// worker closes a timestep (or finishes the job). `events` are drained
/// increments — each trace event crosses the wire exactly once; `shard`
/// and `attr_rows` are cumulative snapshots the coordinator replaces, so
/// re-sending after recovery cannot double count.
pub struct TelemetryFlush {
    /// Timestep this flush closes.
    pub(crate) timestep: u32,
    /// Supersteps the closed timestep ran.
    pub(crate) supersteps: u32,
    /// Barrier wait accumulated in the closed timestep, nanoseconds.
    pub(crate) barrier_wait_ns: u64,
    /// True for the end-of-job flush (carries merge-phase observability).
    pub(crate) final_flush: bool,
    /// Trace events recorded since the previous flush.
    pub(crate) events: Vec<TraceEvent>,
    /// Cumulative metrics-shard snapshot (when metrics are armed).
    pub(crate) shard: Option<MetricsShard>,
    /// Cumulative attribution snapshot (when attribution is armed).
    pub(crate) attr_rows: Vec<AttributionRow>,
}

// ---- in-process transport ----------------------------------------------

/// The simulated cluster's transport: unbounded crossbeam channels between
/// worker threads, barriers on a shared [`SyncPoint`]. Behaviour (including
/// the poison-cascade panic message peers rely on) is identical to the
/// pre-trait engine.
pub struct InProcess<'a> {
    partition: u16,
    rx: Receiver<(BatchKind, Bytes)>,
    txs: Vec<Sender<(BatchKind, Bytes)>>,
    sync: &'a SyncPoint,
}

impl<'a> InProcess<'a> {
    /// Wire up one worker's endpoints: its receive side, one sender per
    /// partition, and the shared barrier.
    pub fn new(
        partition: u16,
        rx: Receiver<(BatchKind, Bytes)>,
        txs: Vec<Sender<(BatchKind, Bytes)>>,
        sync: &'a SyncPoint,
    ) -> Self {
        InProcess {
            partition,
            rx,
            txs,
            sync,
        }
    }
}

impl Transport for InProcess<'_> {
    fn num_partitions(&self) -> usize {
        self.txs.len()
    }

    fn send(&mut self, dst: u16, kind: BatchKind, bytes: Bytes) -> Result<u64, EngineError> {
        debug_assert_ne!(dst, self.partition, "local messages never reach send");
        let tx = self
            .txs
            .get(dst as usize)
            .ok_or_else(|| EngineError::Protocol {
                detail: format!("send to unknown partition {dst}"),
            })?;
        tx.send((kind, bytes)).unwrap_or_else(|_| {
            // A receiver only disappears when its worker died; surface
            // this as a cascade so recovery blames the primary failure.
            panic!("channel to partition {dst} closed: a peer worker died")
        });
        Ok(0)
    }

    fn exchange(&mut self) -> Result<Vec<(BatchKind, Bytes)>, EngineError> {
        let mut out = Vec::new();
        while let Ok(item) = self.rx.try_recv() {
            out.push(item);
        }
        Ok(out)
    }

    fn arrive(&mut self, c: Contribution) -> Result<Aggregate, EngineError> {
        Ok(self.sync.arrive(c))
    }

    fn barrier(&mut self) -> Result<(), EngineError> {
        self.sync.barrier();
        Ok(())
    }
}

// ---- TCP transport -------------------------------------------------------

fn net_error(context: String) -> impl FnOnce(std::io::Error) -> EngineError {
    move |e| EngineError::Net {
        context,
        detail: e.to_string(),
    }
}

type ReadResult = Result<(Frame, usize), EngineError>;

/// Typed out-of-range error for a peer index. Every per-peer state vector
/// (`peers_tx`, `peers_rx`, `send_seq`, `recv_done`, `held`) shares the
/// mesh length, so this only fires on a corrupt partition id.
fn bad_peer(d: usize) -> EngineError {
    EngineError::Protocol {
        detail: format!("no mesh state for partition {d}"),
    }
}

/// Write half of one peer connection.
struct PeerWriter {
    stream: TcpStream,
    label: String,
}

impl PeerWriter {
    fn send(&mut self, frame: &Frame) -> Result<usize, EngineError> {
        crate::net::write_frame(&mut self.stream, frame, &self.label)
    }

    fn send_corrupted(&mut self, frame: &Frame) -> Result<usize, EngineError> {
        crate::net::write_frame_corrupted(&mut self.stream, frame, &self.label)
    }
}

/// Read half of one peer connection: a detached thread that drains the
/// socket into an unbounded channel. Decoupling reads from the worker's
/// phase structure is what makes the mesh deadlock-free — a peer's send
/// never blocks on this worker reaching its own exchange, because the
/// kernel buffer is always being emptied. A checksum failure is pushed and
/// reading continues (the stream stays frame-aligned, the clean
/// retransmission follows); any other error is pushed and the thread exits.
fn spawn_reader(mut reader: BufReader<TcpStream>, label: String) -> Receiver<ReadResult> {
    let (tx, rx) = unbounded();
    std::thread::spawn(move || loop {
        let res = read_frame(&mut reader, &label);
        let fatal = !matches!(
            &res,
            Ok(_) | Err(EngineError::Wire(WireError::Checksum { .. }))
        );
        if tx.send(res).is_err() {
            break; // transport dropped; nobody is listening
        }
        if fatal {
            break;
        }
    });
    rx
}

/// The real-cluster transport: a full mesh of framed TCP connections
/// between workers, barriers served by the coordinator over each worker's
/// control connection. See the module docs for the exactly-once and
/// failure-attribution contracts.
pub struct Tcp {
    partition: u16,
    epoch: u32,
    coord: FrameConn,
    peers_tx: Vec<Option<PeerWriter>>,
    peers_rx: Vec<Option<Receiver<ReadResult>>>,
    /// Data frames sent per peer this epoch (the next frame's seq − 1, and
    /// the sentinel watermark).
    send_seq: Vec<u64>,
    /// Highest contiguously accounted-for seq per peer.
    recv_done: Vec<u64>,
    /// Global 1-based ordinal of data frames sent by this worker — the
    /// fault plan's `f{N}` coordinate (see [`FaultPlan::frame_fault_at`]).
    frames_sent: u64,
    /// One frame per peer held back by an injected Reorder fault; shipped
    /// after the next frame to that peer (or at the phase sentinel).
    held: Vec<Option<Frame>>,
    faults: Option<Arc<FaultPlan>>,
    tracer: TraceSink,
    peer_bytes_sent: u64,
    peer_bytes_received: u64,
    /// Whether the worker loop should hand this transport per-round
    /// telemetry flushes (any of trace/metrics/attribution armed). When
    /// false, no Telemetry frame is ever built or sent.
    telemetry_armed: bool,
}

impl Tcp {
    /// Build the peer mesh: dial every lower-numbered partition (sending a
    /// PeerHello naming us), accept every higher-numbered one (identified
    /// by *its* PeerHello) — one full-duplex connection per unordered pair.
    #[allow(clippy::too_many_arguments)]
    fn connect_mesh(
        partition: u16,
        epoch: u32,
        coord: FrameConn,
        listener: &TcpListener,
        peer_addrs: &[String],
        faults: Option<Arc<FaultPlan>>,
        tracer: TraceSink,
        telemetry_armed: bool,
    ) -> Result<Tcp, EngineError> {
        let k = peer_addrs.len();
        let me = partition as usize;
        let mut peers_tx: Vec<Option<PeerWriter>> = (0..k).map(|_| None).collect();
        let mut peers_rx: Vec<Option<Receiver<ReadResult>>> = (0..k).map(|_| None).collect();
        for (j, addr) in peer_addrs.iter().enumerate().take(me) {
            let stream = connect_with_retry(addr, &format!("partition {j}"))?;
            stream.set_nodelay(true).map_err(net_error(format!(
                "configuring connection to partition {j}"
            )))?;
            let reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(net_error(format!("cloning connection to partition {j}")))?,
            );
            let mut writer = PeerWriter {
                stream,
                label: format!("partition {j}"),
            };
            writer.send(&Frame {
                kind: FrameKind::PeerHello,
                sender: partition,
                epoch,
                seq: 0,
                payload: Bytes::new(),
            })?;
            peers_rx[j] = Some(spawn_reader(reader, format!("partition {j}")));
            peers_tx[j] = Some(writer);
        }
        for _ in me + 1..k {
            let stream = accept_with_deadline(listener, HANDSHAKE_TIMEOUT_MS, "a peer handshake")?;
            stream
                .set_nodelay(true)
                .map_err(net_error("configuring an accepted peer connection".into()))?;
            let mut reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(net_error("cloning an accepted peer connection".into()))?,
            );
            let (hello, _) = read_frame(&mut reader, "peer (handshaking)")?;
            if hello.kind != FrameKind::PeerHello {
                return Err(EngineError::Protocol {
                    detail: format!("expected PeerHello on mesh accept, got {:?}", hello.kind),
                });
            }
            if hello.epoch != epoch {
                return Err(EngineError::Protocol {
                    detail: format!(
                        "PeerHello from partition {} carries epoch {} (expected {epoch})",
                        hello.sender, hello.epoch
                    ),
                });
            }
            let j = hello.sender as usize;
            if j >= k || j == me || peers_tx[j].is_some() {
                return Err(EngineError::Protocol {
                    detail: format!("unexpected PeerHello from partition {j}"),
                });
            }
            peers_rx[j] = Some(spawn_reader(reader, format!("partition {j}")));
            peers_tx[j] = Some(PeerWriter {
                stream,
                label: format!("partition {j}"),
            });
        }
        Ok(Tcp {
            partition,
            epoch,
            coord,
            peers_tx,
            peers_rx,
            send_seq: vec![0; k],
            recv_done: vec![0; k],
            frames_sent: 0,
            held: (0..k).map(|_| None).collect(),
            faults,
            tracer,
            peer_bytes_sent: 0,
            peer_bytes_received: 0,
            telemetry_armed,
        })
    }

    /// Send one control frame to the coordinator (also used by the worker
    /// wrapper after the run, for Output/Abort frames).
    fn coord_send(&mut self, frame: &Frame) -> Result<(), EngineError> {
        self.coord.send(frame)
    }

    /// Write `frame` to peer `d`, promoting any I/O failure to
    /// [`EngineError::RemoteWorkerDied`] naming that peer — a mesh
    /// connection only fails when the worker behind it is gone, and naming
    /// it is what lets the coordinator distinguish primary from cascade.
    fn send_to_peer(&mut self, d: usize, frame: &Frame) -> Result<(), EngineError> {
        let writer = self
            .peers_tx
            .get_mut(d)
            .and_then(Option::as_mut)
            .ok_or_else(|| EngineError::Protocol {
                detail: format!("no mesh connection to partition {d}"),
            })?;
        match writer.send(frame) {
            Ok(n) => {
                self.peer_bytes_sent += n as u64;
                Ok(())
            }
            Err(e) => Err(EngineError::RemoteWorkerDied {
                partition: d as u16,
                detail: e.to_string(),
            }),
        }
    }

    /// Ship `frame` to peer `d` under an optional injected fault, honouring
    /// the exactly-once contract (see [`FrameFault`]). Returns the
    /// retransmission count the fault forced.
    fn deliver(
        &mut self,
        d: usize,
        frame: Frame,
        fault: Option<FrameFault>,
    ) -> Result<u64, EngineError> {
        if let Some(FrameFault::Reorder) = fault {
            // Swap with the next frame to this peer: flush anything already
            // held, then hold this one back.
            if let Some(prev) = self.held.get_mut(d).and_then(Option::take) {
                self.send_to_peer(d, &prev)?;
            }
            *self.held.get_mut(d).ok_or_else(|| bad_peer(d))? = Some(frame);
            return Ok(0);
        }
        let retransmits = match fault {
            None | Some(FrameFault::Reorder) => {
                self.send_to_peer(d, &frame)?;
                0
            }
            Some(FrameFault::Drop) => {
                // The first transmission is lost in flight; what reaches
                // the wire is already the retransmission.
                self.send_to_peer(d, &frame)?;
                1
            }
            Some(FrameFault::Duplicate) => {
                // Two identical copies; the receiver's seq-dedup keeps one.
                self.send_to_peer(d, &frame)?;
                self.send_to_peer(d, &frame)?;
                0
            }
            Some(FrameFault::Truncate) => {
                // A checksum-damaged copy the receiver discards, then the
                // clean retransmission.
                let writer = self
                    .peers_tx
                    .get_mut(d)
                    .and_then(Option::as_mut)
                    .ok_or_else(|| EngineError::Protocol {
                        detail: format!("no mesh connection to partition {d}"),
                    })?;
                match writer.send_corrupted(&frame) {
                    Ok(n) => self.peer_bytes_sent += n as u64,
                    Err(e) => {
                        return Err(EngineError::RemoteWorkerDied {
                            partition: d as u16,
                            detail: e.to_string(),
                        })
                    }
                }
                self.send_to_peer(d, &frame)?;
                1
            }
        };
        // A frame held by an earlier Reorder ships right after this one.
        if let Some(prev) = self.held.get_mut(d).and_then(Option::take) {
            self.send_to_peer(d, &prev)?;
        }
        Ok(retransmits)
    }
}

impl Transport for Tcp {
    fn num_partitions(&self) -> usize {
        self.peers_tx.len()
    }

    fn send(&mut self, dst: u16, kind: BatchKind, bytes: Bytes) -> Result<u64, EngineError> {
        let t0 = self.tracer.now();
        let d = dst as usize;
        let fkind = match kind {
            BatchKind::Superstep => FrameKind::DataSuperstep,
            BatchKind::NextTimestep => FrameKind::DataNextTimestep,
        };
        self.frames_sent += 1;
        let seq = {
            let s = self.send_seq.get_mut(d).ok_or_else(|| bad_peer(d))?;
            *s += 1;
            *s
        };
        let frame = Frame {
            kind: fkind,
            sender: self.partition,
            epoch: self.epoch,
            seq,
            payload: bytes,
        };
        let fault = self
            .faults
            .as_ref()
            .and_then(|f| f.frame_fault(self.partition, self.frames_sent));
        let retransmits = self.deliver(d, frame, fault)?;
        let t1 = self.tracer.now();
        self.tracer
            .span_arg_at("net.send", t0, t1, "peer", dst as u64);
        self.tracer.counter("net.bytes_sent", self.peer_bytes_sent);
        Ok(retransmits)
    }

    fn exchange(&mut self) -> Result<Vec<(BatchKind, Bytes)>, EngineError> {
        let t0 = self.tracer.now();
        let k = self.peers_tx.len();
        let me = self.partition as usize;
        // Flush Reorder holds and declare this phase's watermark to every
        // peer, ascending.
        for d in 0..k {
            if d == me {
                continue;
            }
            if let Some(prev) = self.held.get_mut(d).and_then(Option::take) {
                self.send_to_peer(d, &prev)?;
            }
            let sentinel = Frame {
                kind: FrameKind::Sentinel,
                sender: self.partition,
                epoch: self.epoch,
                seq: self.send_seq.get(d).copied().ok_or_else(|| bad_peer(d))?,
                payload: Bytes::new(),
            };
            self.send_to_peer(d, &sentinel)?;
        }
        // Collect each peer's frames up to its sentinel, ascending. Blocking
        // is safe: the arrive() rendezvous that precedes every exchange
        // proves all peers finished sending, and per-connection FIFO puts
        // their data before their sentinel.
        let mut out: Vec<(BatchKind, Bytes)> = Vec::new();
        for j in 0..k {
            if j == me {
                continue;
            }
            let mut got: Vec<(u64, BatchKind, Bytes)> = Vec::new();
            let watermark = loop {
                let rx = self
                    .peers_rx
                    .get(j)
                    .and_then(Option::as_ref)
                    .ok_or_else(|| EngineError::Protocol {
                        detail: format!("no mesh connection to partition {j}"),
                    })?;
                let res = match rx.recv() {
                    Ok(res) => res,
                    Err(_) => {
                        return Err(EngineError::RemoteWorkerDied {
                            partition: j as u16,
                            detail: "mesh connection lost".into(),
                        })
                    }
                };
                let (frame, n) = match res {
                    Ok(pair) => pair,
                    // A damaged frame was discarded; its retransmission is
                    // behind it on the same connection.
                    Err(EngineError::Wire(WireError::Checksum { .. })) => continue,
                    Err(e) => {
                        return Err(EngineError::RemoteWorkerDied {
                            partition: j as u16,
                            detail: e.to_string(),
                        })
                    }
                };
                self.peer_bytes_received += n as u64;
                if frame.epoch != self.epoch {
                    return Err(EngineError::Protocol {
                        detail: format!(
                            "frame from partition {j} carries epoch {} (expected {})",
                            frame.epoch, self.epoch
                        ),
                    });
                }
                match frame.kind {
                    FrameKind::Sentinel => break frame.seq,
                    FrameKind::DataSuperstep => {
                        got.push((frame.seq, BatchKind::Superstep, frame.payload));
                    }
                    FrameKind::DataNextTimestep => {
                        got.push((frame.seq, BatchKind::NextTimestep, frame.payload));
                    }
                    other => {
                        return Err(EngineError::Protocol {
                            detail: format!(
                                "unexpected {other:?} frame from partition {j} during exchange"
                            ),
                        })
                    }
                }
            };
            // Canonicalise: injected reordering sorts out, duplicates drop
            // out, and the sentinel convicts any genuine loss.
            got.sort_by_key(|(seq, _, _)| *seq);
            got.dedup_by_key(|(seq, _, _)| *seq);
            let done = self.recv_done.get_mut(j).ok_or_else(|| bad_peer(j))?;
            let mut covered = *done;
            for (seq, _, _) in &got {
                if *seq != covered + 1 {
                    return Err(EngineError::FrameLoss {
                        peer: j as u16,
                        expected: watermark,
                        got: covered,
                    });
                }
                covered = *seq;
            }
            if covered != watermark {
                return Err(EngineError::FrameLoss {
                    peer: j as u16,
                    expected: watermark,
                    got: covered,
                });
            }
            *done = watermark;
            out.extend(got.into_iter().map(|(_, kind, payload)| (kind, payload)));
        }
        let t1 = self.tracer.now();
        self.tracer.span_at("net.recv", t0, t1);
        self.tracer
            .counter("net.bytes_recv", self.peer_bytes_received);
        Ok(out)
    }

    fn arrive(&mut self, c: Contribution) -> Result<Aggregate, EngineError> {
        let t0 = self.tracer.now();
        self.coord.send(&Frame::control(
            FrameKind::Contribution,
            self.partition,
            self.epoch,
            encode_payload(&c),
        ))?;
        let frame = self.coord.recv()?;
        let result = match frame.kind {
            FrameKind::Aggregate => {
                if frame.epoch != self.epoch {
                    return Err(EngineError::Protocol {
                        detail: format!(
                            "aggregate carries epoch {} (expected {})",
                            frame.epoch, self.epoch
                        ),
                    });
                }
                decode_payload::<Aggregate>(frame.payload)
            }
            FrameKind::Abort => {
                let abort: AbortMsg = decode_payload(frame.payload)?;
                Err(EngineError::RemoteWorkerDied {
                    partition: abort.dead_partition,
                    detail: abort.detail,
                })
            }
            other => Err(EngineError::Protocol {
                detail: format!("unexpected {other:?} frame from coordinator at a barrier"),
            }),
        };
        let t1 = self.tracer.now();
        self.tracer.span_at("net.barrier", t0, t1);
        result
    }

    fn wants_telemetry(&self) -> bool {
        self.telemetry_armed
    }

    fn telemetry(&mut self, mut flush: TelemetryFlush) -> Result<(), EngineError> {
        // The transport's own net.* spans and byte counters ride along
        // with the worker's events — same track, merged at assembly.
        flush.events.extend(self.tracer.take_events());
        let msg = TelemetryMsg {
            timestep: flush.timestep,
            supersteps: flush.supersteps,
            barrier_wait_ns: flush.barrier_wait_ns,
            clock_ns: self.tracer.now(),
            bytes_sent: self.coord.bytes_sent() + self.peer_bytes_sent,
            bytes_received: self.coord.bytes_received() + self.peer_bytes_received,
            final_flush: flush.final_flush,
            events: flush
                .events
                .iter()
                .map(TraceEventWire::from_event)
                .collect(),
            shard: flush.shard.as_ref().map(MetricsShardWire::from_shard),
            attr: flush.attr_rows.iter().map(AttrRowWire::from_row).collect(),
        };
        self.coord_send(&Frame::control(
            FrameKind::Telemetry,
            self.partition,
            self.epoch,
            encode_payload(&msg),
        ))
    }
}

// ---- worker results on the wire -----------------------------------------

/// The transportable subset of a worker's results, shipped in the final
/// Output frame. Observability state (trace events, metrics shards,
/// attribution rows) travels separately, in the Telemetry frames each
/// barrier round and the final flush emit — the coordinator grafts it
/// back onto these essentials before assembling the [`JobResult`].
pub(crate) struct WorkerEssentials {
    pub(crate) metrics: Vec<TimestepMetrics>,
    pub(crate) merge_metrics: TimestepMetrics,
    pub(crate) counters: Vec<Vec<(String, u64)>>,
    pub(crate) merge_counters: Vec<(String, u64)>,
    pub(crate) emits: Vec<Emit>,
    pub(crate) timesteps_run: u64,
    pub(crate) final_states: Vec<(SubgraphId, Vec<u8>)>,
}

fn counters_row(row: &BTreeMap<&'static str, u64>) -> Vec<(String, u64)> {
    row.iter().map(|(&n, &v)| (n.to_string(), v)).collect()
}

fn intern_row(row: Vec<(String, u64)>) -> BTreeMap<&'static str, u64> {
    row.into_iter()
        .map(|(n, v)| (checkpoint::intern(&n), v))
        .collect()
}

impl WorkerEssentials {
    pub(crate) fn from_output(out: &WorkerOutput) -> WorkerEssentials {
        WorkerEssentials {
            metrics: out.metrics.clone(),
            merge_metrics: out.merge_metrics.clone(),
            counters: out.counters.iter().map(counters_row).collect(),
            merge_counters: counters_row(&out.merge_counters),
            emits: out.emits.clone(),
            timesteps_run: out.timesteps_run as u64,
            final_states: out.final_states.clone(),
        }
    }

    pub(crate) fn into_output(self) -> WorkerOutput {
        WorkerOutput {
            metrics: self.metrics,
            merge_metrics: self.merge_metrics,
            counters: self.counters.into_iter().map(intern_row).collect(),
            merge_counters: intern_row(self.merge_counters),
            emits: self.emits,
            timesteps_run: self.timesteps_run as usize,
            final_states: self.final_states,
            sinks: Vec::new(),
            shard: None,
            attr_rows: Vec::new(),
        }
    }

    pub(crate) fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        (self.metrics.len() as u32).encode(&mut buf);
        for m in &self.metrics {
            checkpoint::put_metrics(&mut buf, m);
        }
        checkpoint::put_metrics(&mut buf, &self.merge_metrics);
        (self.counters.len() as u32).encode(&mut buf);
        for row in &self.counters {
            put_counter_row(&mut buf, row);
        }
        put_counter_row(&mut buf, &self.merge_counters);
        (self.emits.len() as u32).encode(&mut buf);
        for e in &self.emits {
            (e.timestep as u64).encode(&mut buf);
            e.vertex.encode(&mut buf);
            e.value.encode(&mut buf);
        }
        self.timesteps_run.encode(&mut buf);
        (self.final_states.len() as u32).encode(&mut buf);
        for (sg, state) in &self.final_states {
            sg.encode(&mut buf);
            (state.len() as u32).encode(&mut buf);
            buf.put_slice(state);
        }
        buf.freeze()
    }

    pub(crate) fn decode(mut buf: Bytes) -> Result<WorkerEssentials, EngineError> {
        let n_metrics = u32::decode(&mut buf)? as usize;
        let mut metrics = Vec::new();
        for _ in 0..n_metrics {
            metrics.push(get_metrics(&mut buf)?);
        }
        let merge_metrics = get_metrics(&mut buf)?;
        let n_rows = u32::decode(&mut buf)? as usize;
        let mut counters = Vec::new();
        for _ in 0..n_rows {
            counters.push(get_counter_row(&mut buf)?);
        }
        let merge_counters = get_counter_row(&mut buf)?;
        let n_emits = u32::decode(&mut buf)? as usize;
        let mut emits = Vec::new();
        for _ in 0..n_emits {
            emits.push(Emit {
                timestep: u64::decode(&mut buf)? as usize,
                vertex: tempograph_core::VertexIdx::decode(&mut buf)?,
                value: f64::decode(&mut buf)?,
            });
        }
        let timesteps_run = u64::decode(&mut buf)?;
        let n_states = u32::decode(&mut buf)? as usize;
        let mut final_states = Vec::new();
        for _ in 0..n_states {
            let sg = SubgraphId::decode(&mut buf)?;
            let len = u32::decode(&mut buf)? as usize;
            if buf.remaining() < len {
                return Err(EngineError::Wire(WireError::Eof {
                    context: "final program state",
                    needed: len,
                    remaining: buf.remaining(),
                }));
            }
            final_states.push((sg, buf.split_to(len).to_vec()));
        }
        if buf.remaining() != 0 {
            return Err(EngineError::Protocol {
                detail: format!("{} trailing bytes after worker results", buf.remaining()),
            });
        }
        Ok(WorkerEssentials {
            metrics,
            merge_metrics,
            counters,
            merge_counters,
            emits,
            timesteps_run,
            final_states,
        })
    }
}

fn put_counter_row(buf: &mut BytesMut, row: &[(String, u64)]) {
    (row.len() as u32).encode(buf);
    for (name, v) in row {
        name.encode(buf);
        v.encode(buf);
    }
}

fn get_counter_row(buf: &mut Bytes) -> Result<Vec<(String, u64)>, EngineError> {
    let n = u32::decode(buf)? as usize;
    let mut row = Vec::new();
    for _ in 0..n {
        row.push((String::decode(buf)?, u64::decode(buf)?));
    }
    Ok(row)
}

fn get_metrics(buf: &mut Bytes) -> Result<TimestepMetrics, EngineError> {
    checkpoint::get_metrics(buf).map_err(|e| EngineError::Protocol {
        detail: format!("worker results metrics: {e}"),
    })
}

// ---- worker side ---------------------------------------------------------

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| {
            payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
        })
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// One TCP worker, start to finish: handshake with the coordinator, build
/// the peer mesh, run the TI-BSP loop over the [`Tcp`] transport, ship the
/// results back. On a peer death observed first-hand, reports the dead
/// partition to the coordinator (an Abort frame) before unwinding, so the
/// coordinator can attribute the primary failure even when the dying
/// worker's own connection reset is observed later.
fn tcp_worker<P, F>(
    coord_addr: &str,
    partition: u16,
    pg: &Arc<PartitionedGraph>,
    source: &InstanceSource,
    factory: &F,
    config: &JobConfig<P::Msg>,
    timesteps: usize,
) -> Result<(), EngineError>
where
    P: SubgraphProgram,
    F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync,
{
    assert!(
        !config.temporal_parallelism,
        "temporal parallelism is not supported over the TCP transport"
    );
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(net_error("binding the peer-mesh listener".into()))?;
    let listen_addr = listener
        .local_addr()
        .map_err(net_error("resolving the peer-mesh listener address".into()))?
        .to_string();
    let stream = connect_with_retry(coord_addr, "coordinator")?;
    let mut coord = FrameConn::new(stream, "coordinator")?;
    coord.send(&Frame::control(
        FrameKind::Hello,
        partition,
        0,
        encode_payload(&HelloMsg {
            partition,
            listen_addr,
        }),
    ))?;
    let frame = coord.recv()?;
    if frame.kind != FrameKind::Start {
        return Err(EngineError::Protocol {
            detail: format!("expected Start from coordinator, got {:?}", frame.kind),
        });
    }
    let start: StartMsg = decode_payload(frame.payload)?;
    if let Some(faults) = &config.faults {
        // One-shot events consumed in earlier epochs stay consumed: a
        // relaunched worker process must not re-fire them.
        faults.mark_fired(&start.fired);
    }
    let resume_from = (start.resume_from != RESUME_NONE).then_some(start.resume_from);
    let tracer = config
        .trace
        .map(|tc| tc.sink(partition as u32))
        .unwrap_or_else(TraceSink::inert);
    let telemetry_armed = config.trace.is_some() || config.metrics || config.attribution;
    let mut tcp = Tcp::connect_mesh(
        partition,
        start.epoch,
        coord,
        &listener,
        &start.peer_addrs,
        config.faults.clone(),
        tracer,
        telemetry_armed,
    )?;
    let epoch = start.epoch;
    let out = run_worker_body::<P, F>(
        partition,
        pg,
        source,
        factory,
        config,
        timesteps,
        resume_from,
        &mut tcp,
    );
    match out {
        Ok(mut output) => {
            if tcp.wants_telemetry() {
                // Final flush: drain whatever the per-round flushes did not
                // cover (merge-phase events, the provider's GoFS sink, the
                // last cumulative shard/attribution snapshots). Sent before
                // the Output frame so the coordinator has the complete
                // picture by the time it assembles the JobResult.
                let mut events = Vec::new();
                for (_, sink) in &mut output.sinks {
                    events.extend(sink.take_events());
                }
                tcp.telemetry(TelemetryFlush {
                    timestep: output.timesteps_run.saturating_sub(1) as u32,
                    supersteps: 0,
                    barrier_wait_ns: 0,
                    final_flush: true,
                    events,
                    shard: output.shard.take().map(|b| *b),
                    attr_rows: std::mem::take(&mut output.attr_rows),
                })?;
            }
            let essentials = WorkerEssentials::from_output(&output);
            tcp.coord_send(&Frame::control(
                FrameKind::Output,
                partition,
                epoch,
                essentials.encode(),
            ))?;
            Ok(())
        }
        Err(e) => {
            if let EngineError::RemoteWorkerDied {
                partition: dead,
                detail,
            } = &e
            {
                // Best-effort: name the primary death for the coordinator.
                let _ = tcp.coord_send(&Frame::control(
                    FrameKind::Abort,
                    partition,
                    epoch,
                    encode_payload(&AbortMsg {
                        dead_partition: *dead,
                        detail: detail.clone(),
                    }),
                ));
            }
            Err(e)
        }
    }
}

/// Worker-process entry point (the `tempograph worker` subcommand). Runs
/// [`tcp_worker`] on a joinable thread so an injected panic can be mapped
/// to [`INJECTED_EXIT_CODE`] — the cross-process substitute for the panic
/// payload the in-process driver inspects. Returns the process exit code.
pub fn run_tcp_worker<P, F>(
    coordinator: String,
    partition: u16,
    pg: Arc<PartitionedGraph>,
    source: InstanceSource,
    factory: F,
    config: JobConfig<P::Msg>,
) -> i32
where
    P: SubgraphProgram,
    F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync + 'static,
{
    let handle = std::thread::spawn(move || {
        let timesteps = effective_timesteps(&config, source.num_timesteps());
        tcp_worker::<P, F>(
            &coordinator,
            partition,
            &pg,
            &source,
            &factory,
            &config,
            timesteps,
        )
    });
    match handle.join() {
        Ok(Ok(())) => 0,
        Ok(Err(e)) => {
            eprintln!("worker for partition {partition} failed: {e}");
            1
        }
        Err(payload) => {
            if payload_is_injected(payload.as_ref()) {
                INJECTED_EXIT_CODE
            } else {
                eprintln!(
                    "worker for partition {partition} panicked: {}",
                    payload_message(payload.as_ref())
                );
                101
            }
        }
    }
}

// ---- coordinator side ----------------------------------------------------

/// How [`run_job_tcp`] hosts its workers.
pub enum Cluster {
    /// Workers are threads in this process dialing the coordinator over
    /// loopback TCP — every frame really crosses a socket, no process
    /// boundary. The default for tests: fast, and panic payloads stay
    /// inspectable.
    Threads,
    /// Workers are real spawned processes running `worker_bin` with
    /// `worker_args` plus `--partition N --coordinator ADDR` appended.
    /// The binary must reconstruct the same graph, program, and config
    /// from those args (the `tempograph worker` subcommand does).
    Processes {
        /// Path to the worker binary (usually `std::env::current_exe()`).
        worker_bin: PathBuf,
        /// Arguments before the appended per-worker pair — subcommand,
        /// data directory, algorithm, fault spec, checkpoint flags.
        worker_args: Vec<String>,
    },
}

/// Coordinator-side evidence of a worker death (not yet attributed to
/// injection or a real bug — that needs the join result / exit status).
struct Death {
    partition: u16,
    detail: String,
}

/// How one epoch ended, after every worker was reaped.
enum EpochEnd {
    /// All workers reported results, indexed by partition.
    Done(Vec<WorkerOutput>),
    /// A worker died; `injected` decides recoverability, `typed` carries a
    /// deterministic worker error to re-surface verbatim.
    Died {
        partition: u16,
        detail: String,
        injected: bool,
        typed: Option<EngineError>,
    },
}

fn fold_contributions(contribs: &[Contribution]) -> Aggregate {
    Aggregate {
        total_msgs: contribs.iter().map(|c| c.msgs_sent).sum(),
        all_halted: contribs.iter().all(|c| c.all_halted),
    }
}

/// Broadcast an Abort naming the primary death to every live worker
/// connection (best-effort; TCP buffers absorb the frames for workers that
/// reach their next barrier later), and return the evidence.
fn abort_cluster(conns: &mut [Option<FrameConn>], primary: u16, detail: String) -> Death {
    let payload = encode_payload(&AbortMsg {
        dead_partition: primary,
        detail: detail.clone(),
    });
    for conn in conns.iter_mut().flatten() {
        let _ = conn.send(&Frame::control(
            FrameKind::Abort,
            COORDINATOR,
            0,
            payload.clone(),
        ));
    }
    Death {
        partition: primary,
        detail,
    }
}

// ---- coordinator-side telemetry ------------------------------------------

/// Per-partition observability accumulated at the coordinator from
/// Telemetry frames.
struct PartTelemetry {
    /// Decoded trace events, in arrival order (worker clock domain).
    events: Vec<TraceEvent>,
    /// Latest cumulative metrics-shard snapshot.
    shard: Option<MetricsShard>,
    /// Latest cumulative attribution snapshot.
    attr_rows: Vec<AttributionRow>,
}

/// The coordinator's half of the telemetry plane: ingests Telemetry frames
/// during [`serve_epoch`], keeps the live status board, judges stragglers
/// over complete barrier rounds, and grafts the accumulated observability
/// back onto the epoch's outputs so [`assemble_job_result`] sees exactly
/// what the in-process driver would have.
pub(crate) struct CoordTelemetry {
    parts: Vec<PartTelemetry>,
    /// Straggler threshold (multiple of the round's median barrier wait).
    straggler_factor: f64,
    /// Barrier-wait reports per timestep — `(partition, wait_ns,
    /// clock_ns)` per worker — judged once the round is complete.
    rounds: BTreeMap<u32, Vec<(u16, u64, u64)>>,
    /// Live status board, shared with the status-server thread.
    board: Arc<Mutex<StatusBoard>>,
}

impl CoordTelemetry {
    fn new(k: usize, straggler_factor: f64) -> CoordTelemetry {
        CoordTelemetry {
            parts: (0..k)
                .map(|_| PartTelemetry {
                    events: Vec::new(),
                    shard: None,
                    attr_rows: Vec::new(),
                })
                .collect(),
            straggler_factor,
            rounds: BTreeMap::new(),
            board: Arc::new(Mutex::new(StatusBoard::new(k))),
        }
    }

    /// Discard a failed epoch's accumulation. The relaunched workers
    /// re-record events from the restore point and re-send cumulative
    /// snapshots, so keeping the dead epoch's state would double count —
    /// this mirrors the in-process driver, whose result only carries the
    /// final successful attempt's sinks and shards.
    fn reset(&mut self, epoch: u32) {
        for part in &mut self.parts {
            part.events.clear();
            part.shard = None;
            part.attr_rows.clear();
        }
        self.rounds.clear();
        lock_board(&self.board).reset(epoch);
    }

    /// Ingest one Telemetry frame from partition `p`: append drained
    /// events, replace cumulative snapshots, update the status board, and
    /// judge the barrier round once all `k` workers reported it.
    fn ingest(&mut self, p: usize, payload: Bytes) -> Result<(), EngineError> {
        let msg: TelemetryMsg = decode_payload(payload)?;
        if p >= self.parts.len() {
            return Err(EngineError::Protocol {
                detail: format!("telemetry from unknown partition {p}"),
            });
        }
        lock_board(&self.board).note(p as u16, &msg);
        if !msg.final_flush {
            let k = self.parts.len();
            let round = self.rounds.entry(msg.timestep).or_default();
            round.push((p as u16, msg.barrier_wait_ns, msg.clock_ns));
            if round.len() == k {
                let round = self.rounds.remove(&msg.timestep).unwrap_or_default();
                self.judge_round(round);
            }
        }
        if let Some(part) = self.parts.get_mut(p) {
            part.events
                .extend(msg.events.into_iter().map(TraceEventWire::into_event));
            if let Some(shard) = msg.shard {
                part.shard = Some(shard.into_shard());
            }
            part.attr_rows = msg.attr.into_iter().map(AttrRowWire::into_row).collect();
        }
        Ok(())
    }

    /// A complete barrier round: any worker whose wait exceeded
    /// `straggler_factor` × the round's median earns a
    /// `straggler.detected` instant on its own track — timestamped in the
    /// worker's clock domain, with the wait riding the `wait_ns` arg (the
    /// partition is the track identity).
    fn judge_round(&mut self, round: Vec<(u16, u64, u64)>) {
        let mut waits: Vec<u64> = round.iter().map(|&(_, w, _)| w).collect();
        waits.sort_unstable();
        let median = waits.get(waits.len() / 2).copied().unwrap_or(0);
        if median == 0 {
            return;
        }
        let threshold = median as f64 * self.straggler_factor;
        for (p, wait, clock_ns) in round {
            if (wait as f64) > threshold {
                if let Some(part) = self.parts.get_mut(p as usize) {
                    part.events.push(TraceEvent::Instant {
                        name: "straggler.detected",
                        ts_ns: clock_ns,
                        arg: Some(("wait_ns", wait)),
                    });
                }
            }
        }
    }

    /// Graft the accumulated observability onto the epoch's outputs:
    /// per-partition recorded sinks, the latest shard snapshots, and the
    /// latest attribution rows.
    fn merge_into(self, outputs: &mut [WorkerOutput]) {
        for (p, (out, part)) in outputs.iter_mut().zip(self.parts).enumerate() {
            if !part.events.is_empty() {
                out.sinks.push((
                    format!("partition {p}"),
                    TraceSink::from_recorded(p as u32, part.events),
                ));
            }
            out.shard = part.shard.map(Box::new);
            out.attr_rows = part.attr_rows;
        }
    }
}

/// The coordinator's live status board: one row per partition, updated on
/// every Telemetry frame, served to `tempograph status` clients.
pub(crate) struct StatusBoard {
    /// Recovery epoch currently being served.
    epoch: u32,
    rows: Vec<WorkerStatusWire>,
    /// Coordinator-clock reading at each partition's last telemetry
    /// (`None` = not heard from this epoch).
    last_seen_ns: Vec<Option<u64>>,
    /// The coordinator clock the last-telemetry ages are measured on.
    clock: Clock,
}

fn blank_row(p: usize, epoch: u32) -> WorkerStatusWire {
    WorkerStatusWire {
        partition: p as u16,
        epoch,
        timestep: 0,
        supersteps: 0,
        barrier_wait_ns: 0,
        bytes_sent: 0,
        bytes_received: 0,
        last_telemetry_ms: u64::MAX,
    }
}

impl StatusBoard {
    fn new(k: usize) -> StatusBoard {
        StatusBoard {
            epoch: 0,
            rows: (0..k).map(|p| blank_row(p, 0)).collect(),
            last_seen_ns: vec![None; k],
            clock: Clock::start(),
        }
    }

    fn reset(&mut self, epoch: u32) {
        let k = self.rows.len();
        self.epoch = epoch;
        self.rows = (0..k).map(|p| blank_row(p, epoch)).collect();
        self.last_seen_ns = vec![None; k];
    }

    fn note(&mut self, p: u16, msg: &TelemetryMsg) {
        let epoch = self.epoch;
        let now = self.clock.elapsed_ns();
        if let (Some(row), Some(seen)) = (
            self.rows.get_mut(p as usize),
            self.last_seen_ns.get_mut(p as usize),
        ) {
            row.epoch = epoch;
            row.timestep = msg.timestep;
            if !msg.final_flush {
                // The final flush closes no new round; keep the last
                // round's superstep count on the board.
                row.supersteps = msg.supersteps;
            }
            row.barrier_wait_ns = row.barrier_wait_ns.max(msg.barrier_wait_ns);
            row.bytes_sent = msg.bytes_sent;
            row.bytes_received = msg.bytes_received;
            *seen = Some(now);
        }
    }

    /// Snapshot with last-telemetry ages materialised (coordinator clock).
    fn snapshot(&self) -> StatusReplyMsg {
        let now = self.clock.elapsed_ns();
        let workers = self
            .rows
            .iter()
            .zip(&self.last_seen_ns)
            .map(|(row, seen)| {
                let mut row = row.clone();
                row.last_telemetry_ms = match seen {
                    Some(t) => now.saturating_sub(*t) / 1_000_000,
                    None => u64::MAX,
                };
                row
            })
            .collect();
        StatusReplyMsg { workers }
    }
}

fn lock_board(board: &Mutex<StatusBoard>) -> std::sync::MutexGuard<'_, StatusBoard> {
    // A poisoned board only means a panicking thread held the lock; the
    // data (plain counters) is still coherent enough to serve.
    board.lock().unwrap_or_else(|e| e.into_inner())
}

/// Handle to the coordinator's status endpoint: a polling accept thread
/// serving one StatusRequest → StatusReply exchange per connection.
/// Stopped and joined on drop, when the job ends.
struct StatusServer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatusServer {
    fn spawn(addr: &str, board: Arc<Mutex<StatusBoard>>) -> Result<StatusServer, EngineError> {
        let listener = TcpListener::bind(addr)
            .map_err(net_error(format!("binding the status listener on {addr}")))?;
        listener
            .set_nonblocking(true)
            .map_err(net_error("configuring the status listener".into()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        if let Ok(mut conn) = FrameConn::new(stream, "status client") {
                            let _ = serve_status_client(&mut conn, &board);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(StatusServer {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One status exchange: expect a StatusRequest, answer with the board.
fn serve_status_client(
    conn: &mut FrameConn,
    board: &Mutex<StatusBoard>,
) -> Result<(), EngineError> {
    let frame = conn.recv()?;
    if frame.kind != FrameKind::StatusRequest {
        return Err(EngineError::Protocol {
            detail: format!("expected StatusRequest, got {:?}", frame.kind),
        });
    }
    let (epoch, reply) = {
        let b = lock_board(board);
        (b.epoch, b.snapshot())
    };
    conn.send(&Frame::control(
        FrameKind::StatusReply,
        COORDINATOR,
        epoch,
        encode_payload(&reply),
    ))
}

/// Query a running coordinator's status board (the `tempograph status`
/// subcommand): one StatusRequest over a fresh connection, one decoded
/// StatusReply back.
pub fn query_status(addr: &str) -> Result<StatusReplyMsg, EngineError> {
    let stream = connect_with_retry(addr, "status server")?;
    let mut conn = FrameConn::new(stream, "status server")?;
    conn.send(&Frame::control(
        FrameKind::StatusRequest,
        COORDINATOR,
        0,
        Bytes::new(),
    ))?;
    let frame = conn.recv()?;
    if frame.kind != FrameKind::StatusReply {
        return Err(EngineError::Protocol {
            detail: format!("expected StatusReply, got {:?}", frame.kind),
        });
    }
    decode_payload(frame.payload)
}

/// Serve one epoch over the coordinator listener: accept `k` hellos, send
/// Start, then serve barrier rounds (fold k Contributions, broadcast the
/// Aggregate) until all k workers deliver Output frames. Telemetry frames
/// interleave with the barrier protocol and are drained into `telem` as
/// they arrive (a protocol error when telemetry is disabled — the zero-cost
/// contract says no such frame may exist). Returns `Ok(Err(death))` when a
/// worker died mid-epoch (remaining workers have been told to abort), and
/// `Err` only for unrecoverable coordinator-side failures (handshake
/// timeout, protocol violations).
fn serve_epoch(
    listener: &TcpListener,
    k: usize,
    epoch: u32,
    resume_from: Option<u64>,
    faults: Option<&FaultPlan>,
    mut telem: Option<&mut CoordTelemetry>,
) -> Result<Result<Vec<WorkerEssentials>, Death>, EngineError> {
    let mut conns: Vec<Option<FrameConn>> = (0..k).map(|_| None).collect();
    let mut peer_addrs = vec![String::new(); k];
    for _ in 0..k {
        let stream = accept_with_deadline(listener, HANDSHAKE_TIMEOUT_MS, "a worker hello")?;
        let mut conn = FrameConn::new(stream, "worker (handshaking)")?;
        let frame = conn.recv()?;
        if frame.kind != FrameKind::Hello {
            return Err(EngineError::Protocol {
                detail: format!("expected Hello from a worker, got {:?}", frame.kind),
            });
        }
        let hello: HelloMsg = decode_payload(frame.payload)?;
        let p = hello.partition as usize;
        if p >= k || conns[p].is_some() {
            return Err(EngineError::Protocol {
                detail: format!("unexpected Hello from partition {p}"),
            });
        }
        conn.set_peer(format!("worker {p}"));
        peer_addrs[p] = hello.listen_addr;
        conns[p] = Some(conn);
    }
    let start = encode_payload(&StartMsg {
        epoch,
        resume_from: resume_from.unwrap_or(RESUME_NONE),
        peer_addrs,
        fired: faults.map(FaultPlan::fired_indices).unwrap_or_default(),
    });
    for p in 0..k {
        let conn = conns[p].as_mut().expect("all workers connected");
        if let Err(e) = conn.send(&Frame::control(
            FrameKind::Start,
            COORDINATOR,
            epoch,
            start.clone(),
        )) {
            return Ok(Err(abort_cluster(&mut conns, p as u16, e.to_string())));
        }
    }
    let mut outputs: Vec<Option<WorkerEssentials>> = (0..k).map(|_| None).collect();
    loop {
        let mut contribs: Vec<Contribution> = Vec::with_capacity(k);
        let mut outputs_this_round = 0usize;
        for p in 0..k {
            // Telemetry frames interleave with the barrier protocol on the
            // same connection; drain them until a protocol frame arrives.
            let frame = loop {
                let conn = conns[p].as_mut().expect("all workers connected");
                let frame = match conn.recv() {
                    Ok(f) => f,
                    // EOF / reset without an Abort naming someone else
                    // first: this worker is the primary death.
                    Err(e) => return Ok(Err(abort_cluster(&mut conns, p as u16, e.to_string()))),
                };
                if frame.kind != FrameKind::Abort && frame.epoch != epoch {
                    return Err(EngineError::Protocol {
                        detail: format!(
                            "worker {p} sent a frame for epoch {} (serving {epoch})",
                            frame.epoch
                        ),
                    });
                }
                if frame.kind != FrameKind::Telemetry {
                    break frame;
                }
                match telem.as_deref_mut() {
                    Some(ct) => ct.ingest(p, frame.payload)?,
                    None => {
                        return Err(EngineError::Protocol {
                            detail: format!(
                                "unexpected Telemetry frame from worker {p} \
                                 (observability disabled)"
                            ),
                        })
                    }
                }
            };
            match frame.kind {
                FrameKind::Contribution => contribs.push(decode_payload(frame.payload)?),
                FrameKind::Output => {
                    outputs[p] = Some(WorkerEssentials::decode(frame.payload)?);
                    outputs_this_round += 1;
                }
                FrameKind::Abort => {
                    // A worker saw the death first-hand; trust its
                    // attribution over our own later EOF observation.
                    let abort: AbortMsg = decode_payload(frame.payload)?;
                    return Ok(Err(abort_cluster(
                        &mut conns,
                        abort.dead_partition,
                        abort.detail,
                    )));
                }
                other => {
                    return Err(EngineError::Protocol {
                        detail: format!("unexpected {other:?} frame from worker {p}"),
                    })
                }
            }
        }
        if outputs_this_round == k {
            let collected: Vec<WorkerEssentials> = outputs
                .into_iter()
                .map(|o| o.expect("all outputs present"))
                .collect();
            return Ok(Ok(collected));
        }
        if outputs_this_round != 0 {
            return Err(EngineError::Protocol {
                detail: "workers disagree on the barrier schedule".into(),
            });
        }
        let agg = encode_payload(&fold_contributions(&contribs));
        for p in 0..k {
            let conn = conns[p].as_mut().expect("all workers connected");
            if let Err(e) = conn.send(&Frame::control(
                FrameKind::Aggregate,
                COORDINATOR,
                epoch,
                agg.clone(),
            )) {
                return Ok(Err(abort_cluster(&mut conns, p as u16, e.to_string())));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_epoch_threads<P, F>(
    listener: &TcpListener,
    coord_addr: &str,
    k: usize,
    epoch: u32,
    resume_from: Option<u64>,
    pg: &Arc<PartitionedGraph>,
    source: &InstanceSource,
    factory: &F,
    config: &JobConfig<P::Msg>,
    timesteps: usize,
    telem: Option<&mut CoordTelemetry>,
) -> Result<EpochEnd, EngineError>
where
    P: SubgraphProgram,
    F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|p| {
                // Per-thread clones, as in `run_job`: `Msg` is Send + Clone
                // but not necessarily Sync.
                let config = config.clone();
                let source = source.clone();
                scope.spawn(move || {
                    tcp_worker::<P, F>(
                        coord_addr, p as u16, pg, &source, factory, &config, timesteps,
                    )
                })
            })
            .collect();
        match serve_epoch(
            listener,
            k,
            epoch,
            resume_from,
            config.faults.as_deref(),
            telem,
        ) {
            Ok(Ok(essentials)) => {
                for (p, h) in handles.into_iter().enumerate() {
                    match h.join() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => return Err(e),
                        Err(_) => {
                            return Err(EngineError::RemoteWorkerDied {
                                partition: p as u16,
                                detail: "worker thread panicked after reporting results".into(),
                            })
                        }
                    }
                }
                Ok(EpochEnd::Done(
                    essentials
                        .into_iter()
                        .map(WorkerEssentials::into_output)
                        .collect(),
                ))
            }
            Ok(Err(death)) => {
                // Reap every thread (the Abort broadcast unblocks them),
                // then judge the primary by its join result.
                let mut results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
                let p = death.partition as usize;
                let (injected, typed, detail) = if p < results.len() {
                    match results.swap_remove(p) {
                        Err(payload) => (
                            payload_is_injected(payload.as_ref()),
                            None,
                            format!("{} ({})", death.detail, payload_message(payload.as_ref())),
                        ),
                        // A typed error is deterministic: a relaunch would
                        // hit it again, so it is re-surfaced verbatim.
                        Ok(Err(e)) => (false, Some(e), death.detail),
                        Ok(Ok(())) => (false, None, death.detail),
                    }
                } else {
                    (false, None, death.detail)
                };
                Ok(EpochEnd::Died {
                    partition: death.partition,
                    detail,
                    injected,
                    typed,
                })
            }
            Err(e) => {
                for h in handles {
                    let _ = h.join();
                }
                Err(e)
            }
        }
    })
}

#[cfg(unix)]
fn killed_by_signal(status: &std::process::ExitStatus) -> bool {
    use std::os::unix::process::ExitStatusExt;
    status.signal().is_some()
}

#[cfg(not(unix))]
fn killed_by_signal(_status: &std::process::ExitStatus) -> bool {
    false
}

#[allow(clippy::too_many_arguments)]
fn run_epoch_processes(
    listener: &TcpListener,
    coord_addr: &str,
    k: usize,
    epoch: u32,
    resume_from: Option<u64>,
    worker_bin: &Path,
    worker_args: &[String],
    faults: Option<&FaultPlan>,
    telem: Option<&mut CoordTelemetry>,
) -> Result<EpochEnd, EngineError> {
    let mut children: Vec<Child> = Vec::with_capacity(k);
    for p in 0..k {
        match Command::new(worker_bin)
            .args(worker_args)
            .arg("--partition")
            .arg(p.to_string())
            .arg("--coordinator")
            .arg(coord_addr)
            .spawn()
        {
            Ok(child) => children.push(child),
            Err(e) => {
                for c in &mut children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(EngineError::Net {
                    context: format!("spawning the worker process for partition {p}"),
                    detail: e.to_string(),
                });
            }
        }
    }
    match serve_epoch(listener, k, epoch, resume_from, faults, telem) {
        Ok(Ok(essentials)) => {
            for c in &mut children {
                let _ = c.wait();
            }
            Ok(EpochEnd::Done(
                essentials
                    .into_iter()
                    .map(WorkerEssentials::into_output)
                    .collect(),
            ))
        }
        Ok(Err(death)) => {
            let p = death.partition as usize;
            let mut injected = false;
            let mut detail = death.detail;
            // The primary's exit status is the cross-process stand-in for
            // a panic payload: the injected exit code, or a kill signal
            // (the worker-kill drill), marks a recoverable death.
            if let Some(child) = children.get_mut(p) {
                match child.wait() {
                    Ok(status) => {
                        injected =
                            status.code() == Some(INJECTED_EXIT_CODE) || killed_by_signal(&status);
                        detail = format!("{detail}; {status}");
                    }
                    Err(e) => detail = format!("{detail}; wait failed: {e}"),
                }
            }
            for (q, child) in children.iter_mut().enumerate() {
                if q != p {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
            Ok(EpochEnd::Died {
                partition: death.partition,
                detail,
                injected,
                typed: None,
            })
        }
        Err(e) => {
            for c in &mut children {
                let _ = c.kill();
                let _ = c.wait();
            }
            Err(e)
        }
    }
}

/// Run a TI-BSP job over real TCP: workers exchange batches over a
/// loopback socket mesh and synchronise through a coordinator (this
/// function), which also recovers worker deaths from checkpoints. Returns
/// a typed error naming the failing partition instead of panicking —
/// unlike [`crate::run_job`], whose in-process driver re-raises worker
/// panics.
///
/// With any of trace/metrics/attribution armed, workers ship their
/// observability over the telemetry plane (one Telemetry frame per barrier
/// round plus a final flush) and the returned [`JobResult`] carries the
/// same trace, registry, and attribution a [`crate::run_job`] run would —
/// see `tests/transport_equivalence.rs`. With [`JobConfig::status_addr`]
/// set, the coordinator additionally serves the live status board (the
/// `tempograph status` view) for the life of the job. Temporal parallelism
/// is not supported over TCP.
pub fn run_job_tcp<P, F>(
    pg: &Arc<PartitionedGraph>,
    source: &InstanceSource,
    factory: F,
    config: JobConfig<P::Msg>,
    cluster: Cluster,
) -> Result<JobResult, EngineError>
where
    P: SubgraphProgram,
    F: Fn(&Subgraph, &PartitionedGraph) -> P + Send + Sync,
{
    let k = pg.num_partitions();
    assert!(
        !config.temporal_parallelism,
        "temporal parallelism is not supported over the TCP transport"
    );
    let timesteps = effective_timesteps(&config, source.num_timesteps());
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(net_error("binding the coordinator listener".into()))?;
    let coord_addr = listener
        .local_addr()
        .map_err(net_error("resolving the coordinator address".into()))?
        .to_string();
    let job_start = Clock::start();
    let panic_budget = config.faults.as_ref().map_or(0, |f| f.panic_events());
    // Threads can only die by injected panic; processes can additionally be
    // killed from outside (the worker-kill drill), so grant at least one
    // recovery whenever checkpointing is armed.
    let max_recoveries = if config.checkpoint.is_some() {
        match &cluster {
            Cluster::Threads => panic_budget,
            Cluster::Processes { .. } => panic_budget.max(1),
        }
    } else {
        0
    };
    let mut recoveries = 0usize;
    let mut resume_from: Option<u64> = None;
    let mut epoch = 0u32;
    // Coordinator-side telemetry accumulation — armed by exactly the same
    // predicate the workers use, so a Telemetry frame arriving while this
    // is `None` is a protocol violation, not a silent drop.
    let telemetry_armed = config.trace.is_some() || config.metrics || config.attribution;
    let mut telem = telemetry_armed.then(|| CoordTelemetry::new(k, config.straggler_factor));
    // Driver-side sink (its own track, after the k partition tracks) for
    // recovery markers, mirroring the in-process driver.
    let mut driver_sink = config.trace.map(|tc| tc.sink(k as u32));
    let _status_server = match (&config.status_addr, &telem) {
        (Some(addr), Some(ct)) => Some(StatusServer::spawn(addr, ct.board.clone())?),
        _ => None,
    };
    loop {
        let end = match &cluster {
            Cluster::Threads => run_epoch_threads::<P, F>(
                &listener,
                &coord_addr,
                k,
                epoch,
                resume_from,
                pg,
                source,
                &factory,
                &config,
                timesteps,
                telem.as_mut(),
            )?,
            Cluster::Processes {
                worker_bin,
                worker_args,
            } => run_epoch_processes(
                &listener,
                &coord_addr,
                k,
                epoch,
                resume_from,
                worker_bin,
                worker_args,
                config.faults.as_deref(),
                telem.as_mut(),
            )?,
        };
        match end {
            EpochEnd::Done(mut outputs) => {
                let total_wall_ns = job_start.elapsed_ns();
                if let Some(ct) = telem.take() {
                    ct.merge_into(&mut outputs);
                }
                let trace = config.trace.map(|_| {
                    let mut sinks: Vec<(String, TraceSink)> =
                        outputs.iter_mut().flat_map(|o| o.sinks.drain(..)).collect();
                    if let Some(sink) = driver_sink.take() {
                        if !sink.events().is_empty() {
                            sinks.push(("driver".to_string(), sink));
                        }
                    }
                    Trace::from_sinks(sinks)
                });
                return Ok(assemble_job_result(
                    outputs,
                    k,
                    total_wall_ns,
                    recoveries,
                    trace,
                    config.metrics,
                    config.attribution,
                ));
            }
            EpochEnd::Died {
                partition,
                detail,
                injected,
                typed,
            } => {
                if let Some(e) = typed {
                    return Err(e);
                }
                if config.checkpoint.is_none() || !injected || recoveries >= max_recoveries {
                    return Err(EngineError::RemoteWorkerDied { partition, detail });
                }
                recoveries += 1;
                epoch += 1;
                if matches!(cluster, Cluster::Processes { .. }) {
                    // The dead process took its latched fault state with it;
                    // latch the event it fired in the coordinator's copy so
                    // the next epoch's StartMsg ships it as already-fired.
                    if let Some(faults) = &config.faults {
                        faults.attribute_death(partition);
                    }
                }
                resume_from = config
                    .checkpoint
                    .as_ref()
                    .and_then(|ck: &CheckpointConfig| {
                        checkpoint::latest_valid::<P::Msg>(&ck.dir, k as u16)
                    });
                if let Some(ct) = telem.as_mut() {
                    ct.reset(epoch);
                }
                if let Some(sink) = &mut driver_sink {
                    sink.instant(
                        "recovery.attempt",
                        Some(("resume_t", resume_from.unwrap_or(u64::MAX))),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::VertexIdx;

    #[test]
    fn in_process_transport_round_trips_and_synchronises() {
        let sync = SyncPoint::new(1);
        let (tx, rx) = unbounded();
        // One channel, addressed as partition 0, with "self" labelled 1 so
        // the sends count as remote — one thread exercises the whole loop.
        let mut t = InProcess::new(1, rx, vec![tx], &sync);
        assert_eq!(t.num_partitions(), 1);
        t.send(0, BatchKind::Superstep, Bytes::copy_from_slice(b"abc"))
            .unwrap();
        t.send(0, BatchKind::NextTimestep, Bytes::copy_from_slice(b"xyz"))
            .unwrap();
        let got = t.exchange().unwrap();
        assert_eq!(
            got,
            vec![
                (BatchKind::Superstep, Bytes::copy_from_slice(b"abc")),
                (BatchKind::NextTimestep, Bytes::copy_from_slice(b"xyz")),
            ]
        );
        let agg = t
            .arrive(Contribution {
                msgs_sent: 3,
                all_halted: true,
            })
            .unwrap();
        assert_eq!(agg.total_msgs, 3);
        assert!(agg.all_halted);
        t.barrier().unwrap();
    }

    #[test]
    fn contributions_fold_like_the_sync_point() {
        let agg = fold_contributions(&[
            Contribution {
                msgs_sent: 2,
                all_halted: true,
            },
            Contribution {
                msgs_sent: 5,
                all_halted: false,
            },
        ]);
        assert_eq!(agg.total_msgs, 7);
        assert!(!agg.all_halted);
        let agg = fold_contributions(&[Contribution {
            msgs_sent: 0,
            all_halted: true,
        }]);
        assert!(agg.should_stop());
    }

    #[test]
    fn worker_essentials_roundtrip() {
        let m = TimestepMetrics {
            compute_ns: 42,
            msgs_remote: 7,
            supersteps: 3,
            superstep_compute_ns: vec![40, 2],
            ..Default::default()
        };
        let essentials = WorkerEssentials {
            metrics: vec![m.clone(), TimestepMetrics::default()],
            merge_metrics: m,
            counters: vec![
                vec![("edges".to_string(), 10), ("visited".to_string(), 4)],
                vec![],
            ],
            merge_counters: vec![("merged".to_string(), 1)],
            emits: vec![Emit {
                timestep: 1,
                vertex: VertexIdx(9),
                value: 2.5,
            }],
            timesteps_run: 2,
            final_states: vec![(SubgraphId(3), vec![1, 2, 3]), (SubgraphId(5), vec![])],
        };
        let decoded = WorkerEssentials::decode(essentials.encode()).unwrap();
        assert_eq!(decoded.metrics, essentials.metrics);
        assert_eq!(decoded.merge_metrics, essentials.merge_metrics);
        assert_eq!(decoded.counters, essentials.counters);
        assert_eq!(decoded.merge_counters, essentials.merge_counters);
        assert_eq!(decoded.emits.len(), 1);
        assert_eq!(decoded.emits[0].vertex, VertexIdx(9));
        assert_eq!(decoded.timesteps_run, 2);
        assert_eq!(decoded.final_states, essentials.final_states);

        // Trailing garbage is rejected, truncation is a typed error.
        let mut enc = BytesMut::from(essentials.encode()[..].to_vec());
        enc.put_u8(0);
        assert!(WorkerEssentials::decode(enc.freeze()).is_err());
        let enc = essentials.encode();
        let cut = enc.slice(..enc.len() - 2);
        assert!(WorkerEssentials::decode(cut).is_err());

        // The interned round trip back to a WorkerOutput keeps counters.
        let decoded = WorkerEssentials::decode(essentials.encode()).unwrap();
        let out = decoded.into_output();
        assert_eq!(out.counters[0].get("edges"), Some(&10));
        assert_eq!(out.timesteps_run, 2);
    }
}
