//! Execution metrics: the raw material for the paper's Figures 6 and 7.

use std::collections::BTreeMap;
use tempograph_core::VertexIdx;
use tempograph_metrics::{ratio_or_zero, Histogram, Registry};
use tempograph_partition::SubgraphId;
use tempograph_trace::Trace;

/// Per-worker metrics shard (see `JobConfig::with_metrics`).
///
/// Lives inline in each worker and is folded into the job's [`Registry`]
/// by the driver after the workers join — the lock-free analogue of
/// barrier-time shard merging. Recording is allocation-free (histograms
/// are inline bucket arrays), and every duration recorded here is the
/// difference of the *same* `TraceSink::now` readings the trace spans
/// consume, so trace and metrics agree exactly (asserted in
/// `tests/trace_integration.rs`).
#[derive(Clone, Debug, Default)]
pub(crate) struct MetricsShard {
    /// Barriered compute durations: one observation per superstep plus one
    /// per `EndOfTimestep` phase.
    pub compute_ns: Histogram,
    /// Barrier wait durations (arrive + post-drain rendezvous).
    pub barrier_wait_ns: Histogram,
    /// Message marshalling/hand-off durations (one per send phase).
    pub send_ns: Histogram,
    /// Checkpoint snapshot+write durations (empty when not checkpointing).
    pub checkpoint_write_ns: Histogram,
    /// Checkpoint restore durations (empty for undisturbed runs).
    pub recovery_restore_ns: Histogram,
    /// GoFS instance-cache hits (0 for in-memory sources).
    pub cache_hits: u64,
    /// GoFS instance-cache misses.
    pub cache_misses: u64,
    /// GoFS instance-cache evictions.
    pub cache_evictions: u64,
    /// Bytes read and decoded from slice files.
    pub bytes_read: u64,
}

impl MetricsShard {
    /// Merge this shard's instruments into the job registry.
    pub(crate) fn fold_into(&self, reg: &mut Registry) {
        reg.merge_histogram("tempograph_superstep_compute_ns", &[], &self.compute_ns);
        reg.merge_histogram("tempograph_barrier_wait_ns", &[], &self.barrier_wait_ns);
        reg.merge_histogram("tempograph_send_ns", &[], &self.send_ns);
        if self.checkpoint_write_ns.count() > 0 {
            reg.merge_histogram(
                "tempograph_checkpoint_write_ns",
                &[],
                &self.checkpoint_write_ns,
            );
        }
        if self.recovery_restore_ns.count() > 0 {
            reg.merge_histogram(
                "tempograph_recovery_restore_ns",
                &[],
                &self.recovery_restore_ns,
            );
        }
        reg.counter_add("tempograph_gofs_cache_hits_total", &[], self.cache_hits);
        reg.counter_add("tempograph_gofs_cache_misses_total", &[], self.cache_misses);
        reg.counter_add(
            "tempograph_gofs_cache_evictions_total",
            &[],
            self.cache_evictions,
        );
        reg.counter_add("tempograph_gofs_bytes_read_total", &[], self.bytes_read);
    }
}

/// Per-(timestep, partition) timing and traffic breakdown.
///
/// Terminology follows the paper's Fig. 7: **compute** is user `Compute`
/// time; **partition overhead** is message marshalling/transfer time after
/// compute completes; **sync overhead** is time blocked on the BSP barrier
/// (including idling while stragglers finish).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimestepMetrics {
    /// Nanoseconds inside user `Compute`/`EndOfTimestep` calls.
    pub compute_ns: u64,
    /// Nanoseconds encoding and handing off messages (partition overhead).
    pub msg_ns: u64,
    /// Nanoseconds blocked at barriers (sync overhead).
    pub sync_ns: u64,
    /// Nanoseconds reading/decoding instance data (GoFS loads or in-memory
    /// projection).
    pub io_ns: u64,
    /// Wall-clock nanoseconds for this partition's timestep.
    pub wall_ns: u64,
    /// Supersteps executed in this timestep's BSP.
    pub supersteps: u32,
    /// Messages delivered within this partition.
    pub msgs_local: u64,
    /// Messages sent to other partitions.
    pub msgs_remote: u64,
    /// Serialised bytes shipped to other partitions.
    pub bytes_remote: u64,
    /// Messages eliminated by the sender-side combiner (counted before the
    /// local/remote split).
    pub msgs_combined: u64,
    /// Serialised frames shipped to other partitions (one per (src, dst)
    /// pair per phase that had traffic).
    pub batches_remote: u64,
    /// Slice files loaded from disk (GoFS source only).
    pub slice_loads: u64,
    /// Remote batch transmissions retried after an injected transient send
    /// failure (always 0 without fault injection).
    pub send_retries: u64,
    /// Compute nanoseconds per superstep within this timestep. Feeds the
    /// *virtual makespan* model (see [`JobResult::virtual_timestep_ns`]):
    /// on a single-core host, worker threads timeshare one CPU, so wall
    /// clock cannot show strong scaling — but per-partition compute time is
    /// still measured faithfully, and the barrier structure lets us derive
    /// the makespan a real cluster would see.
    pub superstep_compute_ns: Vec<u64>,
}

impl TimestepMetrics {
    /// Merge another metrics record into this one.
    pub fn absorb(&mut self, other: &TimestepMetrics) {
        self.compute_ns += other.compute_ns;
        self.msg_ns += other.msg_ns;
        self.sync_ns += other.sync_ns;
        self.io_ns += other.io_ns;
        self.wall_ns = self.wall_ns.max(other.wall_ns);
        self.supersteps = self.supersteps.max(other.supersteps);
        self.msgs_local += other.msgs_local;
        self.msgs_remote += other.msgs_remote;
        self.bytes_remote += other.bytes_remote;
        self.msgs_combined += other.msgs_combined;
        self.batches_remote += other.batches_remote;
        self.slice_loads += other.slice_loads;
        self.send_retries += other.send_retries;
        // Element-wise max: within one superstep every partition waits for
        // the slowest, so the barrier-synchronised cost of superstep `ss` is
        // `max_p(compute[ss][p])` — the same reduce
        // `JobResult::virtual_timestep_ns` applies.
        if other.superstep_compute_ns.len() > self.superstep_compute_ns.len() {
            self.superstep_compute_ns
                .resize(other.superstep_compute_ns.len(), 0);
        }
        for (mine, &theirs) in self
            .superstep_compute_ns
            .iter_mut()
            .zip(&other.superstep_compute_ns)
        {
            *mine = (*mine).max(theirs);
        }
    }

    /// Fraction of accounted time spent in compute (Fig. 7b/7d's "Compute").
    pub fn compute_fraction(&self) -> f64 {
        let total = self.compute_ns + self.msg_ns + self.sync_ns;
        if total == 0 {
            return 0.0;
        }
        self.compute_ns as f64 / total as f64
    }
}

/// One value emitted by an algorithm via `Context::emit` (e.g. a finalized
/// TDSP label or a newly coloured meme vertex).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Emit {
    /// Timestep at which the value was produced (`usize::MAX` ⇒ merge phase).
    pub timestep: usize,
    /// Subject vertex.
    pub vertex: VertexIdx,
    /// Emitted value (algorithm-defined meaning).
    pub value: f64,
}

/// One row of the per-(subgraph, timestep) compute attribution table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttributionRow {
    /// The subgraph whose program hooks this row accounts.
    pub subgraph: SubgraphId,
    /// Timestep index (`u32::MAX` ⇒ merge phase, mirroring
    /// [`Emit::timestep`]'s `usize::MAX` convention).
    pub timestep: u32,
    /// Measured nanoseconds spent inside this subgraph's program hooks at
    /// this timestep (compute supersteps + end-of-timestep). Differences
    /// of the worker's `TraceSink::now` readings — the same clock the
    /// trace spans and metrics histograms consume.
    pub compute_ns: u64,
    /// Program-hook invocations folded into this row. Deterministic for a
    /// seeded run (it counts supersteps the subgraph participated in),
    /// unlike the measured nanoseconds — so it doubles as a
    /// machine-independent cost proxy.
    pub invocations: u32,
}

/// The assembled per-(subgraph, timestep) compute attribution table (see
/// [`JobConfig::with_attribution`](crate::JobConfig::with_attribution)).
/// Rows are sorted by `(subgraph, timestep)` with merge rows last; each
/// `(subgraph, timestep)` pair appears at most once.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostAttribution {
    /// The table rows.
    pub rows: Vec<AttributionRow>,
}

impl CostAttribution {
    /// Total measured compute nanoseconds per subgraph (merge included),
    /// sorted by subgraph id — the *measured* cost vector
    /// `partition::suggest_rebalance_from` consumes.
    pub fn per_subgraph_ns(&self) -> Vec<(SubgraphId, u64)> {
        self.fold_per_subgraph(|r| r.compute_ns)
    }

    /// Total program-hook invocations per subgraph, sorted by subgraph id
    /// — a deterministic cost proxy for reproducible analyses.
    pub fn per_subgraph_invocations(&self) -> Vec<(SubgraphId, u64)> {
        self.fold_per_subgraph(|r| r.invocations as u64)
    }

    fn fold_per_subgraph(&self, value: impl Fn(&AttributionRow) -> u64) -> Vec<(SubgraphId, u64)> {
        let mut out: Vec<(SubgraphId, u64)> = Vec::new();
        // Rows arrive subgraph-sorted, so equal ids are adjacent.
        for r in &self.rows {
            match out.last_mut() {
                Some((sg, total)) if *sg == r.subgraph => *total += value(r),
                _ => out.push((r.subgraph, value(r))),
            }
        }
        out
    }

    /// Total measured compute nanoseconds across the whole table.
    pub fn total_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.compute_ns).sum()
    }
}

/// Everything a TI-BSP run reports back.
#[derive(Clone, Debug, Default)]
pub struct JobResult {
    /// Timesteps actually executed (≤ configured range for While mode).
    pub timesteps_run: usize,
    /// `metrics[timestep][partition]`.
    pub metrics: Vec<Vec<TimestepMetrics>>,
    /// Merge-phase metrics per partition (eventually-dependent runs only).
    pub merge_metrics: Vec<TimestepMetrics>,
    /// User counters: name → `[timestep][partition]` sums. A `BTreeMap` so
    /// iteration (CLI reports, checkpoint encoding) is name-ordered and
    /// deterministic (lint rule D01).
    pub counters: BTreeMap<String, Vec<Vec<u64>>>,
    /// Merge-phase counters: name → per-partition sums.
    pub merge_counters: BTreeMap<String, Vec<u64>>,
    /// All emitted values, sorted by (timestep, vertex).
    pub emitted: Vec<Emit>,
    /// End-to-end wall nanoseconds (includes merge phase).
    pub total_wall_ns: u64,
    /// Recovery attempts the job needed (0 for an undisturbed run). Each
    /// attempt restarted the cluster from the latest valid checkpoint (or
    /// from scratch when none existed).
    pub recoveries: usize,
    /// Final per-subgraph program state, serialised via
    /// `SubgraphProgram::save_state` and sorted by [`SubgraphId`]. Empty
    /// when no program overrides `save_state`. The recovery-equivalence
    /// harness compares these byte-for-byte between clean and recovered
    /// runs.
    pub final_states: Vec<(SubgraphId, Vec<u8>)>,
    /// The assembled structured trace, when the job ran with
    /// `JobConfig::with_trace`. Export via `Trace::to_chrome_json` /
    /// `Trace::summary`; every `TimestepMetrics` aggregate is derivable
    /// from it (asserted in `tests/trace_integration.rs`).
    pub trace: Option<Trace>,
    /// The per-(subgraph, timestep) compute attribution table, when the
    /// job ran with `JobConfig::with_attribution`. Feeds the run ledger's
    /// persistent records and measured-cost rebalance analysis. Covers the
    /// final successful attempt of a recovered run (like `registry`).
    pub attribution: Option<CostAttribution>,
    /// The folded metrics registry, when the job ran with
    /// `JobConfig::with_metrics`: per-worker histogram shards merged with
    /// the job-level counters of [`JobResult::export_into`]. Export via
    /// `Registry::snapshot` (Prometheus text / top-N summary / JSON).
    pub registry: Option<Registry>,
}

impl JobResult {
    /// Fold this result's aggregate counters into a metrics registry.
    ///
    /// Counts are summed across every timestep row, every partition, and
    /// the merge phase, so after a checkpointed recovery they include the
    /// restored pre-crash portion. `tempograph_recoveries_total` and
    /// `tempograph_send_retries_total` make fault-injection runs
    /// (`TEMPOGRAPH_FAULTS`) visible in the Prometheus/JSON output.
    pub fn export_into(&self, reg: &mut Registry) {
        let mut compute = 0u64;
        let mut msg = 0u64;
        let mut sync = 0u64;
        let mut io = 0u64;
        let mut supersteps = 0u64;
        let mut msgs_local = 0u64;
        let mut msgs_remote = 0u64;
        let mut bytes_remote = 0u64;
        let mut msgs_combined = 0u64;
        let mut batches_remote = 0u64;
        let mut slice_loads = 0u64;
        let mut send_retries = 0u64;
        let rows = self
            .metrics
            .iter()
            .flat_map(|per_t| per_t.iter())
            .chain(self.merge_metrics.iter());
        for m in rows {
            compute += m.compute_ns;
            msg += m.msg_ns;
            sync += m.sync_ns;
            io += m.io_ns;
            msgs_local += m.msgs_local;
            msgs_remote += m.msgs_remote;
            bytes_remote += m.bytes_remote;
            msgs_combined += m.msgs_combined;
            batches_remote += m.batches_remote;
            slice_loads += m.slice_loads;
            send_retries += m.send_retries;
        }
        // Supersteps are barrier-synchronised: every partition runs the
        // same count per timestep, so take the per-timestep max, not the
        // per-partition sum.
        for per_t in &self.metrics {
            supersteps += u64::from(per_t.iter().map(|m| m.supersteps).max().unwrap_or(0));
        }
        supersteps += u64::from(
            self.merge_metrics
                .iter()
                .map(|m| m.supersteps)
                .max()
                .unwrap_or(0),
        );

        reg.counter_add("tempograph_timesteps_total", &[], self.timesteps_run as u64);
        reg.counter_add("tempograph_supersteps_total", &[], supersteps);
        reg.counter_add("tempograph_compute_ns_total", &[], compute);
        reg.counter_add("tempograph_msg_ns_total", &[], msg);
        reg.counter_add("tempograph_sync_ns_total", &[], sync);
        reg.counter_add("tempograph_io_ns_total", &[], io);
        reg.counter_add("tempograph_wall_ns_total", &[], self.total_wall_ns);
        reg.counter_add("tempograph_virtual_ns_total", &[], self.virtual_total_ns());
        reg.counter_add("tempograph_msgs_local_total", &[], msgs_local);
        reg.counter_add("tempograph_msgs_remote_total", &[], msgs_remote);
        reg.counter_add("tempograph_bytes_remote_total", &[], bytes_remote);
        reg.counter_add("tempograph_msgs_combined_total", &[], msgs_combined);
        reg.counter_add("tempograph_batches_remote_total", &[], batches_remote);
        reg.counter_add("tempograph_slice_loads_total", &[], slice_loads);
        reg.counter_add("tempograph_send_retries_total", &[], send_retries);
        reg.counter_add("tempograph_recoveries_total", &[], self.recoveries as u64);
        reg.counter_add(
            "tempograph_emitted_values_total",
            &[],
            self.emitted.len() as u64,
        );
        reg.gauge_set(
            "tempograph_msgs_remote_fraction",
            &[],
            ratio_or_zero(msgs_remote, msgs_local + msgs_remote),
        );
    }

    /// Global wall time of one timestep: the slowest partition's wall time.
    pub fn timestep_wall_ns(&self, t: usize) -> u64 {
        self.metrics[t].iter().map(|m| m.wall_ns).max().unwrap_or(0)
    }

    /// Sum a counter across partitions for one timestep.
    pub fn counter_at(&self, name: &str, t: usize) -> u64 {
        self.counters
            .get(name)
            .and_then(|per_t| per_t.get(t))
            .map(|per_p| per_p.iter().sum())
            .unwrap_or(0)
    }

    /// Per-partition totals of a counter across all timesteps.
    pub fn counter_by_partition(&self, name: &str) -> Vec<u64> {
        let Some(per_t) = self.counters.get(name) else {
            return Vec::new();
        };
        let parts = per_t.first().map_or(0, |p| p.len());
        let mut out = vec![0u64; parts];
        for per_p in per_t {
            for (i, &v) in per_p.iter().enumerate() {
                out[i] += v;
            }
        }
        out
    }

    /// Aggregate per-partition time breakdown across all timesteps —
    /// the Fig. 7b/7d stacked bars.
    pub fn partition_breakdown(&self) -> Vec<TimestepMetrics> {
        let parts = self.metrics.first().map_or(0, |t| t.len());
        let mut out = vec![TimestepMetrics::default(); parts];
        for per_t in &self.metrics {
            for (i, m) in per_t.iter().enumerate() {
                let wall = out[i].wall_ns;
                out[i].absorb(m);
                out[i].wall_ns = wall + m.wall_ns; // sum, not max, across time
            }
        }
        for (i, m) in self.merge_metrics.iter().enumerate() {
            if i < out.len() {
                let wall = out[i].wall_ns;
                out[i].absorb(m);
                out[i].wall_ns = wall + m.wall_ns;
            }
        }
        out
    }

    /// Emitted values at one timestep.
    pub fn emitted_at(&self, t: usize) -> impl Iterator<Item = &Emit> {
        self.emitted.iter().filter(move |e| e.timestep == t)
    }

    // ---- virtual (simulated-cluster) time model -------------------------
    //
    // The engine's worker threads stand in for cluster hosts. On a
    // multi-core machine their wall clock approximates a real cluster; on a
    // single-core machine the threads timeshare one CPU and wall clock
    // degenerates to the *sum* of all partitions' work. Per-partition
    // compute time is measured faithfully either way, so the BSP barrier
    // structure lets us reconstruct the makespan a real cluster would see:
    // within each superstep every host waits for the slowest one, so the
    // superstep costs `max_p(compute_p)`; message marshalling and I/O are
    // similarly bounded by the slowest partition per timestep.

    /// Simulated cluster makespan of one timestep:
    /// `Σ_ss max_p(compute[ss][p]) + max_p(msg_p) + max_p(io_p)`.
    pub fn virtual_timestep_ns(&self, t: usize) -> u64 {
        let parts = &self.metrics[t];
        let max_ss = parts
            .iter()
            .map(|m| m.superstep_compute_ns.len())
            .max()
            .unwrap_or(0);
        let mut total = 0u64;
        for ss in 0..max_ss {
            total += parts
                .iter()
                .map(|m| m.superstep_compute_ns.get(ss).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
        }
        total += parts.iter().map(|m| m.msg_ns).max().unwrap_or(0);
        total += parts.iter().map(|m| m.io_ns).max().unwrap_or(0);
        total
    }

    /// Simulated cluster makespan of the whole job (timesteps + merge).
    pub fn virtual_total_ns(&self) -> u64 {
        let steps: u64 = (0..self.timesteps_run)
            .map(|t| self.virtual_timestep_ns(t))
            .sum();
        let merge = self
            .merge_metrics
            .iter()
            .map(|m| m.compute_ns + m.msg_ns)
            .max()
            .unwrap_or(0);
        steps + merge
    }

    /// Per-partition `(compute_ns, overhead_ns, idle_ns)` under the virtual
    /// model — the paper's Fig. 7b/7d stacked bars. `idle` is time a
    /// partition spends waiting at barriers for slower peers
    /// (`Σ_ss (max_q compute[ss][q] − compute[ss][p])`), which the paper
    /// folds into "Sync Overhead".
    pub fn virtual_partition_breakdown(&self) -> Vec<(u64, u64, u64)> {
        let parts = self.metrics.first().map_or(0, |t| t.len());
        let mut out = vec![(0u64, 0u64, 0u64); parts];
        for t in 0..self.timesteps_run {
            let row = &self.metrics[t];
            let max_ss = row
                .iter()
                .map(|m| m.superstep_compute_ns.len())
                .max()
                .unwrap_or(0);
            for ss in 0..max_ss {
                let slowest = row
                    .iter()
                    .map(|m| m.superstep_compute_ns.get(ss).copied().unwrap_or(0))
                    .max()
                    .unwrap_or(0);
                for (p, m) in row.iter().enumerate() {
                    let own = m.superstep_compute_ns.get(ss).copied().unwrap_or(0);
                    out[p].0 += own;
                    out[p].2 += slowest - own;
                }
            }
            for (p, m) in row.iter().enumerate() {
                out[p].1 += m.msg_ns + m.io_ns;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(compute: u64, msg: u64, sync: u64) -> TimestepMetrics {
        TimestepMetrics {
            compute_ns: compute,
            msg_ns: msg,
            sync_ns: sync,
            ..Default::default()
        }
    }

    #[test]
    fn compute_fraction_basic() {
        assert_eq!(m(50, 25, 25).compute_fraction(), 0.5);
        assert_eq!(m(0, 0, 0).compute_fraction(), 0.0);
        assert_eq!(m(10, 0, 0).compute_fraction(), 1.0);
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = m(10, 5, 1);
        a.wall_ns = 100;
        a.supersteps = 3;
        let mut b = m(20, 1, 1);
        b.wall_ns = 80;
        b.supersteps = 7;
        a.absorb(&b);
        assert_eq!(a.compute_ns, 30);
        assert_eq!(a.wall_ns, 100);
        assert_eq!(a.supersteps, 7);
    }

    #[test]
    fn absorb_max_reduces_superstep_series() {
        let mut a = m(0, 0, 0);
        a.superstep_compute_ns = vec![10, 5];
        let mut b = m(0, 0, 0);
        b.superstep_compute_ns = vec![3, 8, 4];
        a.absorb(&b);
        assert_eq!(
            a.superstep_compute_ns,
            vec![10, 8, 4],
            "element-wise max, ragged tail kept"
        );
        // Absorbing a shorter (or empty) series must not lose data.
        a.absorb(&m(1, 1, 1));
        assert_eq!(a.superstep_compute_ns, vec![10, 8, 4]);
    }

    #[test]
    fn virtual_timestep_handles_ragged_superstep_series() {
        // Partition 0 ran 3 supersteps, partition 1 halted after 1: the
        // virtual model max-reduces per superstep, treating absent entries
        // as zero.
        let mut p0 = m(0, 4, 0);
        p0.superstep_compute_ns = vec![10, 20, 30];
        let mut p1 = m(0, 9, 0);
        p1.superstep_compute_ns = vec![50];
        let r = JobResult {
            timesteps_run: 1,
            metrics: vec![vec![p0, p1]],
            ..Default::default()
        };
        // 50 (max of ss0) + 20 + 30 + max(msg) = 100 + 9.
        assert_eq!(r.virtual_timestep_ns(0), 109);
        let breakdown = r.virtual_partition_breakdown();
        assert_eq!(breakdown[0], (60, 4, 50 - 10), "p0 idles in ss0");
        assert_eq!(breakdown[1], (50, 9, 20 + 30), "p1 idles in ss1, ss2");
    }

    #[test]
    fn virtual_model_zero_partitions_and_empty_job() {
        let r = JobResult {
            timesteps_run: 1,
            metrics: vec![vec![]],
            ..Default::default()
        };
        assert_eq!(r.virtual_timestep_ns(0), 0);
        assert_eq!(r.virtual_total_ns(), 0);
        assert!(r.virtual_partition_breakdown().is_empty());
        assert!(JobResult::default()
            .virtual_partition_breakdown()
            .is_empty());
        assert_eq!(JobResult::default().virtual_total_ns(), 0);
    }

    #[test]
    fn virtual_total_counts_merge_only_jobs() {
        // A merge-only job (zero timesteps, eventually-dependent pattern):
        // virtual total is just the slowest partition's merge work.
        let mut mm0 = m(40, 2, 0);
        mm0.wall_ns = 50;
        let mm1 = m(10, 30, 0);
        let r = JobResult {
            timesteps_run: 0,
            metrics: vec![],
            merge_metrics: vec![mm0, mm1],
            ..Default::default()
        };
        assert_eq!(r.virtual_total_ns(), 42, "max_p(compute+msg) over merge");
        let breakdown = r.partition_breakdown();
        assert!(
            breakdown.is_empty(),
            "no timestep rows ⇒ partition count is unknown"
        );
    }

    #[test]
    fn job_result_accessors() {
        let mut r = JobResult {
            timesteps_run: 2,
            metrics: vec![vec![m(10, 0, 0), m(5, 0, 0)], vec![m(1, 0, 0), m(2, 0, 0)]],
            ..Default::default()
        };
        r.metrics[0][0].wall_ns = 7;
        r.metrics[0][1].wall_ns = 9;
        assert_eq!(r.timestep_wall_ns(0), 9);

        r.counters
            .insert("colored".into(), vec![vec![3, 4], vec![1, 0]]);
        assert_eq!(r.counter_at("colored", 0), 7);
        assert_eq!(r.counter_at("colored", 1), 1);
        assert_eq!(r.counter_at("missing", 0), 0);
        assert_eq!(r.counter_by_partition("colored"), vec![4, 4]);

        let breakdown = r.partition_breakdown();
        assert_eq!(breakdown[0].compute_ns, 11);
        assert_eq!(breakdown[1].compute_ns, 7);
        assert_eq!(breakdown[0].wall_ns, 7); // only t0 had wall time
    }

    #[test]
    fn export_into_registry_counters() {
        let mut r = JobResult {
            timesteps_run: 1,
            metrics: vec![vec![m(10, 5, 2), m(30, 1, 1)]],
            ..Default::default()
        };
        r.metrics[0][0].supersteps = 4;
        r.metrics[0][1].supersteps = 4;
        r.metrics[0][0].msgs_local = 3;
        r.metrics[0][0].msgs_remote = 1;
        r.metrics[0][0].send_retries = 2;
        r.recoveries = 1;
        let mut reg = Registry::new();
        r.export_into(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("tempograph_compute_ns_total"), 40);
        assert_eq!(snap.counter_total("tempograph_supersteps_total"), 4);
        assert_eq!(snap.counter_total("tempograph_send_retries_total"), 2);
        assert_eq!(snap.counter_total("tempograph_recoveries_total"), 1);
        match snap.get("tempograph_msgs_remote_fraction", &[]) {
            Some(tempograph_metrics::Metric::Gauge(g)) => assert_eq!(*g, 0.25),
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn export_into_empty_job_has_finite_ratios() {
        let mut reg = Registry::new();
        JobResult::default().export_into(&mut reg);
        match reg.get("tempograph_msgs_remote_fraction", &[]) {
            Some(tempograph_metrics::Metric::Gauge(g)) => {
                assert_eq!(*g, 0.0, "zero denominator must yield 0.0, not NaN");
            }
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn emitted_at_filters() {
        let r = JobResult {
            emitted: vec![
                Emit {
                    timestep: 0,
                    vertex: VertexIdx(1),
                    value: 1.0,
                },
                Emit {
                    timestep: 1,
                    vertex: VertexIdx(2),
                    value: 2.0,
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.emitted_at(1).count(), 1);
        assert_eq!(r.emitted_at(9).count(), 0);
    }
}
