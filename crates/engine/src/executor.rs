//! The TI-BSP executor: a simulated distributed cluster.
//!
//! One OS thread per partition stands in for one GoFFish host (the paper's
//! EC2 VMs). Within a timestep, workers run barrier-synchronised BSP
//! supersteps over their subgraphs; across timesteps the configured
//! [`Pattern`] decides how state flows (§II.B's three design patterns).
//!
//! **Messaging.** Intra-partition messages move as values; inter-partition
//! messages are genuinely serialised through [`crate::wire`], shipped over
//! a crossbeam channel, and deserialised by the receiving worker — so the
//! "partition overhead" metric measures real marshalling work and remote
//! byte counts are true wire sizes.
//!
//! **Synchronisation.** Each superstep ends at a [`SyncPoint`] rendezvous
//! that also folds the halting votes and message counts; BSP terminates when
//! all subgraphs voted to halt and no messages are in flight (§II.C), and in
//! `WhileActive` mode the timestep loop terminates when all subgraphs voted
//! `VoteToHaltTimestep` and no cross-timestep messages were emitted (§II.D).
//!
//! **Determinism.** Message delivery is sorted by (sender, sequence), so a
//! job's emitted results are identical across runs and partition layouts
//! don't leak scheduling nondeterminism into algorithm output.

use crate::batch::{
    combine_envelopes, merge_sorted_runs, merge_sorted_runs_traced, BufferPool, Combiner,
    MessageBatch,
};
use crate::checkpoint::{
    self, checkpoint_path, commit_manifest, CheckpointConfig, SubgraphCheckpoint, WorkerCheckpoint,
};
use crate::error::EngineError;
use crate::faults::{injected_panic_message, payload_is_injected, FaultPlan};
use crate::metrics::{Emit, JobResult, MetricsShard, TimestepMetrics};
use crate::program::{Context, Outbox, Phase, SubgraphProgram};
use crate::provider::{InstanceProvider, InstanceSource};
use crate::sync::{join_partition, Contribution, PoisonOnPanic, SyncPoint};
use crate::transport::{BatchKind, InProcess, TelemetryFlush, Transport};
use crate::wire::{sort_envelopes, Envelope};
use bytes::{Buf, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use tempograph_gofs::store::{tmp_sibling, write_atomic};
use tempograph_gofs::SubgraphInstance;
use tempograph_partition::{PartitionedGraph, SubgraphId};
use tempograph_trace::{Clock, Trace, TraceConfig, TraceSink};

/// One unit of work for the intra-partition compute pool: the subgraph's
/// index, its program slot (taken while the worker thread runs it), and
/// its delivered inbox.
type WorkItem<'a, P> = (
    usize,
    &'a mut Option<P>,
    Vec<Envelope<<P as SubgraphProgram>::Msg>>,
);

/// The paper's three design patterns for time-series graph algorithms.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Every instance is analysed independently; results are the union of
    /// per-instance results. Cross-timestep messaging is forbidden.
    Independent,
    /// Instances run independently, then a Merge BSP aggregates
    /// `SendMessageToMerge` traffic.
    EventuallyDependent,
    /// Each timestep's computation consumes the previous timestep's output
    /// via `SendToNextTimestep` (the paper's focus).
    SequentiallyDependent,
}

/// How many timesteps to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TimestepMode {
    /// Run exactly this many instances (a `For` loop over `ti..ti+n`).
    Fixed(usize),
    /// Run until every subgraph votes `VoteToHaltTimestep` and no
    /// cross-timestep messages are emitted (a `While` loop), capped at
    /// `max`.
    WhileActive {
        /// Upper bound on timesteps (≤ stored instances).
        max: usize,
    },
}

/// Default [`JobConfig::straggler_factor`]: a worker must wait 4× the
/// round's median barrier wait before the coordinator flags it.
pub const DEFAULT_STRAGGLER_FACTOR: f64 = 4.0;

/// TI-BSP job configuration.
#[derive(Clone)]
pub struct JobConfig<M> {
    /// Design pattern (decides merge phase and cross-timestep rules).
    pub pattern: Pattern,
    /// Timestep loop mode.
    pub mode: TimestepMode,
    /// Safety bound on supersteps per timestep.
    pub max_supersteps: usize,
    /// Application input messages, delivered at timestep 0, superstep 0.
    pub initial_messages: Vec<(SubgraphId, M)>,
    /// Ablation A1: process instances without per-timestep barriers
    /// (independent / eventually-dependent patterns whose compute uses no
    /// superstep messaging only). The paper notes GoFFish does *not* exploit
    /// this; defaults to `false` for fidelity.
    pub temporal_parallelism: bool,
    /// Run a worker's subgraphs in parallel within each superstep (scoped
    /// threads) —
    /// the multi-core use of a host that GoFFish gets from the JVM (the
    /// paper's m3.large VMs have 2 cores). Instances for active subgraphs
    /// are prefetched eagerly in this mode, trading per-subgraph lazy
    /// loading for parallelism. Deterministic: outboxes are merged in
    /// subgraph order regardless of completion order.
    pub intra_partition_parallelism: bool,
    /// Optional sender-side message combiner (see [`Combiner`]). Sound only
    /// for order-insensitive (associative + commutative) reductions; with
    /// such a reduction, results are byte-identical with or without it.
    pub combiner: Option<Arc<dyn Combiner<M>>>,
    /// Structured tracing (see [`tempograph_trace`]). When set, every
    /// worker records timestep/superstep/compute/send/barrier spans and
    /// traffic counters into a per-partition sink, and [`JobResult::trace`]
    /// carries the assembled [`Trace`]. `None` (the default) keeps the
    /// engine on the inert-sink path: clock reads only, no recording.
    pub trace: Option<TraceConfig>,
    /// Metrics collection (see [`tempograph_metrics`]). When `true`, every
    /// worker keeps an inline histogram shard fed from the same
    /// `TraceSink::now` readings the trace spans use, the driver folds the
    /// shards plus job-level counters into a registry, and
    /// [`JobResult::registry`] carries it. `false` (the default) adds no
    /// work and no allocations to the superstep hot path.
    pub metrics: bool,
    /// Per-(subgraph, timestep) compute attribution (see
    /// [`crate::metrics::CostAttribution`]). When `true`, every worker
    /// accumulates per-invocation compute nanoseconds into a dense
    /// preallocated grid — same `TraceSink::now` clock discipline as the
    /// trace and metrics layers — and [`JobResult::attribution`] carries
    /// the assembled table. `false` (the default) keeps every record site
    /// a branch on `None`: no clock reads, no allocations.
    pub attribution: bool,
    /// Superstep checkpointing (see [`crate::checkpoint`]). When set, every
    /// worker snapshots its recovery state at the configured timestep
    /// interval, and an injected worker death makes [`run_job`] restart the
    /// cluster from the latest committed checkpoint instead of failing.
    pub checkpoint: Option<CheckpointConfig>,
    /// Deterministic fault injection (see [`crate::faults`]). Arc-shared so
    /// one-shot panic events stay latched across recovery attempts.
    pub faults: Option<Arc<FaultPlan>>,
    /// TCP-mode live introspection: when set, [`crate::run_job_tcp`]'s
    /// coordinator serves the status board (`tempograph status`) on this
    /// address for the life of the job. Ignored by the in-process driver.
    pub status_addr: Option<String>,
    /// Straggler threshold: a worker whose per-timestep barrier wait
    /// exceeds this multiple of the round's median wait earns a
    /// `straggler.detected` instant from the TCP coordinator. Only
    /// meaningful when tracing is armed over TCP.
    pub straggler_factor: f64,
}

impl<M> std::fmt::Debug for JobConfig<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobConfig")
            .field("pattern", &self.pattern)
            .field("mode", &self.mode)
            .field("max_supersteps", &self.max_supersteps)
            .field("initial_messages", &self.initial_messages.len())
            .field("temporal_parallelism", &self.temporal_parallelism)
            .field(
                "intra_partition_parallelism",
                &self.intra_partition_parallelism,
            )
            .field("combiner", &self.combiner.is_some())
            .field("trace", &self.trace)
            .field("metrics", &self.metrics)
            .field("attribution", &self.attribution)
            .field("checkpoint", &self.checkpoint)
            .field("faults", &self.faults)
            .field("status_addr", &self.status_addr)
            .field("straggler_factor", &self.straggler_factor)
            .finish()
    }
}

impl<M> JobConfig<M> {
    /// A sequentially dependent job over `timesteps` instances.
    pub fn sequentially_dependent(timesteps: usize) -> Self {
        Self::with_pattern(Pattern::SequentiallyDependent, timesteps)
    }

    /// An eventually dependent job over `timesteps` instances.
    pub fn eventually_dependent(timesteps: usize) -> Self {
        Self::with_pattern(Pattern::EventuallyDependent, timesteps)
    }

    /// An independent job over `timesteps` instances.
    pub fn independent(timesteps: usize) -> Self {
        Self::with_pattern(Pattern::Independent, timesteps)
    }

    fn with_pattern(pattern: Pattern, timesteps: usize) -> Self {
        JobConfig {
            pattern,
            mode: TimestepMode::Fixed(timesteps),
            max_supersteps: 100_000,
            initial_messages: Vec::new(),
            temporal_parallelism: false,
            intra_partition_parallelism: false,
            combiner: None,
            trace: None,
            metrics: false,
            attribution: false,
            checkpoint: None,
            faults: None,
            status_addr: None,
            straggler_factor: DEFAULT_STRAGGLER_FACTOR,
        }
    }

    /// Switch to `WhileActive` (vote-driven) timestep termination.
    pub fn while_active(mut self, max: usize) -> Self {
        self.mode = TimestepMode::WhileActive { max };
        self
    }

    /// Provide application input messages.
    pub fn with_initial_messages(mut self, msgs: Vec<(SubgraphId, M)>) -> Self {
        self.initial_messages = msgs;
        self
    }

    /// Enable the temporal-parallelism ablation (see field docs).
    pub fn with_temporal_parallelism(mut self) -> Self {
        self.temporal_parallelism = true;
        self
    }

    /// Enable parallelism across a partition's subgraphs (see field docs).
    pub fn with_intra_partition_parallelism(mut self) -> Self {
        self.intra_partition_parallelism = true;
        self
    }

    /// Install a sender-side message combiner (see field docs).
    pub fn with_combiner(mut self, combiner: Arc<dyn Combiner<M>>) -> Self {
        self.combiner = Some(combiner);
        self
    }

    /// Enable structured tracing (see field docs).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Enable metrics collection (see field docs).
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Enable per-(subgraph, timestep) compute attribution (see field docs).
    pub fn with_attribution(mut self) -> Self {
        self.attribution = true;
        self
    }

    /// Checkpoint every `every` timesteps into `dir` (see field docs).
    /// `usize::MAX` means "never write a checkpoint" — recovery is still
    /// armed but restarts from scratch.
    pub fn with_checkpoint(mut self, every: usize, dir: impl Into<std::path::PathBuf>) -> Self {
        assert!(every >= 1, "checkpoint interval must be ≥ 1");
        self.checkpoint = Some(CheckpointConfig {
            every,
            dir: dir.into(),
        });
        self
    }

    /// Install a deterministic fault-injection plan (see field docs).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Serve the live status board on `addr` (TCP mode; see field docs).
    pub fn with_status_addr(mut self, addr: impl Into<String>) -> Self {
        self.status_addr = Some(addr.into());
        self
    }

    /// Set the straggler-detection threshold (see field docs).
    pub fn with_straggler_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be ≥ 1");
        self.straggler_factor = factor;
        self
    }
}

/// Per-worker compute-attribution accumulator: a dense
/// `(timestep × local subgraph)` grid preallocated once at worker setup,
/// so the record path is two indexed adds and never allocates. Slot
/// `merge_slot` (one past the configured timestep range) is reserved for
/// the merge phase and surfaces as `timestep == u32::MAX` in the
/// assembled [`crate::metrics::CostAttribution`].
pub(crate) struct AttributionShard {
    /// This worker's subgraphs, in local index order (row labels).
    sg_ids: Vec<SubgraphId>,
    /// Grid slot reserved for the merge phase (== configured timesteps).
    merge_slot: usize,
    /// Accumulated compute nanoseconds, indexed `slot * n_sg + i`.
    compute_ns: Vec<u64>,
    /// Program-hook invocation counts, same indexing. Deterministic for a
    /// seeded run, unlike the measured nanoseconds.
    invocations: Vec<u32>,
}

impl AttributionShard {
    fn new(sg_ids: Vec<SubgraphId>, timesteps: usize) -> Self {
        let cells = sg_ids.len() * (timesteps + 1);
        AttributionShard {
            sg_ids,
            merge_slot: timesteps,
            compute_ns: vec![0; cells],
            invocations: vec![0; cells],
        }
    }

    /// Record one program-hook invocation for local subgraph `i` at grid
    /// slot `slot` (a timestep, or `merge_slot`). Bounds-checked with
    /// `get_mut` — this runs inside the superstep hot path, where lint
    /// rule P01 bans panicking accessors.
    #[inline]
    fn record(&mut self, i: usize, slot: usize, dur_ns: u64) {
        let idx = slot * self.sg_ids.len() + i;
        if let (Some(c), Some(n)) = (self.compute_ns.get_mut(idx), self.invocations.get_mut(idx)) {
            *c += dur_ns;
            *n += 1;
        }
    }

    /// Non-empty cells as attribution rows (merge slot ⇒ `u32::MAX`).
    fn rows(&self) -> Vec<crate::metrics::AttributionRow> {
        let n = self.sg_ids.len();
        let mut out = Vec::new();
        for (idx, (&ns, &count)) in self.compute_ns.iter().zip(&self.invocations).enumerate() {
            if count == 0 {
                continue;
            }
            let slot = idx / n;
            out.push(crate::metrics::AttributionRow {
                subgraph: self.sg_ids[idx % n],
                timestep: if slot == self.merge_slot {
                    u32::MAX
                } else {
                    slot as u32
                },
                compute_ns: ns,
                invocations: count,
            });
        }
        out
    }
}

/// Per-worker result shipped back to the driver.
///
/// Counter maps are `BTreeMap`s: they are iterated when assembling the
/// global [`JobResult`] and when encoding checkpoints, and `HashMap`
/// iteration order would leak hasher nondeterminism into both (lint rule
/// D01).
pub(crate) struct WorkerOutput {
    pub(crate) metrics: Vec<TimestepMetrics>,
    pub(crate) merge_metrics: TimestepMetrics,
    pub(crate) counters: Vec<BTreeMap<&'static str, u64>>,
    pub(crate) merge_counters: BTreeMap<&'static str, u64>,
    pub(crate) emits: Vec<Emit>,
    pub(crate) timesteps_run: usize,
    /// Final per-subgraph program state (see [`JobResult::final_states`]).
    pub(crate) final_states: Vec<(SubgraphId, Vec<u8>)>,
    /// Drained trace sinks (worker + provider), named for track metadata.
    pub(crate) sinks: Vec<(String, TraceSink)>,
    /// This worker's metrics shard, when the job ran with metrics enabled.
    pub(crate) shard: Option<Box<MetricsShard>>,
    /// This worker's attribution rows, when the job ran with attribution
    /// enabled. Already row-form (not the dense grid) so the TCP
    /// coordinator can substitute shipped snapshots without rebuilding a
    /// worker-shaped [`AttributionShard`].
    pub(crate) attr_rows: Vec<crate::metrics::AttributionRow>,
}

/// True when a panic payload is a *cascade* failure — a worker that died
/// only because a peer died first (poisoned barrier or closed channel).
/// The recovery loop prefers the primary panic when re-surfacing errors.
fn payload_is_cascade(payload: &(dyn std::any::Any + Send)) -> bool {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied());
    msg.is_some_and(|m| m.contains("a peer worker died"))
}

/// Run a TI-BSP job and gather its results and metrics.
///
/// `factory` builds one program instance per subgraph; program state
/// persists across supersteps and timesteps.
pub fn run_job<P, F>(
    pg: &Arc<PartitionedGraph>,
    source: &InstanceSource,
    factory: F,
    config: JobConfig<P::Msg>,
) -> JobResult
where
    P: SubgraphProgram,
    F: Fn(&tempograph_partition::Subgraph, &PartitionedGraph) -> P + Send + Sync,
{
    let k = pg.num_partitions();
    let timesteps = effective_timesteps(&config, source.num_timesteps());

    let job_start = Clock::start();
    // Driver-side sink (its own track, after the k partition tracks) for
    // recovery markers.
    let mut driver_sink = config.trace.map(|tc| tc.sink(k as u32));
    // Each recovery consumes at least one one-shot panic event, so the
    // plan's panic count bounds the attempts a recoverable job can need;
    // anything beyond that is a real bug re-triggering deterministically.
    let max_recoveries = config.faults.as_ref().map_or(0, |f| f.panic_events());
    let mut recoveries = 0usize;
    let mut resume_from: Option<u64> = None;

    let mut outputs: Vec<WorkerOutput> = loop {
        let sync = SyncPoint::new(k);
        let mut txs: Vec<Sender<(BatchKind, Bytes)>> = Vec::with_capacity(k);
        let mut rxs: Vec<Option<Receiver<(BatchKind, Bytes)>>> = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(Some(rx));
        }

        type WorkerResult = Result<WorkerOutput, EngineError>;
        let results: Vec<std::thread::Result<WorkerResult>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(k);
            for (p, rx_slot) in rxs.iter_mut().enumerate() {
                let rx = rx_slot.take().expect("receiver unclaimed");
                let txs = txs.clone();
                let sync = &sync;
                let factory = &factory;
                let config = config.clone();
                let source = source.clone();
                handles.push(scope.spawn(move || {
                    // If this worker dies, poison the barrier so peers fail
                    // fast (as cascades) instead of deadlocking.
                    let _poison = PoisonOnPanic(sync);
                    let mut transport = InProcess::new(p as u16, rx, txs, sync);
                    let out = run_worker_body::<P, F>(
                        p as u16,
                        pg,
                        &source,
                        factory,
                        &config,
                        timesteps,
                        resume_from,
                        &mut transport,
                    );
                    if out.is_err() {
                        // An error return unwinds no stack, so the RAII
                        // guard won't fire — poison explicitly so peers
                        // blocked at a barrier fail fast as cascades.
                        sync.poison();
                    }
                    out
                }));
            }
            handles.into_iter().map(|h| h.join()).collect()
        });

        if results.iter().all(|r| matches!(r, Ok(Ok(_)))) {
            break results
                .into_iter()
                .map(|r| match r {
                    Ok(Ok(o)) => o,
                    _ => unreachable!("checked ok"),
                })
                .collect();
        }

        // A typed worker error (wire corruption) is deterministic: a restart
        // would re-decode the same bytes and fail again, so surface it now,
        // naming the partition.
        if let Some((p, e)) = results.iter().enumerate().find_map(|(p, r)| match r {
            Ok(Err(e)) => Some((p, e.clone())),
            _ => None,
        }) {
            panic!("worker for partition {p} failed: {e}");
        }

        // Recover only from *injected* deaths with checkpointing armed: a
        // real bug would deterministically re-trigger after restore, so
        // re-surface it instead of looping.
        let injected = results
            .iter()
            .any(|r| r.as_ref().err().is_some_and(|e| payload_is_injected(&**e)));
        if config.checkpoint.is_none() || !injected || recoveries >= max_recoveries {
            let (p, joined) = results
                .into_iter()
                .enumerate()
                .filter(|(_, r)| r.is_err())
                .min_by_key(|(p, r)| {
                    let cascade = r.as_ref().err().is_some_and(|e| payload_is_cascade(&**e));
                    (cascade, *p)
                })
                .expect("some worker failed");
            let _ = join_partition(p, joined);
            unreachable!("join_partition re-panics on Err");
        }

        recoveries += 1;
        resume_from = config
            .checkpoint
            .as_ref()
            .and_then(|ck| checkpoint::latest_valid::<P::Msg>(&ck.dir, k as u16));
        if let Some(sink) = &mut driver_sink {
            sink.instant(
                "recovery.attempt",
                Some(("resume_t", resume_from.unwrap_or(u64::MAX))),
            );
        }
    };
    let total_wall_ns = job_start.elapsed_ns();

    let trace = config.trace.map(|_| {
        let mut sinks: Vec<(String, TraceSink)> =
            outputs.iter_mut().flat_map(|o| o.sinks.drain(..)).collect();
        if let Some(sink) = driver_sink.take() {
            if !sink.events().is_empty() {
                sinks.push(("driver".to_string(), sink));
            }
        }
        Trace::from_sinks(sinks)
    });

    assemble_job_result(
        outputs,
        k,
        total_wall_ns,
        recoveries,
        trace,
        config.metrics,
        config.attribution,
    )
}

/// Resolve the configured [`TimestepMode`] against the stored instance
/// count and validate mode/pattern/checkpoint interactions. Shared by the
/// in-process driver and the TCP coordinator/workers, so both reject the
/// same misconfigurations and agree on the loop bound.
pub(crate) fn effective_timesteps<M>(config: &JobConfig<M>, available: usize) -> usize {
    let timesteps = match config.mode {
        TimestepMode::Fixed(n) => {
            assert!(
                n <= available,
                "job wants {n} timesteps but source stores {available}"
            );
            n
        }
        TimestepMode::WhileActive { max } => max.min(available),
    };
    if config.temporal_parallelism {
        assert!(
            config.pattern != Pattern::SequentiallyDependent,
            "temporal parallelism cannot apply to sequentially dependent jobs"
        );
        assert!(
            matches!(config.mode, TimestepMode::Fixed(_)),
            "temporal parallelism requires a fixed timestep range"
        );
    }
    if let Some(ck) = &config.checkpoint {
        assert!(
            !config.temporal_parallelism,
            "checkpointing requires the barriered timestep loop"
        );
        std::fs::create_dir_all(&ck.dir).expect("create checkpoint directory");
    }
    timesteps
}

/// One worker's whole life over an already-connected transport: provider
/// setup, program construction, optional checkpoint restore, then the
/// TI-BSP run. Shared by the in-process driver (one call per scoped
/// thread) and the TCP worker (one call per connected worker).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_worker_body<P, F>(
    partition: u16,
    pg: &Arc<PartitionedGraph>,
    source: &InstanceSource,
    factory: &F,
    config: &JobConfig<P::Msg>,
    timesteps: usize,
    resume_from: Option<u64>,
    transport: &mut dyn Transport,
) -> Result<WorkerOutput, EngineError>
where
    P: SubgraphProgram,
    F: Fn(&tempograph_partition::Subgraph, &PartitionedGraph) -> P,
{
    let mut provider = source.provider(pg, partition);
    if let Some(tc) = config.trace {
        // The loader records onto the worker's track; its spans nest
        // inside the compute spans that trigger the loads.
        provider.install_trace(tc.sink(partition as u32));
    }
    let mut worker = Worker::<P>::new(partition, pg, provider, transport, config, timesteps);
    worker.init_programs(factory);
    let start_t = match resume_from {
        Some(ct) => {
            worker.restore_from(ct);
            ct as usize + 1
        }
        None => 0,
    };
    worker.run(start_t, timesteps, config)
}

/// Fold per-worker outputs into the global [`JobResult`]. Shared by the
/// in-process driver and the TCP coordinator (which passes `trace: None` —
/// trace sinks are process-local and do not cross the wire).
pub(crate) fn assemble_job_result(
    mut outputs: Vec<WorkerOutput>,
    k: usize,
    total_wall_ns: u64,
    recoveries: usize,
    trace: Option<Trace>,
    metrics_enabled: bool,
    attribution_enabled: bool,
) -> JobResult {
    let timesteps_run = outputs[0].timesteps_run;
    debug_assert!(outputs.iter().all(|o| o.timesteps_run == timesteps_run));
    let mut metrics = vec![vec![TimestepMetrics::default(); k]; timesteps_run];
    for (p, o) in outputs.iter().enumerate() {
        for (t, m) in o.metrics.iter().enumerate() {
            metrics[t][p] = m.clone();
        }
    }
    let merge_metrics = outputs.iter().map(|o| o.merge_metrics.clone()).collect();

    let mut counters: BTreeMap<String, Vec<Vec<u64>>> = BTreeMap::new();
    for (p, o) in outputs.iter().enumerate() {
        for (t, per_t) in o.counters.iter().enumerate() {
            for (&name, &v) in per_t {
                let rows = counters
                    .entry(name.to_string())
                    .or_insert_with(|| vec![vec![0; k]; timesteps_run]);
                rows[t][p] += v;
            }
        }
    }
    let mut merge_counters: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for (p, o) in outputs.iter().enumerate() {
        for (&name, &v) in &o.merge_counters {
            merge_counters
                .entry(name.to_string())
                .or_insert_with(|| vec![0; k])[p] += v;
        }
    }

    let mut final_states: Vec<(SubgraphId, Vec<u8>)> = outputs
        .iter_mut()
        .flat_map(|o| o.final_states.drain(..))
        .collect();
    final_states.sort_by_key(|(sg, _)| *sg);

    // Fold the per-worker histogram shards (barrier-time shard merging is
    // associative and commutative, so worker order cannot matter). Shards
    // cover the final successful attempt; the restored pre-crash portion of
    // a recovered run lives in the counter aggregates added by
    // `JobResult::export_into` below.
    let registry_base = metrics_enabled.then(|| {
        let mut reg = tempograph_metrics::Registry::new();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for o in &outputs {
            if let Some(sh) = &o.shard {
                sh.fold_into(&mut reg);
                hits += sh.cache_hits;
                misses += sh.cache_misses;
            }
        }
        reg.gauge_set(
            "tempograph_gofs_cache_hit_rate",
            &[],
            tempograph_metrics::ratio_or_zero(hits, hits + misses),
        );
        reg
    });

    // Assemble the attribution table: concatenate worker rows (each
    // subgraph lives on exactly one partition, so rows cannot collide) and
    // sort by (subgraph, timestep) — merge rows (`u32::MAX`) sort last.
    let attribution = attribution_enabled.then(|| {
        let mut rows: Vec<crate::metrics::AttributionRow> = outputs
            .iter_mut()
            .flat_map(|o| o.attr_rows.drain(..))
            .collect();
        rows.sort_by_key(|r| (r.subgraph, r.timestep));
        crate::metrics::CostAttribution { rows }
    });

    let mut emitted: Vec<Emit> = outputs.into_iter().flat_map(|o| o.emits).collect();
    emitted.sort_by(|a, b| {
        (a.timestep, a.vertex)
            .cmp(&(b.timestep, b.vertex))
            .then(a.value.total_cmp(&b.value))
    });

    let mut result = JobResult {
        timesteps_run,
        metrics,
        merge_metrics,
        counters,
        merge_counters,
        emitted,
        total_wall_ns,
        recoveries,
        final_states,
        trace,
        attribution,
        registry: None,
    };
    if let Some(mut reg) = registry_base {
        result.export_into(&mut reg);
        result.registry = Some(reg);
    }
    result
}

/// Per-partition execution state.
struct Worker<'a, P: SubgraphProgram> {
    partition: u16,
    pg: &'a PartitionedGraph,
    sg_ids: Vec<SubgraphId>,
    index_of: HashMap<SubgraphId, usize>,
    programs: Vec<Option<P>>,
    provider: Box<dyn InstanceProvider>,
    /// Inter-partition batch exchange and barrier sync — the only surface
    /// the worker shares with its peers (see [`Transport`]).
    transport: &'a mut dyn Transport,

    /// Delivered inboxes, sorted by `(from, seq)`.
    inbox: Vec<Vec<Envelope<P::Msg>>>,
    /// Per-subgraph staged sorted runs for the *next superstep* (locals
    /// routed this superstep + decoded remote runs). Merged into `inbox`
    /// once per superstep by [`Worker::deliver_staged`].
    inbox_runs: Vec<Vec<Vec<Envelope<P::Msg>>>>,
    /// Per-subgraph staged sorted runs for the *next timestep*.
    next_runs: Vec<Vec<Vec<Envelope<P::Msg>>>>,
    merge_inbox: Vec<Vec<Envelope<P::Msg>>>,
    halted: Vec<bool>,
    voted_halt_ts: Vec<bool>,
    merge_seq: Vec<u32>,
    /// Persistent per-subgraph send-sequence counters (never reset for the
    /// life of the job), making `(from, seq)` globally unique — see
    /// [`Outbox::seq`].
    next_seq: Vec<u32>,
    memo: HashMap<SubgraphId, Arc<SubgraphInstance>>,
    /// Recycled frame buffers (see [`BufferPool`]).
    pool: BufferPool,
    combiner: Option<Arc<dyn Combiner<P::Msg>>>,
    /// Trace sink for this partition's track; inert when the job is
    /// untraced. Also the worker's clock: the same `tracer.now()` readings
    /// feed metric accumulation and span recording, so aggregates are
    /// exactly derivable from the trace.
    tracer: TraceSink,
    /// Metrics shard, boxed to keep the worker small when metrics are off
    /// (`None` ⇒ the hot path does no metrics work at all). Every duration
    /// recorded into it is a difference of the same `tracer.now()` readings
    /// the spans above consume — no second clock read per event.
    shard: Option<Box<MetricsShard>>,
    /// Compute-attribution grid, boxed and optional for the same reason as
    /// `shard` (`None` ⇒ no attribution work, no extra clock reads).
    attr: Option<Box<AttributionShard>>,
    /// Cumulative traffic totals, sampled as trace counters per timestep.
    /// Cumulative (not per-sample) so every trace counter series is
    /// monotonically non-decreasing — `Trace::validate` enforces this.
    cum_msgs_local: u64,
    cum_msgs_remote: u64,
    cum_bytes_remote: u64,
    cum_msgs_combined: u64,
    cum_checkpoint_bytes: u64,

    checkpoint: Option<CheckpointConfig>,
    faults: Option<Arc<FaultPlan>>,
    /// Current (timestep, superstep) coordinate, kept for the fault hooks
    /// on the send path (the merge phase runs at `timestep == timesteps`).
    cur_t: u64,
    cur_ss: u64,
    /// Restored from a checkpoint whose timestep loop had already ended
    /// (`WorkerCheckpoint::loop_done`): skip straight to the merge phase.
    loop_finished: bool,

    out: WorkerOutput,
    cur_counters: BTreeMap<&'static str, u64>,
    allow_next_timestep: bool,
}

impl<'a, P: SubgraphProgram> Worker<'a, P> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        partition: u16,
        pg: &'a PartitionedGraph,
        provider: Box<dyn InstanceProvider>,
        transport: &'a mut dyn Transport,
        config: &JobConfig<P::Msg>,
        timesteps: usize,
    ) -> Self {
        let sg_ids: Vec<SubgraphId> = pg.subgraphs_of_partition(partition).to_vec();
        let index_of = sg_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect::<HashMap<_, _>>();
        let n = sg_ids.len();
        let sg_ids_for_attr = sg_ids.clone();
        Worker {
            partition,
            pg,
            sg_ids,
            index_of,
            programs: Vec::new(),
            provider,
            transport,
            inbox: vec![Vec::new(); n],
            inbox_runs: vec![Vec::new(); n],
            next_runs: vec![Vec::new(); n],
            merge_inbox: vec![Vec::new(); n],
            halted: vec![false; n],
            voted_halt_ts: vec![false; n],
            merge_seq: vec![0; n],
            next_seq: vec![0; n],
            memo: HashMap::new(),
            pool: BufferPool::new(),
            combiner: config.combiner.clone(),
            tracer: config
                .trace
                .map(|tc| tc.sink(partition as u32))
                .unwrap_or_else(TraceSink::inert),
            shard: config.metrics.then(Box::default),
            attr: config
                .attribution
                .then(|| Box::new(AttributionShard::new(sg_ids_for_attr, timesteps))),
            cum_msgs_local: 0,
            cum_msgs_remote: 0,
            cum_bytes_remote: 0,
            cum_msgs_combined: 0,
            cum_checkpoint_bytes: 0,
            checkpoint: config.checkpoint.clone(),
            faults: config.faults.clone(),
            cur_t: 0,
            cur_ss: 0,
            loop_finished: false,
            out: WorkerOutput {
                metrics: Vec::new(),
                merge_metrics: TimestepMetrics::default(),
                counters: Vec::new(),
                merge_counters: BTreeMap::new(),
                emits: Vec::new(),
                timesteps_run: 0,
                final_states: Vec::new(),
                sinks: Vec::new(),
                shard: None,
                attr_rows: Vec::new(),
            },
            cur_counters: BTreeMap::new(),
            allow_next_timestep: config.pattern == Pattern::SequentiallyDependent,
        }
    }

    fn init_programs<F>(&mut self, factory: &F)
    where
        F: Fn(&tempograph_partition::Subgraph, &PartitionedGraph) -> P,
    {
        self.programs = self
            .sg_ids
            .iter()
            .map(|&id| Some(factory(self.pg.subgraph(id), self.pg)))
            .collect();
    }

    fn run(
        mut self,
        start_t: usize,
        timesteps: usize,
        config: &JobConfig<P::Msg>,
    ) -> Result<WorkerOutput, EngineError> {
        if config.temporal_parallelism {
            debug_assert_eq!(start_t, 0, "checkpointing excludes the temporal fast path");
            self.run_temporally_parallel(timesteps, config)?;
        } else if !self.loop_finished {
            self.run_timestep_loop(start_t, timesteps, config)?;
        }
        if config.pattern == Pattern::EventuallyDependent {
            self.run_merge(config)?;
        }
        // Capture final program states for the recovery-equivalence check.
        for i in 0..self.sg_ids.len() {
            let mut buf = BytesMut::new();
            self.programs[i]
                .as_ref()
                .expect("program present")
                .save_state(&mut buf);
            self.out.final_states.push((self.sg_ids[i], buf.to_vec()));
        }
        // Drain the trace sinks into the output. The provider's (GoFS
        // loader) sink shares this partition's track and is merged at
        // assembly.
        let tracer = std::mem::replace(&mut self.tracer, TraceSink::inert());
        self.out
            .sinks
            .push((format!("partition {}", self.partition), tracer));
        self.out.shard = self.shard.take();
        self.out.attr_rows = self.attr.take().map(|a| a.rows()).unwrap_or_default();
        if let Some(sink) = self.provider.take_trace() {
            self.out
                .sinks
                .push((format!("partition {} gofs", self.partition), sink));
        }
        Ok(self.out)
    }

    // ---- main timestep loop -------------------------------------------

    fn run_timestep_loop(
        &mut self,
        start_t: usize,
        timesteps: usize,
        config: &JobConfig<P::Msg>,
    ) -> Result<(), EngineError> {
        for t in start_t..timesteps {
            let ts0 = self.tracer.now();
            let mut m = TimestepMetrics::default();
            self.cur_counters = BTreeMap::new();
            self.memo.clear();
            self.halted.iter_mut().for_each(|h| *h = false);
            self.voted_halt_ts.iter_mut().for_each(|h| *h = false);

            // Messages from the previous timestep become this timestep's
            // superstep-0 inbox. Each staged run is (from, seq)-sorted, so
            // the k-way merge reproduces the canonical delivery order.
            for i in 0..self.inbox.len() {
                debug_assert!(
                    self.inbox[i].is_empty(),
                    "prior timestep consumed its inbox"
                );
                let runs = std::mem::take(&mut self.next_runs[i]);
                self.inbox[i] = merge_sorted_runs_traced(runs, &mut self.tracer);
            }
            if t == 0 {
                // Initial messages self-address (from == to) with ascending
                // seq, so each inbox stays sorted without a sort.
                for (i, (to, msg)) in config.initial_messages.iter().enumerate() {
                    if let Some(&idx) = self.index_of.get(to) {
                        self.inbox[idx].push(Envelope {
                            from: *to,
                            to: *to,
                            seq: i as u32,
                            payload: msg.clone(),
                        });
                    }
                }
            }

            let mut next_msgs_total = 0u64;
            let supersteps = self.run_bsp(
                t,
                timesteps,
                config,
                Phase::Compute,
                &mut m,
                &mut next_msgs_total,
            )?;
            m.supersteps = supersteps;

            // EndOfTimestep on every subgraph.
            let eot0 = self.tracer.now();
            let mut next_out: Vec<Envelope<P::Msg>> = Vec::new();
            for i in 0..self.sg_ids.len() {
                let mut outbox = Outbox::new(
                    false,
                    self.allow_next_timestep,
                    self.merge_seq[i],
                    self.next_seq[i],
                );
                let a0 = if self.attr.is_some() {
                    self.tracer.now()
                } else {
                    0
                };
                self.invoke(
                    i,
                    t,
                    supersteps as usize,
                    timesteps,
                    Phase::EndOfTimestep,
                    &[],
                    &mut outbox,
                );
                if let Some(at) = self.attr.as_deref_mut() {
                    let a1 = self.tracer.now();
                    at.record(i, t, a1 - a0);
                }
                self.merge_seq[i] = outbox.merge_seq;
                self.next_seq[i] = outbox.seq;
                self.absorb_outbox(i, t, &mut outbox, &mut next_out, None);
                if outbox.voted_halt_timestep {
                    self.voted_halt_ts[i] = true;
                }
            }
            let eot1 = self.tracer.now();
            let eot_elapsed = eot1 - eot0;
            if let Some(sh) = self.shard.as_deref_mut() {
                sh.compute_ns.record(eot_elapsed);
            }
            m.compute_ns += eot_elapsed;
            // EndOfTimestep is barriered like a superstep; record it so the
            // virtual-makespan model accounts for its skew too.
            m.superstep_compute_ns.push(eot_elapsed);
            self.tracer.span_at("end_of_timestep", eot0, eot1);

            // Route cross-timestep messages.
            let send0 = self.tracer.now();
            next_msgs_total += next_out.len() as u64;
            self.route(next_out, BatchKind::NextTimestep, &mut m)?;
            let send1 = self.tracer.now();
            if let Some(sh) = self.shard.as_deref_mut() {
                sh.send_ns.record(send1 - send0);
            }
            m.msg_ns += send1 - send0;
            self.tracer.span_at("send", send0, send1);

            // Timestep barrier + global while-loop decision.
            let wait0 = self.tracer.now();
            let agg = self.transport.arrive(Contribution {
                msgs_sent: next_msgs_total,
                all_halted: self.voted_halt_ts.iter().all(|&v| v),
            })?;
            let wait1 = self.tracer.now();
            if let Some(sh) = self.shard.as_deref_mut() {
                sh.barrier_wait_ns.record(wait1 - wait0);
            }
            m.sync_ns += wait1 - wait0;
            self.tracer.span_at("barrier.arrive", wait0, wait1);
            self.tracer.straggler_check(wait1 - wait0);
            let drain_span = self.tracer.start();
            self.drain()?;
            self.tracer.span_since("drain", drain_span);
            // Late-arrival barrier: nobody starts the next timestep until
            // every worker has drained this one's traffic.
            let wait2 = self.tracer.now();
            self.transport.barrier()?;
            let wait3 = self.tracer.now();
            if let Some(sh) = self.shard.as_deref_mut() {
                sh.barrier_wait_ns.record(wait3 - wait2);
            }
            m.sync_ns += wait3 - wait2;
            self.tracer.span_at("barrier.post", wait2, wait3);

            let io = self.provider.take_io_stats();
            if let Some(sh) = self.shard.as_deref_mut() {
                sh.cache_hits += io.cache_hits;
                sh.cache_misses += io.cache_misses;
                sh.cache_evictions += io.cache_evictions;
                sh.bytes_read += io.bytes;
            }
            m.io_ns += io.ns;
            m.slice_loads += io.loads;
            self.sample_traffic_counters(&m);
            let ts1 = self.tracer.now();
            m.wall_ns = ts1 - ts0;
            self.tracer.span_arg_at("timestep", ts0, ts1, "t", t as u64);
            let round_sync_ns = m.sync_ns;
            self.out.metrics.push(m);
            self.out
                .counters
                .push(std::mem::take(&mut self.cur_counters));
            self.out.timesteps_run = t + 1;

            // Ship this round's observability snapshot to the coordinator.
            // Only the TCP transport wants these; the in-process path (and
            // a TCP run with observability disabled) pays one virtual call
            // and a branch — no allocation, no frame.
            if self.transport.wants_telemetry() {
                self.transport.telemetry(TelemetryFlush {
                    timestep: t as u32,
                    supersteps,
                    barrier_wait_ns: round_sync_ns,
                    final_flush: false,
                    events: self.tracer.take_events(),
                    shard: self.shard.as_deref().cloned(),
                    attr_rows: self
                        .attr
                        .as_deref()
                        .map(AttributionShard::rows)
                        .unwrap_or_default(),
                })?;
            }

            // Checkpoint decisions are pure functions of (t, config, agg),
            // so all workers take the same barriers in maybe_checkpoint.
            let stopping =
                matches!(config.mode, TimestepMode::WhileActive { .. }) && agg.should_stop();
            self.maybe_checkpoint(t, stopping || t + 1 == timesteps)?;
            if stopping {
                break;
            }
        }
        Ok(())
    }

    /// Run one BSP (compute or merge phase). Returns superstep count.
    fn run_bsp(
        &mut self,
        t: usize,
        timesteps: usize,
        config: &JobConfig<P::Msg>,
        phase: Phase,
        m: &mut TimestepMetrics,
        next_msgs_total: &mut u64,
    ) -> Result<u32, EngineError> {
        let mut ss: usize = 0;
        loop {
            self.cur_t = t as u64;
            self.cur_ss = ss as u64;
            if let Some(faults) = &self.faults {
                // Injected worker death at a (partition, timestep, superstep)
                // coordinate. The merge phase runs at t == timesteps, so
                // plans can target it too.
                if faults.should_panic(self.partition, t as u64, ss as u64) {
                    panic!("{}", injected_panic_message(self.partition, t, ss));
                }
            }
            let compute0 = self.tracer.now();
            let mut superstep_out: Vec<Envelope<P::Msg>> = Vec::new();
            let mut next_out: Vec<Envelope<P::Msg>> = Vec::new();
            let active: Vec<bool> = (0..self.sg_ids.len())
                .map(|i| ss == 0 || !self.halted[i] || !self.inbox[i].is_empty())
                .collect();
            if config.intra_partition_parallelism && active.iter().filter(|&&a| a).count() > 1 {
                let outboxes = self.compute_phase_parallel(t, ss, timesteps, phase, &active);
                for (i, mut outbox, attr_ns) in outboxes {
                    if let Some(at) = self.attr.as_deref_mut() {
                        let slot = if phase == Phase::Merge {
                            at.merge_slot
                        } else {
                            t
                        };
                        at.record(i, slot, attr_ns);
                    }
                    self.merge_seq[i] = outbox.merge_seq;
                    self.next_seq[i] = outbox.seq;
                    self.halted[i] = outbox.voted_halt;
                    if outbox.voted_halt_timestep {
                        self.voted_halt_ts[i] = true;
                    }
                    self.absorb_outbox(i, t, &mut outbox, &mut next_out, Some(&mut superstep_out));
                }
            } else {
                for (i, &is_active) in active.iter().enumerate() {
                    let msgs = std::mem::take(&mut self.inbox[i]);
                    if !is_active {
                        continue;
                    }
                    self.halted[i] = false;
                    let mut outbox = Outbox::new(
                        true,
                        self.allow_next_timestep && phase == Phase::Compute,
                        self.merge_seq[i],
                        self.next_seq[i],
                    );
                    // Attribution reads the clock only when armed; both
                    // readings come from the same `tracer.now()` source the
                    // enclosing compute span uses.
                    let a0 = if self.attr.is_some() {
                        self.tracer.now()
                    } else {
                        0
                    };
                    self.invoke(i, t, ss, timesteps, phase, &msgs, &mut outbox);
                    if let Some(at) = self.attr.as_deref_mut() {
                        let a1 = self.tracer.now();
                        let slot = if phase == Phase::Merge {
                            at.merge_slot
                        } else {
                            t
                        };
                        at.record(i, slot, a1 - a0);
                    }
                    self.merge_seq[i] = outbox.merge_seq;
                    self.next_seq[i] = outbox.seq;
                    if outbox.voted_halt {
                        self.halted[i] = true;
                    }
                    if outbox.voted_halt_timestep {
                        self.voted_halt_ts[i] = true;
                    }
                    self.absorb_outbox(i, t, &mut outbox, &mut next_out, Some(&mut superstep_out));
                }
            }
            let compute1 = self.tracer.now();
            let compute_elapsed = compute1 - compute0;
            if let Some(sh) = self.shard.as_deref_mut() {
                sh.compute_ns.record(compute_elapsed);
            }
            m.compute_ns += compute_elapsed;
            m.superstep_compute_ns.push(compute_elapsed);
            self.tracer
                .span_arg_at("compute", compute0, compute1, "superstep", ss as u64);

            let send0 = self.tracer.now();
            let sent = superstep_out.len() as u64;
            *next_msgs_total += next_out.len() as u64;
            self.route(superstep_out, BatchKind::Superstep, m)?;
            self.route(next_out, BatchKind::NextTimestep, m)?;
            let send1 = self.tracer.now();
            if let Some(sh) = self.shard.as_deref_mut() {
                sh.send_ns.record(send1 - send0);
            }
            m.msg_ns += send1 - send0;
            self.tracer.span_at("send", send0, send1);

            let wait0 = self.tracer.now();
            let agg = self.transport.arrive(Contribution {
                msgs_sent: sent,
                all_halted: self.halted.iter().all(|&h| h),
            })?;
            let wait1 = self.tracer.now();
            if let Some(sh) = self.shard.as_deref_mut() {
                sh.barrier_wait_ns.record(wait1 - wait0);
            }
            m.sync_ns += wait1 - wait0;
            self.tracer.span_at("barrier.arrive", wait0, wait1);
            self.tracer.straggler_check(wait1 - wait0);

            let drain_span = self.tracer.start();
            self.drain()?;
            self.deliver_staged();
            self.tracer.span_since("drain", drain_span);
            // Second rendezvous: a fast worker must not start the next
            // superstep (and send new batches) before every worker finished
            // draining this one — otherwise a batch from superstep s+1
            // could sneak into a slow worker's superstep-s drain.
            let wait2 = self.tracer.now();
            self.transport.barrier()?;
            let wait3 = self.tracer.now();
            if let Some(sh) = self.shard.as_deref_mut() {
                sh.barrier_wait_ns.record(wait3 - wait2);
            }
            m.sync_ns += wait3 - wait2;
            self.tracer.span_at("barrier.post", wait2, wait3);
            self.tracer
                .span_arg_at("superstep", compute0, wait3, "superstep", ss as u64);
            ss += 1;
            if agg.should_stop() || ss >= config.max_supersteps {
                return Ok(ss as u32);
            }
        }
    }

    /// Parallel compute phase: prefetch instances for active subgraphs,
    ///
    /// (See [`WorkItem`] for the shape of a queued unit of work.)
    /// then run their programs concurrently on scoped threads pulling from
    /// a shared work queue. Returns per-index outboxes in subgraph order
    /// (deterministic merge), each with the invocation's measured compute
    /// nanoseconds (0 when attribution is disarmed — no clock reads).
    fn compute_phase_parallel(
        &mut self,
        t: usize,
        ss: usize,
        timesteps: usize,
        phase: Phase,
        active: &[bool],
    ) -> Vec<(usize, Outbox<P::Msg>, u64)> {
        let k = self.transport.num_partitions();
        // Eager prefetch (sequential: the provider owns the disk handle).
        if phase != Phase::Merge {
            for (i, &is_active) in active.iter().enumerate() {
                if is_active {
                    let sg = self.pg.subgraph(self.sg_ids[i]);
                    let provider = &mut self.provider;
                    self.memo
                        .entry(sg.id())
                        .or_insert_with(|| provider.fetch(sg, t));
                }
            }
        }

        let taken: Vec<Vec<Envelope<P::Msg>>> = self.inbox.iter_mut().map(std::mem::take).collect();
        let partition = self.partition as usize;
        let pg = self.pg;
        let sg_ids = &self.sg_ids;
        let memo = &self.memo;
        let start_time = self.provider.start_time();
        let period = self.provider.period();
        let allow_next = self.allow_next_timestep && phase == Phase::Compute;
        let merge_seq = &self.merge_seq;
        let next_seq = &self.next_seq;
        // Shared immutable clock for the pool threads: attribution reads
        // the same `TraceSink::now` epoch the worker's spans use, and only
        // when armed.
        let attr_armed = self.attr.is_some();
        let clock = &self.tracer;

        let run_one = |i: usize,
                       program_slot: &mut Option<P>,
                       msgs: Vec<Envelope<P::Msg>>|
         -> (usize, Outbox<P::Msg>, u64) {
            let a0 = if attr_armed { clock.now() } else { 0 };
            let sg = pg.subgraph(sg_ids[i]);
            let mut outbox = Outbox::new(true, allow_next, merge_seq[i], next_seq[i]);
            let mut fetch =
                |sg: &tempograph_partition::Subgraph, _t: usize| -> Arc<SubgraphInstance> {
                    memo.get(&sg.id())
                        .expect("active subgraphs are prefetched")
                        .clone()
                };
            let mut ctx = Context {
                sg,
                pg,
                phase,
                timestep: t,
                superstep: ss,
                num_timesteps: timesteps,
                start_time,
                period,
                instance: None,
                fetch: &mut fetch,
                out: &mut outbox,
            };
            let program = program_slot.as_mut().expect("program present");
            match phase {
                Phase::Compute => program.compute(&mut ctx, &msgs),
                Phase::EndOfTimestep => program.end_of_timestep(&mut ctx),
                Phase::Merge => program.merge(&mut ctx, &msgs),
            }
            drop(ctx);
            let attr_ns = if attr_armed { clock.now() - a0 } else { 0 };
            (i, outbox, attr_ns)
        };

        // One work item per active subgraph, served lowest-index first.
        let mut work: Vec<WorkItem<'_, P>> = self
            .programs
            .iter_mut()
            .zip(taken)
            .enumerate()
            .filter(|(i, _)| active[*i])
            .map(|(i, (slot, msgs))| (i, slot, msgs))
            .collect();
        work.reverse();

        // Each of the k partition workers runs its own compute pool; divide
        // the host's cores among them to avoid oversubscription.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let n_threads = (cores / k.max(1)).max(1).min(work.len());

        let mut results: Vec<(usize, Outbox<P::Msg>, u64)> = if n_threads <= 1 {
            work.into_iter()
                .rev()
                .map(|(i, slot, msgs)| run_one(i, slot, msgs))
                .collect()
        } else {
            let queue = parking_lot::Mutex::new(work);
            std::thread::scope(|scope| {
                let queue = &queue;
                let run_one = &run_one;
                let handles: Vec<_> = (0..n_threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let item = queue.lock().pop();
                                match item {
                                    Some((i, slot, msgs)) => local.push(run_one(i, slot, msgs)),
                                    None => break,
                                }
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| join_partition(partition, h.join()))
                    .collect()
            })
        };
        results.sort_by_key(|(i, _, _)| *i);
        results
    }

    // ---- merge phase ----------------------------------------------------

    fn run_merge(&mut self, config: &JobConfig<P::Msg>) -> Result<(), EngineError> {
        let timesteps = self.out.timesteps_run;
        // Merge superstep-0 inbox: the accumulated SendMessageToMerge
        // traffic, already per-subgraph and chronologically ordered by seq.
        let n = self.sg_ids.len();
        self.inbox = std::mem::replace(&mut self.merge_inbox, vec![Vec::new(); n]);
        self.halted.iter_mut().for_each(|h| *h = false);
        for list in &mut self.inbox {
            sort_envelopes(list);
        }
        let mut m = TimestepMetrics::default();
        self.cur_counters = BTreeMap::new();
        let wall0 = self.tracer.now();
        let mut ignored = 0u64;
        let supersteps = self.run_bsp(
            timesteps,
            timesteps,
            config,
            Phase::Merge,
            &mut m,
            &mut ignored,
        )?;
        m.supersteps = supersteps;
        self.sample_traffic_counters(&m);
        let wall1 = self.tracer.now();
        m.wall_ns = wall1 - wall0;
        self.tracer.span_at("merge_phase", wall0, wall1);
        self.out.merge_metrics = m;
        self.out.merge_counters = std::mem::take(&mut self.cur_counters);
        Ok(())
    }

    // ---- temporal-parallelism fast path ---------------------------------

    fn run_temporally_parallel(
        &mut self,
        timesteps: usize,
        _config: &JobConfig<P::Msg>,
    ) -> Result<(), EngineError> {
        // No per-timestep barriers: each worker streams through all
        // (subgraph, timestep) pairs. Valid only for programs whose compute
        // never uses superstep messaging (Context enforces this).
        let mut per_t = vec![TimestepMetrics::default(); timesteps];
        let mut per_t_counters: Vec<BTreeMap<&'static str, u64>> = vec![BTreeMap::new(); timesteps];
        let wall = Clock::start();
        for i in 0..self.sg_ids.len() {
            for t in 0..timesteps {
                self.memo.clear();
                let c0 = self.tracer.now();
                let mut outbox = Outbox::new(false, false, self.merge_seq[i], self.next_seq[i]);
                self.invoke(i, t, 0, timesteps, Phase::Compute, &[], &mut outbox);
                self.merge_seq[i] = outbox.merge_seq;
                self.next_seq[i] = outbox.seq;
                let mut none = Vec::new();
                self.cur_counters = std::mem::take(&mut per_t_counters[t]);
                self.absorb_outbox(i, t, &mut outbox, &mut none, None);
                debug_assert!(none.is_empty());

                let mut outbox = Outbox::new(false, false, self.merge_seq[i], self.next_seq[i]);
                self.invoke(i, t, 1, timesteps, Phase::EndOfTimestep, &[], &mut outbox);
                self.merge_seq[i] = outbox.merge_seq;
                self.next_seq[i] = outbox.seq;
                self.absorb_outbox(i, t, &mut outbox, &mut none, None);
                per_t_counters[t] = std::mem::take(&mut self.cur_counters);
                let c1 = self.tracer.now();
                if let Some(sh) = self.shard.as_deref_mut() {
                    sh.compute_ns.record(c1 - c0);
                }
                if let Some(at) = self.attr.as_deref_mut() {
                    // One cell covers the fused compute+end-of-timestep
                    // pair this fast path runs per (subgraph, timestep);
                    // reuses the readings above (no extra clock reads).
                    at.record(i, t, c1 - c0);
                }
                per_t[t].compute_ns += c1 - c0;
                self.tracer.span_arg_at("compute", c0, c1, "t", t as u64);
                per_t[t].supersteps = 1;
            }
        }
        let io = self.provider.take_io_stats();
        if let Some(sh) = self.shard.as_deref_mut() {
            sh.cache_hits += io.cache_hits;
            sh.cache_misses += io.cache_misses;
            sh.cache_evictions += io.cache_evictions;
            sh.bytes_read += io.bytes;
        }
        if let Some(first) = per_t.first_mut() {
            first.io_ns = io.ns;
            first.slice_loads = io.loads;
        }
        // Wall time is not separable per timestep in this mode; assign the
        // total to the aggregate and split evenly for plotting.
        let total_wall = wall.elapsed_ns();
        let share = total_wall / timesteps.max(1) as u64;
        for mt in &mut per_t {
            mt.wall_ns = share;
        }
        self.out.metrics = per_t;
        self.out.counters = per_t_counters;
        self.out.timesteps_run = timesteps;
        self.transport.barrier()
    }

    // ---- plumbing -------------------------------------------------------

    /// Call one program hook with a fresh context.
    #[allow(clippy::too_many_arguments)]
    fn invoke(
        &mut self,
        i: usize,
        timestep: usize,
        superstep: usize,
        timesteps: usize,
        phase: Phase,
        msgs: &[Envelope<P::Msg>],
        outbox: &mut Outbox<P::Msg>,
    ) {
        let mut program = self.programs[i].take().expect("program present");
        let sg = self.pg.subgraph(self.sg_ids[i]);
        let pg = self.pg;
        let start_time = self.provider.start_time();
        let period = self.provider.period();
        let provider = &mut self.provider;
        let memo = &mut self.memo;
        let mut fetch = |sg: &tempograph_partition::Subgraph, t: usize| -> Arc<SubgraphInstance> {
            memo.entry(sg.id())
                .or_insert_with(|| provider.fetch(sg, t))
                .clone()
        };
        let mut ctx = Context {
            sg,
            pg,
            phase,
            timestep,
            superstep,
            num_timesteps: timesteps,
            start_time,
            period,
            instance: None,
            fetch: &mut fetch,
            out: outbox,
        };
        match phase {
            Phase::Compute => program.compute(&mut ctx, msgs),
            Phase::EndOfTimestep => program.end_of_timestep(&mut ctx),
            Phase::Merge => program.merge(&mut ctx, msgs),
        }
        drop(ctx);
        self.programs[i] = Some(program);
    }

    /// Pull counters/emits/merge messages out of an outbox; superstep and
    /// next-timestep messages are handed back for routing.
    fn absorb_outbox(
        &mut self,
        i: usize,
        timestep: usize,
        outbox: &mut Outbox<P::Msg>,
        next_out: &mut Vec<Envelope<P::Msg>>,
        superstep_out: Option<&mut Vec<Envelope<P::Msg>>>,
    ) {
        for (name, v) in outbox.counters.drain(..) {
            *self.cur_counters.entry(name).or_insert(0) += v;
        }
        let phase_timestep = timestep;
        for (vertex, value) in outbox.emits.drain(..) {
            self.out.emits.push(Emit {
                timestep: phase_timestep,
                vertex,
                value,
            });
        }
        self.merge_inbox[i].append(&mut outbox.merge_msgs);
        next_out.append(&mut outbox.next_timestep_msgs);
        if let Some(out) = superstep_out {
            out.append(&mut outbox.superstep_msgs);
        } else {
            debug_assert!(outbox.superstep_msgs.is_empty());
        }
    }

    /// Stage local messages as sorted runs; pack remote ones into one
    /// pooled [`MessageBatch`] frame per peer (one allocation-free encode
    /// and one channel send per (src, dst) pair and phase).
    ///
    /// `msgs` arrives (from, seq)-sorted — senders are drained in ascending
    /// subgraph order and each sender's seq only grows — so every
    /// per-destination bucket formed here is itself a sorted run.
    fn route(
        &mut self,
        mut msgs: Vec<Envelope<P::Msg>>,
        kind: BatchKind,
        m: &mut TimestepMetrics,
    ) -> Result<(), EngineError> {
        if msgs.is_empty() {
            return Ok(());
        }
        if let Some(combiner) = &self.combiner {
            let before = msgs.len();
            msgs = combine_envelopes(combiner.as_ref(), msgs);
            m.msgs_combined += (before - msgs.len()) as u64;
        }
        let mut local: MessageBatch<P::Msg> = MessageBatch::new();
        let mut remote: Vec<Option<MessageBatch<P::Msg>>> =
            (0..self.transport.num_partitions()).map(|_| None).collect();
        for e in msgs {
            let target_part = self.pg.subgraph(e.to).partition();
            if target_part == self.partition {
                m.msgs_local += 1;
                local.push(e);
            } else {
                m.msgs_remote += 1;
                remote[target_part as usize]
                    .get_or_insert_with(MessageBatch::new)
                    .push(e);
            }
        }
        for (to, run) in local.into_runs() {
            let idx = self.index_of[&to];
            match kind {
                BatchKind::Superstep => self.inbox_runs[idx].push(run),
                BatchKind::NextTimestep => self.next_runs[idx].push(run),
            }
        }
        for (part, batch) in remote.into_iter().enumerate() {
            let Some(batch) = batch else { continue };
            let mut buf = self.pool.get();
            batch.encode_traced(&mut buf, &mut self.tracer);
            let bytes = buf.freeze();
            m.bytes_remote += bytes.len() as u64;
            m.batches_remote += 1;
            if self
                .faults
                .as_ref()
                .is_some_and(|f| f.should_fail_send(self.partition, self.cur_t, self.cur_ss))
            {
                // Transient loss: the first transmission is dropped and the
                // batch retried — one counter tick and one trace marker, no
                // behavioural change (delivery stays exactly-once).
                m.send_retries += 1;
                self.tracer
                    .instant("fault.send_retry", Some(("dest", part as u64)));
            }
            let retransmits = self.transport.send(part as u16, kind, bytes)?;
            if retransmits > 0 {
                // Injected frame loss the transport recovered from (see
                // [`crate::FrameFault`]) — same exactly-once accounting.
                m.send_retries += retransmits;
                self.tracer
                    .instant("fault.frame_retransmit", Some(("dest", part as u64)));
            }
        }
        Ok(())
    }

    /// Drain every queued frame into per-subgraph staged runs, recycling
    /// the frame allocations into this worker's pool. A frame that fails to
    /// decode surfaces as a typed error; the caller poisons the barrier and
    /// the driver names the failing partition.
    fn drain(&mut self) -> Result<(), EngineError> {
        for (kind, bytes) in self.transport.exchange()? {
            let mut bytes = bytes;
            for (to, run) in MessageBatch::<P::Msg>::decode(&mut bytes)? {
                let idx = self.index_of[&to];
                match kind {
                    BatchKind::Superstep => self.inbox_runs[idx].push(run),
                    BatchKind::NextTimestep => self.next_runs[idx].push(run),
                }
            }
            debug_assert_eq!(bytes.remaining(), 0);
            self.pool.reclaim(bytes);
        }
        Ok(())
    }

    /// Merge each subgraph's staged superstep runs into its inbox — the
    /// O(n) replacement for the old concatenate-and-stable-sort delivery,
    /// yielding the identical (from, seq) order.
    fn deliver_staged(&mut self) {
        for i in 0..self.inbox.len() {
            debug_assert!(self.inbox[i].is_empty(), "compute consumed the inbox");
            let runs = std::mem::take(&mut self.inbox_runs[i]);
            self.inbox[i] = merge_sorted_runs_traced(runs, &mut self.tracer);
        }
    }

    // ---- checkpoint / recovery -----------------------------------------

    /// Write this worker's checkpoint for timestep `t` when one is due, and
    /// rendezvous around partition 0's manifest commit. `last` marks the
    /// final executed timestep (configured end or a `WhileActive` stop
    /// vote), which always checkpoints so a merge-phase crash can resume
    /// without re-running the loop. Runs *after* the timestep's metrics are
    /// finalised, so checkpoint cost never pollutes `TimestepMetrics`.
    fn maybe_checkpoint(&mut self, t: usize, last: bool) -> Result<(), EngineError> {
        let Some(ck) = self.checkpoint.clone() else {
            return Ok(());
        };
        if ck.every == usize::MAX || !(ck.due_at(t) || last) {
            return Ok(());
        }
        let ck0 = self.tracer.now();
        let snapshot = self.build_checkpoint(t as u64, last);
        let data = snapshot.encode();
        let path = checkpoint_path(&ck.dir, t as u64, self.partition);
        if self
            .faults
            .as_ref()
            .is_some_and(|f| f.should_panic_in_checkpoint(self.partition, t as u64))
        {
            // Torn write: stage half the frame, then die before the rename.
            // Recovery must only ever see the `.tmp` leftover.
            std::fs::write(tmp_sibling(&path), &data[..data.len() / 2])
                .expect("write staging file");
            panic!("{}", injected_panic_message(self.partition, t, usize::MAX));
        }
        write_atomic(&path, &data).map_err(|e| EngineError::Checkpoint {
            context: format!("writing checkpoint for timestep {t}"),
            detail: e.to_string(),
        })?;
        let ck1 = self.tracer.now();
        if let Some(sh) = self.shard.as_deref_mut() {
            sh.checkpoint_write_ns.record(ck1 - ck0);
        }
        self.tracer
            .span_arg_at("checkpoint.write", ck0, ck1, "t", t as u64);
        self.cum_checkpoint_bytes += data.len() as u64;
        self.tracer
            .counter("checkpoint.bytes", self.cum_checkpoint_bytes);
        // Every partition file must be in place before the single commit
        // point, and the commit must land before anyone moves on.
        self.transport.barrier()?;
        if self.partition == 0 {
            commit_manifest(&ck.dir, t as u64).map_err(|e| EngineError::Checkpoint {
                context: format!("committing manifest for timestep {t}"),
                detail: e.to_string(),
            })?;
        }
        self.transport.barrier()
    }

    /// Snapshot everything this worker needs to resume after timestep `t`.
    fn build_checkpoint(&mut self, t: u64, loop_done: bool) -> WorkerCheckpoint<P::Msg> {
        let mut subgraphs = Vec::with_capacity(self.sg_ids.len());
        for i in 0..self.sg_ids.len() {
            // Collapse the staged next-timestep runs into the canonical
            // sorted order, then put the merged run back as the sole run —
            // the k-way merge is associative, so delivery is unchanged.
            let runs = std::mem::take(&mut self.next_runs[i]);
            let merged = merge_sorted_runs(runs);
            let mut state = BytesMut::new();
            self.programs[i]
                .as_ref()
                .expect("program present")
                .save_state(&mut state);
            subgraphs.push((
                self.sg_ids[i],
                SubgraphCheckpoint {
                    state: state.to_vec(),
                    next_seq: self.next_seq[i],
                    merge_seq: self.merge_seq[i],
                    next_inbox: merged.clone(),
                    merge_inbox: self.merge_inbox[i].clone(),
                },
            ));
            if !merged.is_empty() {
                self.next_runs[i].push(merged);
            }
        }
        WorkerCheckpoint {
            partition: self.partition,
            timestep: t,
            loop_done,
            subgraphs,
            metrics: self.out.metrics.clone(),
            counters: self
                .out
                .counters
                .iter()
                // BTreeMap iteration is already name-sorted — the encoded
                // rows are canonical without an explicit sort.
                .map(|row| row.iter().map(|(&n, &val)| (n.to_string(), val)).collect())
                .collect(),
            emits: self.out.emits.clone(),
        }
    }

    /// Load the (driver-validated) checkpoint of timestep `ct` and rebuild
    /// all resume state: program state, inboxes, sequence counters, and the
    /// metrics/counters/emits accumulated before the crash.
    fn restore_from(&mut self, ct: u64) {
        let ck = self
            .checkpoint
            .clone()
            .expect("restore requires checkpoint config");
        let r0 = self.tracer.now();
        let data = std::fs::read(checkpoint_path(&ck.dir, ct, self.partition))
            .expect("validated checkpoint readable");
        let snapshot =
            WorkerCheckpoint::<P::Msg>::decode(&data).expect("validated checkpoint decodes");
        assert_eq!(snapshot.partition, self.partition, "checkpoint misfiled");
        assert_eq!(snapshot.timestep, ct, "checkpoint misfiled");
        assert_eq!(
            snapshot.subgraphs.len(),
            self.sg_ids.len(),
            "subgraph set changed under the checkpoint directory"
        );
        for (i, (sg, sub)) in snapshot.subgraphs.into_iter().enumerate() {
            assert_eq!(sg, self.sg_ids[i], "subgraph order changed");
            let mut state = Bytes::from(sub.state);
            self.programs[i]
                .as_mut()
                .expect("program present")
                .restore_state(&mut state);
            self.next_seq[i] = sub.next_seq;
            self.merge_seq[i] = sub.merge_seq;
            self.next_runs[i] = if sub.next_inbox.is_empty() {
                Vec::new()
            } else {
                vec![sub.next_inbox]
            };
            self.merge_inbox[i] = sub.merge_inbox;
        }
        self.loop_finished = snapshot.loop_done;
        self.out.metrics = snapshot.metrics;
        self.out.counters = snapshot
            .counters
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(name, v)| (checkpoint::intern(&name), v))
                    .collect()
            })
            .collect();
        self.out.emits = snapshot.emits;
        self.out.timesteps_run = ct as usize + 1;
        // Resume the cumulative trace-counter series where it left off.
        self.cum_msgs_local = self.out.metrics.iter().map(|m| m.msgs_local).sum();
        self.cum_msgs_remote = self.out.metrics.iter().map(|m| m.msgs_remote).sum();
        self.cum_bytes_remote = self.out.metrics.iter().map(|m| m.bytes_remote).sum();
        self.cum_msgs_combined = self.out.metrics.iter().map(|m| m.msgs_combined).sum();
        let r1 = self.tracer.now();
        if let Some(sh) = self.shard.as_deref_mut() {
            sh.recovery_restore_ns.record(r1 - r0);
        }
        self.tracer.span_arg_at("recovery.restore", r0, r1, "t", ct);
    }

    /// Sample cumulative traffic totals as trace counters (one sample per
    /// timestep keeps the event volume O(timesteps), not O(messages)).
    fn sample_traffic_counters(&mut self, m: &TimestepMetrics) {
        self.cum_msgs_local += m.msgs_local;
        self.cum_msgs_remote += m.msgs_remote;
        self.cum_bytes_remote += m.bytes_remote;
        self.cum_msgs_combined += m.msgs_combined;
        self.tracer.counter("msgs.local", self.cum_msgs_local);
        self.tracer.counter("msgs.remote", self.cum_msgs_remote);
        self.tracer.counter("bytes.remote", self.cum_bytes_remote);
        self.tracer.counter("msgs.combined", self.cum_msgs_combined);
    }
}
