//! The TI-BSP user programming surface (paper §II.D "User Logic").
//!
//! A [`SubgraphProgram`] is instantiated once per subgraph and lives for the
//! whole TI-BSP application — its fields are the subgraph's persistent state
//! across supersteps *and* timesteps (e.g. TDSP's frontier set `F`, MEME's
//! coloured set `C*`). The engine invokes:
//!
//! * [`SubgraphProgram::compute`] — every superstep of every timestep the
//!   subgraph is active, mirroring `Compute(Subgraph, timestep, superstep,
//!   Message[])`;
//! * [`SubgraphProgram::end_of_timestep`] — once per timestep after the BSP
//!   converges, mirroring `EndOfTimestep(Subgraph, timestep)`;
//! * [`SubgraphProgram::merge`] — the eventually-dependent pattern's
//!   post-timesteps Merge BSP, mirroring `Merge(SubgraphTemplate, superstep,
//!   Message[])`.
//!
//! All messaging and voting goes through the [`Context`], which exposes the
//! paper's primitives: `SendToSubgraph`, `SendToNextTimestep`,
//! `SendToSubgraphInNextTimestep`, `SendMessageToMerge`, `VoteToHalt`,
//! `VoteToHaltTimestep`.

use crate::wire::{Envelope, WireMsg};
use std::sync::Arc;
use tempograph_core::VertexIdx;
use tempograph_gofs::SubgraphInstance;
use tempograph_partition::{PartitionedGraph, Subgraph, SubgraphId};

/// Which engine phase a [`Context`] belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Inside `Compute` during a timestep's BSP.
    Compute,
    /// Inside `EndOfTimestep`.
    EndOfTimestep,
    /// Inside the Merge BSP (no instance data available).
    Merge,
}

/// Message buffers and votes collected from one program invocation.
#[derive(Debug)]
pub(crate) struct Outbox<M> {
    pub superstep_msgs: Vec<Envelope<M>>,
    pub next_timestep_msgs: Vec<Envelope<M>>,
    pub merge_msgs: Vec<Envelope<M>>,
    pub voted_halt: bool,
    pub voted_halt_timestep: bool,
    pub counters: Vec<(&'static str, u64)>,
    pub emits: Vec<(VertexIdx, f64)>,
    /// Next sequence number for superstep/next-timestep sends. Seeded from
    /// the worker's persistent per-subgraph counter and written back after
    /// every invocation, so `(from, seq)` is unique for the whole job — a
    /// prerequisite for the unstable sort / k-way merge on the receive path.
    pub seq: u32,
    pub merge_seq: u32,
    /// False in the temporal-parallelism fast path, where per-superstep
    /// messaging is structurally impossible.
    pub allow_superstep_msgs: bool,
    /// False for independent/eventually-dependent patterns, which must not
    /// couple timesteps.
    pub allow_next_timestep_msgs: bool,
}

impl<M> Outbox<M> {
    pub(crate) fn new(allow_superstep: bool, allow_next: bool, merge_seq: u32, seq: u32) -> Self {
        Outbox {
            superstep_msgs: Vec::new(),
            next_timestep_msgs: Vec::new(),
            merge_msgs: Vec::new(),
            voted_halt: false,
            voted_halt_timestep: false,
            counters: Vec::new(),
            emits: Vec::new(),
            seq,
            merge_seq,
            allow_superstep_msgs: allow_superstep,
            allow_next_timestep_msgs: allow_next,
        }
    }
}

/// Execution context handed to every program invocation. Provides the
/// paper's messaging/termination primitives plus read access to the
/// subgraph topology and (lazily loaded) instance data.
pub struct Context<'a, M: WireMsg> {
    pub(crate) sg: &'a Subgraph,
    pub(crate) pg: &'a PartitionedGraph,
    pub(crate) phase: Phase,
    pub(crate) timestep: usize,
    pub(crate) superstep: usize,
    pub(crate) num_timesteps: usize,
    pub(crate) start_time: i64,
    pub(crate) period: i64,
    pub(crate) instance: Option<Arc<SubgraphInstance>>,
    pub(crate) fetch: &'a mut dyn FnMut(&Subgraph, usize) -> Arc<SubgraphInstance>,
    pub(crate) out: &'a mut Outbox<M>,
}

impl<'a, M: WireMsg> Context<'a, M> {
    /// The subgraph this invocation operates on.
    pub fn subgraph(&self) -> &Subgraph {
        self.sg
    }

    /// The whole partitioned view (topology of all subgraphs).
    pub fn partitioned_graph(&self) -> &PartitionedGraph {
        self.pg
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Timestep index (graph instance index relative to the first).
    pub fn timestep(&self) -> usize {
        self.timestep
    }

    /// Superstep number inside the current BSP (0-based; 0 means "start of
    /// a timestep" — messages at superstep 0 of a sequentially dependent
    /// timestep arrived from the previous instance).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// Number of timesteps the job will run (the configured range).
    pub fn num_timesteps(&self) -> usize {
        self.num_timesteps
    }

    /// `t0` of the series.
    pub fn start_time(&self) -> i64 {
        self.start_time
    }

    /// `δ`: the period between instances (TDSP's idling quantum).
    pub fn period(&self) -> i64 {
        self.period
    }

    /// This timestep's instance data, loaded lazily on first access —
    /// subgraphs that never touch their instance (e.g. an inactive TDSP
    /// region) cause no disk I/O, reproducing GoFS's delayed loading.
    ///
    /// # Panics
    /// Panics when called during [`Phase::Merge`] (merge operates on the
    /// subgraph *template*; there is no instance).
    pub fn instance(&mut self) -> Arc<SubgraphInstance> {
        assert!(
            self.phase != Phase::Merge,
            "Merge has no instance data (it operates on the subgraph template)"
        );
        if self.instance.is_none() {
            self.instance = Some((self.fetch)(self.sg, self.timestep));
        }
        self.instance.as_ref().expect("just set").clone()
    }

    /// Send a message to another subgraph, delivered next superstep
    /// (`SendToSubgraph`). During Merge this messages the subgraph's next
    /// merge superstep.
    pub fn send_to_subgraph(&mut self, to: SubgraphId, msg: M) {
        assert!(
            self.out.allow_superstep_msgs,
            "superstep messaging is unavailable here: EndOfTimestep may only send \
             cross-timestep/merge messages, and the temporal-parallelism fast path \
             has no supersteps"
        );
        let seq = self.out.seq;
        self.out.seq += 1;
        self.out.superstep_msgs.push(Envelope {
            from: self.sg.id(),
            to,
            seq,
            payload: msg,
        });
    }

    /// Pass a message to the *same* subgraph at the start of the next
    /// timestep (`SendToNextTimestep`) — the temporal edge of §II.B.
    pub fn send_to_next_timestep(&mut self, msg: M) {
        self.send_to_subgraph_in_next_timestep(self.sg.id(), msg);
    }

    /// Message an arbitrary subgraph in the next timestep
    /// (`SendToSubgraphInNextTimestep`): across space *and* time.
    pub fn send_to_subgraph_in_next_timestep(&mut self, to: SubgraphId, msg: M) {
        assert!(
            self.out.allow_next_timestep_msgs,
            "cross-timestep messages require the sequentially-dependent pattern"
        );
        assert!(
            self.phase != Phase::Merge,
            "no next timestep exists during Merge"
        );
        let seq = self.out.seq;
        self.out.seq += 1;
        self.out.next_timestep_msgs.push(Envelope {
            from: self.sg.id(),
            to,
            seq,
            payload: msg,
        });
    }

    /// Queue a message for this subgraph's `Merge` invocation
    /// (`SendMessageToMerge`), available after all timesteps complete.
    pub fn send_to_merge(&mut self, msg: M) {
        assert!(
            self.phase != Phase::Merge,
            "already in Merge; use send_to_subgraph"
        );
        let seq = self.out.merge_seq;
        self.out.merge_seq += 1;
        self.out.merge_msgs.push(Envelope {
            from: self.sg.id(),
            to: self.sg.id(),
            seq,
            payload: msg,
        });
    }

    /// Vote to end this BSP (`VoteToHalt`). The subgraph is reactivated by
    /// an incoming message or by the start of the next timestep.
    pub fn vote_to_halt(&mut self) {
        self.out.voted_halt = true;
    }

    /// Vote to end the whole TI-BSP timestep loop
    /// (`VoteToHaltTimestep`) — honoured in `WhileActive` mode once every
    /// subgraph votes and no cross-timestep messages remain.
    pub fn vote_to_halt_timestep(&mut self) {
        self.out.voted_halt_timestep = true;
    }

    /// Add to a named per-(timestep, partition) counter — e.g. the number
    /// of vertices finalized/coloured this timestep (Fig. 7a/7c).
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        self.out.counters.push((name, delta));
    }

    /// Emit a per-vertex result value (e.g. a TDSP arrival time). Collected
    /// into [`crate::JobResult::emitted`].
    pub fn emit(&mut self, vertex: VertexIdx, value: f64) {
        self.out.emits.push((vertex, value));
    }
}

/// The user-implemented TI-BSP program. See module docs.
pub trait SubgraphProgram: Send + 'static {
    /// Message type exchanged between subgraphs and across timesteps.
    type Msg: WireMsg;

    /// Per-superstep computation on one subgraph.
    fn compute(&mut self, ctx: &mut Context<'_, Self::Msg>, msgs: &[Envelope<Self::Msg>]);

    /// Invoked once per timestep after the BSP converges.
    fn end_of_timestep(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Merge-phase computation (eventually-dependent pattern only).
    fn merge(&mut self, _ctx: &mut Context<'_, Self::Msg>, _msgs: &[Envelope<Self::Msg>]) {}

    /// Serialise this program's persistent state into `buf` for a
    /// checkpoint. Must round-trip exactly with
    /// [`SubgraphProgram::restore_state`]: after `restore_state(save_state(p))`
    /// the program must behave identically to `p`. Programs whose fields
    /// are pure configuration (rebuilt by the factory) can keep the empty
    /// default; any field *mutated* during the run must be saved, or
    /// recovery will silently diverge — the recovery-equivalence harness
    /// catches this.
    fn save_state(&self, _buf: &mut bytes::BytesMut) {}

    /// Restore persistent state written by [`SubgraphProgram::save_state`].
    /// Called on a freshly factory-built program during recovery, before
    /// any compute invocation.
    fn restore_state(&mut self, _buf: &mut bytes::Bytes) {}
}
