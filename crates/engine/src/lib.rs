//! # tempograph-engine — the Temporally Iterative BSP (TI-BSP) runtime
//!
//! Implements the paper's core contribution (§II.C–D): a subgraph-centric
//! BSP engine extended with a temporal outer loop. Timesteps over graph
//! instances form the outer loop; barrier-synchronised supersteps over
//! subgraphs form the inner loop (the paper's Fig. 3). Three design
//! patterns — independent, eventually dependent, sequentially dependent —
//! govern how state moves between timesteps (§II.B).
//!
//! The "cluster" is simulated: one worker thread per partition plays one
//! GoFFish host, remote messages are genuinely serialised and shipped over
//! channels, and instance data is loaded lazily (from GoFS slice files or an
//! in-memory collection). Per-partition, per-timestep metrics record
//! compute time, partition overhead (marshalling), sync overhead (barrier
//! waits) and I/O — everything needed to regenerate the paper's Figures 6
//! and 7.
//!
//! ```no_run
//! use tempograph_engine::{run_job, JobConfig, InstanceSource, SubgraphProgram, Context, Envelope};
//!
//! struct CountVertices;
//! impl SubgraphProgram for CountVertices {
//!     type Msg = ();
//!     fn compute(&mut self, ctx: &mut Context<'_, ()>, _msgs: &[Envelope<()>]) {
//!         ctx.add_counter("vertices", ctx.subgraph().num_vertices() as u64);
//!         ctx.vote_to_halt();
//!     }
//! }
//! # fn demo(pg: std::sync::Arc<tempograph_partition::PartitionedGraph>, src: InstanceSource) {
//! let result = run_job(&pg, &src, |_, _| CountVertices, JobConfig::independent(10));
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod checkpoint;
pub mod error;
pub mod executor;
pub mod faults;
pub mod metrics;
pub mod net;
pub mod program;
pub mod provider;
pub mod sync;
pub mod transport;
pub mod wire;

pub use batch::{
    combine_envelopes, merge_sorted_runs, merge_sorted_runs_traced, BufferPool, Combiner,
    MessageBatch,
};
pub use checkpoint::{
    checkpoint_path, latest_valid, manifest_path, read_manifest, CheckpointConfig, Manifest,
    SubgraphCheckpoint, WorkerCheckpoint,
};
pub use error::{EngineError, WireError};
pub use executor::{run_job, JobConfig, Pattern, TimestepMode, DEFAULT_STRAGGLER_FACTOR};
pub use faults::{FaultPlan, FrameFault, INJECTED_FAULT_MARKER};
pub use metrics::{AttributionRow, CostAttribution, Emit, JobResult, TimestepMetrics};
pub use net::{Frame, FrameConn, FrameKind, StatusReplyMsg, TelemetryMsg, WorkerStatusWire};
pub use program::{Context, Phase, SubgraphProgram};
pub use provider::{GofsProvider, InstanceProvider, InstanceSource, IoStats, MemoryProvider};
pub use sync::{join_partition, Aggregate, Contribution, PoisonOnPanic, SyncPoint};
pub use tempograph_trace::{Trace, TraceConfig, TraceMode, TraceSink};
pub use transport::{
    query_status, run_job_tcp, run_tcp_worker, BatchKind, Cluster, InProcess, Tcp, Transport,
    INJECTED_EXIT_CODE,
};
pub use wire::{Envelope, WireMsg};
