//! The batched, pooled, combiner-aware inter-partition message path.
//!
//! The first engine revision shipped every [`Envelope`] as its own
//! 12-byte-headed record appended to a fresh per-peer buffer, and the
//! receiver restored determinism with one global stable sort per inbox.
//! This module replaces that path with three cooperating pieces:
//!
//! 1. **Framed batches** ([`MessageBatch`]): all envelopes a partition sends
//!    to one peer in one phase are packed into a single length-prefixed
//!    frame, grouped into per-destination *runs*. The destination id is
//!    written once per run instead of once per message (8 bytes of header
//!    per message instead of 12), and the whole frame costs one channel
//!    send and one allocation — or zero allocations once the pool is warm.
//! 2. **Buffer pooling** ([`BufferPool`]): encode buffers are recycled
//!    across supersteps via [`Bytes::try_into_mut`], so steady-state
//!    supersteps do not touch the allocator for messaging at all.
//! 3. **Combining** ([`Combiner`]): an optional Pregel-style sender-side
//!    reduction that folds same-destination, same-key messages before they
//!    are serialised (min for shortest-path relaxations, element-wise sum
//!    for counting aggregations).
//!
//! # Ordering invariants
//!
//! The engine delivers each subgraph's inbox sorted by `(from, seq)`, and
//! per-subgraph send counters are never reset, so `(from, seq)` is unique
//! for the life of a job. Every run produced by a single routing pass is
//! already `(from, seq)`-sorted: senders are drained in ascending subgraph
//! order and each sender's `seq` increases monotonically. Runs are kept
//! separate end-to-end (one decoded run is never concatenated with
//! another), which lets the receiver replace the global sort with an O(n)
//! [`merge_sorted_runs`] k-way merge that yields *exactly* the order the
//! stable sort produced.
//!
//! Combining preserves this invariant: [`combine_envelopes`] folds later
//! messages into the **first** envelope of each `(destination, key)` group,
//! so surviving envelopes are a subsequence of the sorted input and keep
//! their original `(from, seq)` identity. A combined run therefore sorts
//! and merges like an uncombined one.
//!
//! The pre-batching path is preserved in [`legacy`] as an executable
//! reference: property tests assert the new path is byte-equivalent in
//! content and order, and the `micro_messaging` benchmark measures both in
//! the same run.

use crate::error::WireError;
use crate::wire::{get_u32, sort_envelopes, Envelope, WireMsg};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use tempograph_partition::SubgraphId;
use tempograph_trace::TraceSink;

/// A multiply-rotate hasher (the rustc/Firefox "Fx" construction) for the
/// per-message hot paths. The default SipHash is DoS-resistant but costs
/// more than the serialisation it sits next to; keys here are small
/// engine-internal integers, so the cheap hash is safe.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A sender-side message reduction (Pregel's combiners, adapted to the
/// subgraph-centric model).
///
/// Two messages bound for the same destination subgraph whose payloads map
/// to the same `Some` key are folded into one before serialisation.
/// `combine` must implement an **associative and commutative** reduction:
/// the engine folds messages in deterministic routing order, but that order
/// differs from delivery order (the fold replaces several deliveries with
/// one), so only order-insensitive reductions — min, max, sum — are sound.
pub trait Combiner<M>: Send + Sync {
    /// Combining key of a payload, or `None` for messages that must be
    /// delivered individually (e.g. control tokens).
    fn key(&self, msg: &M) -> Option<u64>;

    /// Fold `incoming` into the accumulator `acc`.
    fn combine(&self, acc: &mut M, incoming: M);
}

/// Fold same-destination, same-key messages with `combiner`.
///
/// Later messages are folded into the *first* envelope of their
/// `(destination, key)` group, which keeps the output a subsequence of the
/// input — in particular, `(from, seq)`-sorted input stays sorted.
pub fn combine_envelopes<M>(
    combiner: &dyn Combiner<M>,
    msgs: Vec<Envelope<M>>,
) -> Vec<Envelope<M>> {
    let mut out: Vec<Envelope<M>> = Vec::with_capacity(msgs.len());
    let mut acc_at: FxHashMap<(SubgraphId, u64), usize> = FxHashMap::default();
    for e in msgs {
        match combiner.key(&e.payload) {
            None => out.push(e),
            Some(key) => match acc_at.entry((e.to, key)) {
                Entry::Occupied(o) => {
                    combiner.combine(&mut out[*o.get()].payload, e.payload);
                }
                Entry::Vacant(v) => {
                    v.insert(out.len());
                    out.push(e);
                }
            },
        }
    }
    out
}

/// All messages one partition sends to one peer in one phase, grouped into
/// per-destination runs. Push order is preserved within each run, so
/// pushing `(from, seq)`-sorted input yields `(from, seq)`-sorted runs.
///
/// Wire frame:
///
/// ```text
/// [n_runs: u32]
/// n_runs × [to: u32][run_len: u32] run_len × ([from: u32][seq: u32][payload])
/// ```
pub struct MessageBatch<M> {
    runs: DecodedRuns<M>,
    run_of: FxHashMap<SubgraphId, usize>,
    len: usize,
}

/// A decoded frame: per-destination runs in sender push order.
pub type DecodedRuns<M> = Vec<(SubgraphId, Vec<Envelope<M>>)>;

impl<M> Default for MessageBatch<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> MessageBatch<M> {
    /// An empty batch.
    pub fn new() -> Self {
        MessageBatch {
            runs: Vec::new(),
            run_of: FxHashMap::default(),
            len: 0,
        }
    }

    /// Append an envelope to its destination's run.
    pub fn push(&mut self, e: Envelope<M>) {
        self.len += 1;
        // Senders emit destination-clustered streams (Dijkstra sweeps sort
        // by target vertex), so the previous push usually answers the
        // lookup without touching the map.
        if let Some(last) = self.runs.last_mut() {
            if last.0 == e.to {
                last.1.push(e);
                return;
            }
        }
        let slot = match self.run_of.entry(e.to) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                let slot = self.runs.len();
                v.insert(slot);
                self.runs.push((e.to, Vec::new()));
                slot
            }
        };
        self.runs[slot].1.push(e);
    }

    /// Total messages across all runs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no message has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-destination runs, in first-push order.
    pub fn into_runs(self) -> Vec<(SubgraphId, Vec<Envelope<M>>)> {
        self.runs
    }
}

impl<M: WireMsg> MessageBatch<M> {
    /// Append the whole batch as one frame.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.runs.len() as u32);
        for (to, run) in &self.runs {
            buf.put_u32_le(to.0);
            buf.put_u32_le(run.len() as u32);
            for e in run {
                debug_assert_eq!(e.to, *to, "run holds exactly one destination");
                buf.put_u32_le(e.from.0);
                buf.put_u32_le(e.seq);
                e.payload.encode(buf);
            }
        }
    }

    /// Read one frame back as per-destination runs. Run-internal order is
    /// exactly the sender's push order.
    pub fn decode(buf: &mut Bytes) -> Result<DecodedRuns<M>, WireError> {
        let n_runs = get_u32(buf, "batch run count")? as usize;
        let mut runs = Vec::with_capacity(n_runs.min(buf.remaining().max(1)));
        for _ in 0..n_runs {
            let to = SubgraphId(get_u32(buf, "run destination")?);
            let n = get_u32(buf, "run length")? as usize;
            let mut run = Vec::with_capacity(n.min(buf.remaining().max(1)));
            for _ in 0..n {
                let from = SubgraphId(get_u32(buf, "run entry from")?);
                let seq = get_u32(buf, "run entry seq")?;
                run.push(Envelope {
                    from,
                    to,
                    seq,
                    payload: M::decode(buf)?,
                });
            }
            runs.push((to, run));
        }
        Ok(runs)
    }

    /// [`Self::encode`] wrapped in a `"batch.encode"` trace span carrying
    /// the message count. Zero extra cost when the sink is off (the span
    /// start is a sentinel, no clock read).
    pub fn encode_traced(&self, buf: &mut BytesMut, sink: &mut TraceSink) {
        let span = sink.start();
        self.encode(buf);
        sink.span_arg_since("batch.encode", span, "msgs", self.len as u64);
    }
}

/// Recycles frame buffers across supersteps.
///
/// A sender draws encode buffers from its pool; the receiver, after fully
/// decoding a frame, reclaims the allocation via [`Bytes::try_into_mut`]
/// into *its* pool. Capacity thus migrates between workers with the
/// traffic, which is exactly where it is needed next; a worker whose pool
/// runs dry simply allocates a fresh buffer.
pub struct BufferPool {
    free: Vec<BytesMut>,
}

/// Buffers retained per pool. Keeps worst-case idle memory bounded at a few
/// dozen frames; excess buffers are dropped.
const MAX_POOLED: usize = 32;

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool { free: Vec::new() }
    }

    /// A cleared buffer, recycled when available.
    pub fn get(&mut self) -> BytesMut {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool.
    pub fn put(&mut self, mut buf: BytesMut) {
        if self.free.len() < MAX_POOLED {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Reclaim a (typically fully consumed) frame's allocation. No-ops when
    /// the allocation is still shared.
    pub fn reclaim(&mut self, bytes: Bytes) {
        if let Ok(buf) = bytes.try_into_mut() {
            self.put(buf);
        }
    }

    /// Buffers currently held.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// Merge `(from, seq)`-sorted runs into one sorted inbox.
///
/// With `(from, seq)` unique across all runs (guaranteed by the persistent
/// per-subgraph send counters), the output order equals what a stable sort
/// of the concatenation produces — the engine's canonical delivery order.
///
/// The merge *gallops*: each round finds the run with the smallest head and
/// the runner-up head (`fence`), then copies from the winning run until its
/// head passes the fence — one comparison per element plus one O(k) scan
/// per run switch. Runs come from distinct senders whose `from` ranges
/// rarely interleave, so whole runs are usually copied in a single round:
/// O(n + k²) typical, O(n·k) worst case, O(n) moves always.
pub fn merge_sorted_runs<M>(mut runs: Vec<Vec<Envelope<M>>>) -> Vec<Envelope<M>> {
    runs.retain(|r| !r.is_empty());
    if runs.len() <= 1 {
        return runs.pop().unwrap_or_default();
    }
    let total = runs.iter().map(Vec::len).sum();
    let mut out: Vec<Envelope<M>> = Vec::with_capacity(total);
    let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<Envelope<M>>>> =
        runs.into_iter().map(|r| r.into_iter().peekable()).collect();
    loop {
        // One scan finds both the smallest head and the runner-up key.
        let mut best = usize::MAX;
        let mut best_key: Option<(SubgraphId, u32)> = None;
        let mut fence: Option<(SubgraphId, u32)> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            let Some(e) = it.peek() else { continue };
            let k = (e.from, e.seq);
            match best_key {
                None => {
                    best = i;
                    best_key = Some(k);
                }
                // The dethroned best is necessarily the new runner-up:
                // every earlier non-best key was ≥ the old best.
                Some(bk) if k < bk => {
                    fence = Some(bk);
                    best = i;
                    best_key = Some(k);
                }
                Some(_) => {
                    if fence.is_none_or(|f| k < f) {
                        fence = Some(k);
                    }
                }
            }
        }
        if best == usize::MAX {
            break;
        }
        let it = &mut iters[best];
        match fence {
            // Only one non-empty run left: drain it and finish.
            None => out.extend(it),
            Some(f) => {
                while let Some(e) = it.next_if(|e| (e.from, e.seq) < f) {
                    out.push(e);
                }
            }
        }
    }
    out
}

/// [`merge_sorted_runs`] wrapped in a `"batch.merge"` trace span carrying
/// the merged message count. Trivial merges (≤ 1 non-empty run after
/// retain would short-circuit anyway) still record when non-empty, so the
/// trace accounts for every delivered message; empty merges record
/// nothing.
pub fn merge_sorted_runs_traced<M>(
    runs: Vec<Vec<Envelope<M>>>,
    sink: &mut TraceSink,
) -> Vec<Envelope<M>> {
    let total: u64 = runs.iter().map(|r| r.len() as u64).sum();
    let span = sink.start();
    let out = merge_sorted_runs(runs);
    if total > 0 {
        sink.span_arg_since("batch.merge", span, "msgs", total);
    }
    out
}

/// The pre-batching message path, kept as an executable reference.
///
/// Property tests assert the batched path delivers exactly what this one
/// does, and the `micro_messaging` benchmark compares both in the same run.
pub mod legacy {
    use super::*;

    /// Encode envelopes the original way: each with its full 12-byte
    /// header, into a fresh buffer. Returns `(count, frame)`.
    pub fn encode_envelopes<M: WireMsg>(msgs: &[Envelope<M>]) -> (u32, Bytes) {
        let mut buf = BytesMut::new();
        for e in msgs {
            e.encode(&mut buf);
        }
        (msgs.len() as u32, buf.freeze())
    }

    /// Decode a legacy frame of `count` envelopes.
    pub fn decode_envelopes<M: WireMsg>(
        count: u32,
        bytes: &mut Bytes,
    ) -> Result<Vec<Envelope<M>>, WireError> {
        (0..count).map(|_| Envelope::decode(bytes)).collect()
    }

    /// The original delivery step: concatenate everything a destination
    /// received, then stable-sort by `(from, seq)`.
    pub fn deliver<M>(received: Vec<Vec<Envelope<M>>>) -> Vec<Envelope<M>> {
        let mut all: Vec<Envelope<M>> = received.into_iter().flatten().collect();
        sort_envelopes(&mut all);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(from: u32, to: u32, seq: u32, payload: u64) -> Envelope<u64> {
        Envelope {
            from: SubgraphId(from),
            to: SubgraphId(to),
            seq,
            payload,
        }
    }

    #[test]
    fn batch_groups_by_destination_preserving_push_order() {
        let mut b = MessageBatch::new();
        b.push(env(0, 5, 0, 10));
        b.push(env(0, 7, 1, 11));
        b.push(env(1, 5, 0, 12));
        assert_eq!(b.len(), 3);
        let runs = b.into_runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, SubgraphId(5));
        assert_eq!(runs[0].1.len(), 2);
        assert_eq!(runs[1].0, SubgraphId(7));
    }

    #[test]
    fn frame_roundtrip() {
        let mut b = MessageBatch::new();
        for e in [env(0, 5, 0, 1), env(0, 7, 1, 2), env(1, 5, 3, 4)] {
            b.push(e);
        }
        let mut buf = BytesMut::new();
        b.encode(&mut buf);
        let expect = b.into_runs();
        let mut bytes = buf.freeze();
        let got = MessageBatch::<u64>::decode(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0, "frame must consume exactly");
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_and_single_message_frames() {
        let b = MessageBatch::<u64>::new();
        assert!(b.is_empty());
        let mut buf = BytesMut::new();
        b.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert!(MessageBatch::<u64>::decode(&mut bytes).unwrap().is_empty());
        assert_eq!(bytes.remaining(), 0);

        let mut b = MessageBatch::new();
        b.push(env(3, 4, 9, 99));
        let mut buf = BytesMut::new();
        b.encode(&mut buf);
        let runs = MessageBatch::<u64>::decode(&mut buf.freeze()).unwrap();
        assert_eq!(runs, vec![(SubgraphId(4), vec![env(3, 4, 9, 99)])]);
    }

    struct MinCombiner;
    impl Combiner<u64> for MinCombiner {
        fn key(&self, _m: &u64) -> Option<u64> {
            Some(0)
        }
        fn combine(&self, acc: &mut u64, incoming: u64) {
            *acc = (*acc).min(incoming);
        }
    }

    #[test]
    fn combiner_folds_into_first_occurrence() {
        let msgs = vec![env(0, 5, 0, 30), env(1, 5, 0, 10), env(1, 6, 1, 20)];
        let out = combine_envelopes(&MinCombiner, msgs);
        assert_eq!(out.len(), 2);
        // Keeps the first contributor's (from, seq) identity and stays
        // sorted.
        assert_eq!(
            (out[0].from, out[0].seq, out[0].payload),
            (SubgraphId(0), 0, 10)
        );
        assert_eq!(out[1].payload, 20);
    }

    struct NeverCombine;
    impl Combiner<u64> for NeverCombine {
        fn key(&self, _m: &u64) -> Option<u64> {
            None
        }
        fn combine(&self, _acc: &mut u64, _incoming: u64) {
            unreachable!("key() is always None")
        }
    }

    #[test]
    fn none_key_disables_combining() {
        let msgs = vec![env(0, 5, 0, 1), env(1, 5, 0, 2)];
        assert_eq!(combine_envelopes(&NeverCombine, msgs.clone()), msgs);
    }

    #[test]
    fn merge_equals_legacy_stable_sort() {
        // Three sorted runs with globally unique (from, seq).
        let runs = vec![
            vec![env(0, 9, 0, 1), env(0, 9, 2, 2), env(3, 9, 0, 3)],
            vec![env(1, 9, 0, 4), env(2, 9, 5, 5)],
            vec![env(0, 9, 1, 6), env(4, 9, 0, 7)],
        ];
        let merged = merge_sorted_runs(runs.clone());
        let reference = legacy::deliver(runs);
        assert_eq!(merged, reference);
    }

    #[test]
    fn merge_is_invariant_under_run_arrival_order() {
        // The TCP transport hands runs to the merge in whatever order
        // frames arrived off the sockets; delivery order must not depend
        // on it. Check every permutation of a 4-run inbox against the
        // canonical stable sort.
        let runs = vec![
            vec![env(0, 9, 0, 1), env(0, 9, 2, 2), env(3, 9, 0, 3)],
            vec![env(1, 9, 0, 4), env(2, 9, 5, 5)],
            vec![env(0, 9, 1, 6), env(4, 9, 0, 7)],
            vec![env(2, 9, 6, 8)],
        ];
        let reference = legacy::deliver(runs.clone());
        // Heap's algorithm over the run indices.
        let mut idx = [0usize, 1, 2, 3];
        let mut c = [0usize; 4];
        let check = |order: &[usize; 4]| {
            let permuted: Vec<_> = order.iter().map(|&i| runs[i].clone()).collect();
            assert_eq!(merge_sorted_runs(permuted), reference, "order {order:?}");
        };
        check(&idx);
        let mut i = 0;
        while i < 4 {
            if c[i] < i {
                idx.swap(if i % 2 == 0 { 0 } else { c[i] }, i);
                check(&idx);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn merge_handles_empty_and_single_runs() {
        assert!(merge_sorted_runs::<u64>(vec![]).is_empty());
        assert!(merge_sorted_runs::<u64>(vec![vec![], vec![]]).is_empty());
        let one = vec![env(0, 1, 0, 5)];
        assert_eq!(merge_sorted_runs(vec![vec![], one.clone()]), one);
    }

    #[test]
    fn pool_recycles_consumed_frames() {
        let mut pool = BufferPool::new();
        let mut buf = pool.get();
        buf.reserve(256);
        buf.put_u64_le(42);
        let cap = buf.capacity();
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u64_le(), 42);
        pool.reclaim(bytes);
        assert_eq!(pool.pooled(), 1);
        let recycled = pool.get();
        assert!(recycled.is_empty());
        assert_eq!(recycled.capacity(), cap, "allocation survives the trip");
    }

    #[test]
    fn pool_refuses_shared_frames_and_bounds_growth() {
        let mut pool = BufferPool::new();
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        let bytes = buf.freeze();
        let _held = bytes.clone();
        pool.reclaim(bytes);
        assert_eq!(pool.pooled(), 0, "shared allocation must not recycle");

        for _ in 0..100 {
            pool.put(BytesMut::new());
        }
        assert!(pool.pooled() <= MAX_POOLED);
    }

    #[test]
    fn legacy_roundtrip() {
        let msgs = vec![env(0, 5, 0, 1), env(1, 6, 0, 2)];
        let (count, mut bytes) = legacy::encode_envelopes(&msgs);
        let back = legacy::decode_envelopes::<u64>(count, &mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0);
        assert_eq!(back, msgs);
    }

    #[test]
    fn truncated_frame_is_a_typed_error() {
        let mut b = MessageBatch::new();
        b.push(env(0, 5, 0, 1));
        b.push(env(0, 5, 1, 2));
        let mut buf = BytesMut::new();
        b.encode(&mut buf);
        let full = buf.freeze();
        for cut in [0, 4, full.len() - 1] {
            let mut short = Bytes::copy_from_slice(&full[..cut]);
            assert!(
                MessageBatch::<u64>::decode(&mut short).is_err(),
                "cut at {cut} must error, not panic"
            );
        }
    }
}
