//! Superstep checkpointing: per-partition snapshot files + a commit
//! manifest, in the GoFS on-disk idiom (magic / version / FNV-1a checksum
//! frames, staged `.tmp` + rename writes).
//!
//! # Protocol
//!
//! At the end of every `every`-th timestep each worker serialises its full
//! recovery state — program state per subgraph (via
//! `SubgraphProgram::save_state`), pending next-timestep and merge-phase
//! messages, send/merge sequence counters, plus the metrics/counters/emits
//! accumulated so far — into `ckpt-t{t}-p{p}.bin` inside the configured
//! checkpoint directory. Writes are staged through
//! [`tempograph_gofs::store::write_atomic`], so a worker dying mid-write
//! can never leave a torn file where a reader might find it.
//!
//! After *all* workers have renamed their files into place (a barrier
//! separates write from commit), partition 0 appends the timestep to
//! `manifest.bin` — the single commit point. A timestep is recoverable iff
//! it appears in the manifest *and* all `k` partition files for it decode
//! cleanly; [`latest_valid`] walks the manifest newest-first and falls back
//! past corrupt or missing entries, so damage degrades recovery by one
//! interval instead of killing it.
//!
//! # Determinism
//!
//! The engine delivers messages in canonical `(from, seq)` order and each
//! checkpoint captures the complete inter-timestep state (program state +
//! staged messages + sequence counters). Re-running timesteps `t+1..` from
//! a checkpoint of `t` therefore reproduces the clean run bit-for-bit —
//! the property `tests/recovery_equivalence.rs` asserts.

use crate::metrics::{Emit, TimestepMetrics};
use crate::wire::{Envelope, WireMsg};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tempograph_core::VertexIdx;
use tempograph_gofs::codec::{self, frame, unframe};
use tempograph_gofs::error::{GofsError, Result};
use tempograph_gofs::store::write_atomic;
use tempograph_partition::SubgraphId;

const CHECKPOINT_MAGIC: [u8; 4] = *b"GFCK";
const MANIFEST_MAGIC: [u8; 4] = *b"GFCM";

/// Where and how often to checkpoint; see [`crate::JobConfig::with_checkpoint`].
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint after every `every` timesteps (`usize::MAX` ⇒ never
    /// write one; recovery then restarts from scratch).
    pub every: usize,
    /// Directory holding the per-partition files and the manifest.
    pub dir: PathBuf,
}

impl CheckpointConfig {
    /// True when timestep `t` (0-based) ends a checkpoint interval.
    pub fn due_at(&self, t: usize) -> bool {
        self.every != usize::MAX && (t + 1).is_multiple_of(self.every)
    }
}

/// Path of partition `p`'s checkpoint file for timestep `t`.
pub fn checkpoint_path(dir: &Path, t: u64, p: u16) -> PathBuf {
    dir.join(format!("ckpt-t{t:06}-p{p:03}.bin"))
}

/// Path of the commit manifest.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.bin")
}

/// Everything one subgraph needs to resume after its checkpointed timestep.
#[derive(Clone, Debug, PartialEq)]
pub struct SubgraphCheckpoint<M> {
    /// Opaque program state from `SubgraphProgram::save_state`.
    pub state: Vec<u8>,
    /// Next value of the per-subgraph send sequence counter.
    pub next_seq: u32,
    /// Next value of the merge-phase send sequence counter.
    pub merge_seq: u32,
    /// Messages staged for delivery at the next timestep, already in
    /// canonical `(from, seq)` order.
    pub next_inbox: Vec<Envelope<M>>,
    /// Messages accumulated for the merge phase (eventually-dependent runs).
    pub merge_inbox: Vec<Envelope<M>>,
}

/// One partition's complete recovery state at the end of a timestep.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerCheckpoint<M> {
    /// Owning partition (consistency-checked on restore).
    pub partition: u16,
    /// The 0-based timestep this snapshot was taken *after*.
    pub timestep: u64,
    /// True when the timestep loop ended at `timestep` (last configured
    /// timestep, or a `WhileActive` stop vote). A restore from such a
    /// snapshot skips straight to the merge phase — without this flag a
    /// vote-terminated job that crashed during merge would wrongly resume
    /// at `timestep + 1`.
    pub loop_done: bool,
    /// Per-subgraph state, in the worker's subgraph order.
    pub subgraphs: Vec<(SubgraphId, SubgraphCheckpoint<M>)>,
    /// Timestep metrics accumulated so far (`timestep + 1` entries).
    pub metrics: Vec<TimestepMetrics>,
    /// User counters accumulated so far, one sorted name→value row per
    /// timestep.
    pub counters: Vec<Vec<(String, u64)>>,
    /// Values emitted so far.
    pub emits: Vec<Emit>,
}

pub(crate) fn put_metrics(buf: &mut BytesMut, m: &TimestepMetrics) {
    buf.put_u64_le(m.compute_ns);
    buf.put_u64_le(m.msg_ns);
    buf.put_u64_le(m.sync_ns);
    buf.put_u64_le(m.io_ns);
    buf.put_u64_le(m.wall_ns);
    buf.put_u32_le(m.supersteps);
    buf.put_u64_le(m.msgs_local);
    buf.put_u64_le(m.msgs_remote);
    buf.put_u64_le(m.bytes_remote);
    buf.put_u64_le(m.msgs_combined);
    buf.put_u64_le(m.batches_remote);
    buf.put_u64_le(m.slice_loads);
    buf.put_u64_le(m.send_retries);
    buf.put_u32_le(m.superstep_compute_ns.len() as u32);
    for &ns in &m.superstep_compute_ns {
        buf.put_u64_le(ns);
    }
}

pub(crate) fn get_metrics(buf: &mut Bytes) -> Result<TimestepMetrics> {
    let mut m = TimestepMetrics {
        compute_ns: codec::get_u64(buf)?,
        msg_ns: codec::get_u64(buf)?,
        sync_ns: codec::get_u64(buf)?,
        io_ns: codec::get_u64(buf)?,
        wall_ns: codec::get_u64(buf)?,
        supersteps: codec::get_u32(buf)?,
        msgs_local: codec::get_u64(buf)?,
        msgs_remote: codec::get_u64(buf)?,
        bytes_remote: codec::get_u64(buf)?,
        msgs_combined: codec::get_u64(buf)?,
        batches_remote: codec::get_u64(buf)?,
        slice_loads: codec::get_u64(buf)?,
        send_retries: codec::get_u64(buf)?,
        superstep_compute_ns: Vec::new(),
    };
    let n = codec::get_u32(buf)? as usize;
    m.superstep_compute_ns.reserve(n);
    for _ in 0..n {
        m.superstep_compute_ns.push(codec::get_u64(buf)?);
    }
    Ok(m)
}

fn put_envelopes<M: WireMsg>(buf: &mut BytesMut, envelopes: &[Envelope<M>]) {
    buf.put_u32_le(envelopes.len() as u32);
    for e in envelopes {
        e.encode(buf);
    }
}

fn get_envelopes<M: WireMsg>(buf: &mut Bytes) -> Result<Vec<Envelope<M>>> {
    let n = codec::get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let e = Envelope::decode(buf)
            .map_err(|e| GofsError::Corrupt(format!("checkpoint envelope: {e}")))?;
        out.push(e);
    }
    Ok(out)
}

impl<M: WireMsg> WorkerCheckpoint<M> {
    /// Serialise into a framed (magic/version/checksum) byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.partition as u32);
        buf.put_u64_le(self.timestep);
        buf.put_u8(self.loop_done as u8);
        buf.put_u32_le(self.subgraphs.len() as u32);
        for (sg, s) in &self.subgraphs {
            buf.put_u32_le(sg.0);
            buf.put_u32_le(s.next_seq);
            buf.put_u32_le(s.merge_seq);
            buf.put_u32_le(s.state.len() as u32);
            buf.put_slice(&s.state);
            put_envelopes(&mut buf, &s.next_inbox);
            put_envelopes(&mut buf, &s.merge_inbox);
        }
        buf.put_u32_le(self.metrics.len() as u32);
        for m in &self.metrics {
            put_metrics(&mut buf, m);
        }
        buf.put_u32_le(self.counters.len() as u32);
        for row in &self.counters {
            buf.put_u32_le(row.len() as u32);
            for (name, value) in row {
                codec::put_str(&mut buf, name);
                buf.put_u64_le(*value);
            }
        }
        buf.put_u32_le(self.emits.len() as u32);
        for e in &self.emits {
            buf.put_u64_le(e.timestep as u64);
            buf.put_u32_le(e.vertex.0);
            buf.put_f64_le(e.value);
        }
        frame(CHECKPOINT_MAGIC, &buf)
    }

    /// Decode a framed checkpoint file, validating magic, version and
    /// checksum first (typed [`GofsError`] on any corruption).
    pub fn decode(data: &[u8]) -> Result<Self> {
        let mut buf = unframe(CHECKPOINT_MAGIC, data)?;
        let partition = codec::get_u32(&mut buf)? as u16;
        let timestep = codec::get_u64(&mut buf)?;
        let loop_done = codec::get_u8(&mut buf)? != 0;
        let n_sg = codec::get_u32(&mut buf)? as usize;
        let mut subgraphs = Vec::with_capacity(n_sg.min(1 << 16));
        for _ in 0..n_sg {
            let sg = SubgraphId(codec::get_u32(&mut buf)?);
            let next_seq = codec::get_u32(&mut buf)?;
            let merge_seq = codec::get_u32(&mut buf)?;
            let state_len = codec::get_u32(&mut buf)? as usize;
            if buf.remaining() < state_len {
                return Err(GofsError::Corrupt("program state overruns file".into()));
            }
            let state = buf.split_to(state_len).to_vec();
            let next_inbox = get_envelopes(&mut buf)?;
            let merge_inbox = get_envelopes(&mut buf)?;
            subgraphs.push((
                sg,
                SubgraphCheckpoint {
                    state,
                    next_seq,
                    merge_seq,
                    next_inbox,
                    merge_inbox,
                },
            ));
        }
        let n_metrics = codec::get_u32(&mut buf)? as usize;
        let mut metrics = Vec::with_capacity(n_metrics.min(1 << 16));
        for _ in 0..n_metrics {
            metrics.push(get_metrics(&mut buf)?);
        }
        let n_rows = codec::get_u32(&mut buf)? as usize;
        let mut counters = Vec::with_capacity(n_rows.min(1 << 16));
        for _ in 0..n_rows {
            let n = codec::get_u32(&mut buf)? as usize;
            let mut row = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let name = codec::get_str(&mut buf)?;
                let value = codec::get_u64(&mut buf)?;
                row.push((name, value));
            }
            counters.push(row);
        }
        let n_emits = codec::get_u32(&mut buf)? as usize;
        let mut emits = Vec::with_capacity(n_emits.min(1 << 16));
        for _ in 0..n_emits {
            emits.push(Emit {
                timestep: codec::get_u64(&mut buf)? as usize,
                vertex: VertexIdx(codec::get_u32(&mut buf)?),
                value: codec::get_f64(&mut buf)?,
            });
        }
        Ok(WorkerCheckpoint {
            partition,
            timestep,
            loop_done,
            subgraphs,
            metrics,
            counters,
            emits,
        })
    }

    /// Atomically write this checkpoint to its canonical path under `dir`.
    pub fn write(&self, dir: &Path) -> Result<()> {
        write_atomic(
            checkpoint_path(dir, self.timestep, self.partition),
            &self.encode(),
        )
    }
}

/// The commit record: timesteps whose checkpoints were fully written by
/// every partition, ascending.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Committed timesteps (0-based, ascending, deduplicated).
    pub timesteps: Vec<u64>,
}

impl Manifest {
    fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32_le(self.timesteps.len() as u32);
        for &t in &self.timesteps {
            buf.put_u64_le(t);
        }
        frame(MANIFEST_MAGIC, &buf)
    }

    fn decode(data: &[u8]) -> Result<Self> {
        let mut buf = unframe(MANIFEST_MAGIC, data)?;
        let n = codec::get_u32(&mut buf)? as usize;
        let mut timesteps = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            timesteps.push(codec::get_u64(&mut buf)?);
        }
        Ok(Manifest { timesteps })
    }
}

/// Read the manifest (typed error on corruption, `Ok(empty)` when absent).
pub fn read_manifest(dir: &Path) -> Result<Manifest> {
    let path = manifest_path(dir);
    if !path.exists() {
        return Ok(Manifest::default());
    }
    Manifest::decode(&std::fs::read(path)?)
}

/// Append `t` to the manifest (read–modify–write, atomic rename). Called by
/// partition 0 only, after a barrier guarantees all partition files for `t`
/// are in place — this is the single commit point of the protocol.
pub fn commit_manifest(dir: &Path, t: u64) -> Result<()> {
    let mut manifest = read_manifest(dir)?;
    manifest.timesteps.push(t);
    manifest.timesteps.sort_unstable();
    manifest.timesteps.dedup();
    write_atomic(manifest_path(dir), &manifest.encode())
}

/// Newest committed timestep whose checkpoint files all `partitions`
/// workers can actually decode. Walks the manifest newest-first, skipping
/// entries with missing/corrupt/mismatched files; `None` means recovery
/// must restart from scratch.
pub fn latest_valid<M: WireMsg>(dir: &Path, partitions: u16) -> Option<u64> {
    let manifest = read_manifest(dir).ok()?;
    'candidates: for &t in manifest.timesteps.iter().rev() {
        for p in 0..partitions {
            let Ok(data) = std::fs::read(checkpoint_path(dir, t, p)) else {
                continue 'candidates;
            };
            let Ok(ck) = WorkerCheckpoint::<M>::decode(&data) else {
                continue 'candidates;
            };
            if ck.partition != p || ck.timestep != t {
                continue 'candidates;
            }
        }
        return Some(t);
    }
    None
}

/// Intern a counter name loaded from disk so it can re-enter the engine's
/// `&'static str`-keyed counter maps. Leaks once per distinct name — the
/// universe of counter names is tiny and fixed per program.
pub(crate) fn intern(name: &str) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&s) = pool.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample(partition: u16, timestep: u64) -> WorkerCheckpoint<(VertexIdx, f64)> {
        let env = |from: u32, seq: u32, v: u32, x: f64| Envelope {
            from: SubgraphId(from),
            to: SubgraphId(from + 1),
            seq,
            payload: (VertexIdx(v), x),
        };
        WorkerCheckpoint {
            partition,
            timestep,
            loop_done: false,
            subgraphs: vec![
                (
                    SubgraphId(3),
                    SubgraphCheckpoint {
                        state: vec![1, 2, 3, 255],
                        next_seq: 17,
                        merge_seq: 2,
                        next_inbox: vec![env(1, 0, 9, 0.5), env(2, 4, 0, -1.0)],
                        merge_inbox: vec![env(3, 1, 7, 42.0)],
                    },
                ),
                (
                    SubgraphId(8),
                    SubgraphCheckpoint {
                        state: Vec::new(),
                        next_seq: 0,
                        merge_seq: 0,
                        next_inbox: Vec::new(),
                        merge_inbox: Vec::new(),
                    },
                ),
            ],
            metrics: vec![TimestepMetrics {
                compute_ns: 5,
                supersteps: 3,
                msgs_remote: 9,
                send_retries: 1,
                superstep_compute_ns: vec![2, 2, 1],
                ..Default::default()
            }],
            counters: vec![vec![("settled".into(), 4), ("visited".into(), 11)]],
            emits: vec![Emit {
                timestep: 0,
                vertex: VertexIdx(5),
                value: 2.5,
            }],
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ck = sample(1, 4);
        let back = WorkerCheckpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn corruption_yields_typed_errors() {
        type Ck = WorkerCheckpoint<(VertexIdx, f64)>;
        let data = sample(0, 0).encode();
        // Bit-flip in the payload → checksum mismatch.
        let mut evil = data.to_vec();
        evil[20] ^= 0x40;
        assert!(matches!(
            Ck::decode(&evil),
            Err(GofsError::ChecksumMismatch { .. })
        ));
        // Truncation → corrupt frame.
        assert!(Ck::decode(&data[..data.len() - 5]).is_err());
        // Version bump (bytes 4..6 of the frame) → typed version error.
        let mut stale = data.to_vec();
        stale[4] = 0xFF;
        assert!(matches!(
            Ck::decode(&stale),
            Err(GofsError::UnsupportedVersion(_))
        ));
        // Wrong magic.
        let mut alien = data.to_vec();
        alien[0] = b'X';
        assert!(matches!(
            Ck::decode(&alien),
            Err(GofsError::BadMagic { .. })
        ));
    }

    #[test]
    fn manifest_commit_is_sorted_and_deduplicated() {
        let dir = tmp();
        assert_eq!(read_manifest(&dir).unwrap(), Manifest::default());
        commit_manifest(&dir, 5).unwrap();
        commit_manifest(&dir, 1).unwrap();
        commit_manifest(&dir, 5).unwrap();
        assert_eq!(read_manifest(&dir).unwrap().timesteps, vec![1, 5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_falls_back_past_corrupt_entries() {
        type M = (VertexIdx, f64);
        let dir = tmp();
        let k = 2u16;
        for t in [1u64, 3] {
            for p in 0..k {
                sample(p, t).write(&dir).unwrap();
            }
            commit_manifest(&dir, t).unwrap();
        }
        assert_eq!(latest_valid::<M>(&dir, k), Some(3));

        // Corrupt one partition's newest file → fall back to t=1.
        let victim = checkpoint_path(&dir, 3, 1);
        let mut data = std::fs::read(&victim).unwrap();
        let n = data.len();
        data[n / 2] ^= 0x01;
        std::fs::write(&victim, &data).unwrap();
        assert_eq!(latest_valid::<M>(&dir, k), Some(1));

        // Delete a t=1 file too → nothing valid remains.
        std::fs::remove_file(checkpoint_path(&dir, 1, 0)).unwrap();
        assert_eq!(latest_valid::<M>(&dir, k), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_rejects_header_mismatch() {
        type M = (VertexIdx, f64);
        let dir = tmp();
        // A file whose embedded partition id disagrees with its path.
        let ck = sample(1, 0);
        write_atomic(checkpoint_path(&dir, 0, 0), &ck.encode()).unwrap();
        write_atomic(checkpoint_path(&dir, 0, 1), &ck.encode()).unwrap();
        commit_manifest(&dir, 0).unwrap();
        assert_eq!(latest_valid::<M>(&dir, 2), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn intern_is_stable() {
        let a = intern("ckpt-test-counter");
        let b = intern("ckpt-test-counter");
        assert!(std::ptr::eq(a, b), "same name must intern to one &'static");
        assert_eq!(intern("ckpt-other"), "ckpt-other");
    }
}
