//! Instance providers: where a worker gets its subgraph instance data.
//!
//! Two sources mirror the paper's setup: [`GofsProvider`] streams slices
//! lazily off disk (the real GoFS path used by the evaluation) and
//! [`MemoryProvider`] projects from an in-memory
//! [`TimeSeriesCollection`] (convenient for tests and small examples).

use std::sync::Arc;
use tempograph_core::TimeSeriesCollection;
use tempograph_gofs::{GofsStore, InstanceLoader, SubgraphInstance};
use tempograph_partition::{PartitionedGraph, Subgraph};
use tempograph_trace::{Clock, TraceSink};

/// Cumulative I/O counters a provider reports to the engine's metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Slice files (or projections) materialised.
    pub loads: u64,
    /// Bytes read from disk (0 for in-memory).
    pub bytes: u64,
    /// Nanoseconds spent fetching/decoding.
    pub ns: u64,
    /// Instance-cache hits (GoFS loader only; 0 for in-memory).
    pub cache_hits: u64,
    /// Instance-cache misses (GoFS loader only; 0 for in-memory).
    pub cache_misses: u64,
    /// Instance-cache evictions (GoFS loader only; 0 for in-memory).
    pub cache_evictions: u64,
}

/// A per-worker source of projected instance data.
pub trait InstanceProvider: Send {
    /// Fetch the projection of instance `timestep` onto `sg`.
    fn fetch(&mut self, sg: &Subgraph, timestep: usize) -> Arc<SubgraphInstance>;

    /// Drain cumulative I/O counters (returns stats since the last call).
    fn take_io_stats(&mut self) -> IoStats;

    /// Number of instances available.
    fn num_timesteps(&self) -> usize;

    /// `t0` of the series.
    fn start_time(&self) -> i64;

    /// `δ` of the series.
    fn period(&self) -> i64;

    /// Install a trace sink so fetches record spans/counters (e.g.
    /// `"gofs.load"`). Providers without interesting I/O may ignore it —
    /// the default drops the sink.
    fn install_trace(&mut self, _sink: TraceSink) {}

    /// Hand back the sink given to [`Self::install_trace`] (with any final
    /// counter samples) so the session can assemble the trace. Default:
    /// `None`.
    fn take_trace(&mut self) -> Option<TraceSink> {
        None
    }
}

/// Projects instances from a shared in-memory collection on demand.
pub struct MemoryProvider {
    collection: Arc<TimeSeriesCollection>,
    stats: IoStats,
}

impl MemoryProvider {
    /// Wrap a collection.
    pub fn new(collection: Arc<TimeSeriesCollection>) -> Self {
        MemoryProvider {
            collection,
            stats: IoStats::default(),
        }
    }
}

impl InstanceProvider for MemoryProvider {
    fn fetch(&mut self, sg: &Subgraph, timestep: usize) -> Arc<SubgraphInstance> {
        let started = Clock::start();
        let g = self
            .collection
            .get(timestep)
            .expect("timestep within collection");
        let si = Arc::new(SubgraphInstance::project(g, sg, timestep));
        self.stats.loads += 1;
        self.stats.ns += started.elapsed_ns();
        si
    }

    fn take_io_stats(&mut self) -> IoStats {
        std::mem::take(&mut self.stats)
    }

    fn num_timesteps(&self) -> usize {
        self.collection.len()
    }

    fn start_time(&self) -> i64 {
        self.collection.start_time()
    }

    fn period(&self) -> i64 {
        self.collection.period()
    }
}

/// Streams slices lazily from a GoFS dataset directory — each worker opens
/// its own loader over its partition, as each GoFFish host reads its local
/// GoFS shard.
pub struct GofsProvider {
    loader: InstanceLoader,
    num_timesteps: usize,
    start_time: i64,
    period: i64,
}

impl GofsProvider {
    /// Open the provider for one partition of a stored dataset.
    pub fn new(store: GofsStore, pg: &PartitionedGraph, partition: u16) -> Self {
        let meta = store.meta().clone();
        GofsProvider {
            loader: InstanceLoader::with_default_capacity(store, pg, partition),
            num_timesteps: meta.num_timesteps,
            start_time: meta.start_time,
            period: meta.period,
        }
    }
}

impl InstanceProvider for GofsProvider {
    fn fetch(&mut self, sg: &Subgraph, timestep: usize) -> Arc<SubgraphInstance> {
        self.loader
            .load(sg.id(), timestep)
            .expect("stored dataset must cover requested timestep")
    }

    fn take_io_stats(&mut self) -> IoStats {
        let s = self.loader.stats().clone();
        self.loader.reset_stats();
        IoStats {
            loads: s.slice_loads,
            bytes: s.bytes_read,
            ns: s.load_ns,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            cache_evictions: s.evictions,
        }
    }

    fn num_timesteps(&self) -> usize {
        self.num_timesteps
    }

    fn start_time(&self) -> i64 {
        self.start_time
    }

    fn period(&self) -> i64 {
        self.period
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.loader.set_trace_sink(sink);
    }

    fn take_trace(&mut self) -> Option<TraceSink> {
        self.loader.take_trace_sink()
    }
}

/// Where the engine should read instances from.
#[derive(Clone)]
pub enum InstanceSource {
    /// Shared in-memory collection.
    Memory(Arc<TimeSeriesCollection>),
    /// A GoFS dataset directory written by
    /// [`tempograph_gofs::GofsWriter`].
    Gofs(std::path::PathBuf),
}

impl InstanceSource {
    /// Build the per-worker provider for `partition`.
    pub fn provider(&self, pg: &PartitionedGraph, partition: u16) -> Box<dyn InstanceProvider> {
        match self {
            InstanceSource::Memory(c) => Box::new(MemoryProvider::new(c.clone())),
            InstanceSource::Gofs(dir) => {
                let store = GofsStore::open(dir).expect("dataset directory must open");
                Box::new(GofsProvider::new(store, pg, partition))
            }
        }
    }

    /// Number of stored timesteps.
    pub fn num_timesteps(&self) -> usize {
        match self {
            InstanceSource::Memory(c) => c.len(),
            InstanceSource::Gofs(dir) => {
                GofsStore::open(dir)
                    .expect("dataset directory must open")
                    .meta()
                    .num_timesteps
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::{AttrType, TemplateBuilder};
    use tempograph_gofs::store::write_dataset;
    use tempograph_partition::{discover_subgraphs, Partitioning};

    fn setup() -> (Arc<PartitionedGraph>, Arc<TimeSeriesCollection>) {
        let mut b = TemplateBuilder::new("prov", false);
        b.vertex_schema().add("x", AttrType::Long);
        for i in 0..6 {
            b.add_vertex(i);
        }
        for i in 0..5u64 {
            b.add_edge(i, i, i + 1).unwrap();
        }
        let t = Arc::new(b.finalize().unwrap());
        let pg = Arc::new(discover_subgraphs(
            t.clone(),
            Partitioning {
                assignment: vec![0, 0, 0, 1, 1, 1],
                k: 2,
            },
        ));
        let mut coll = TimeSeriesCollection::new(t, 0, 10);
        for ts in 0..4 {
            let mut g = coll.new_instance();
            for (i, x) in g.vertex_i64_mut("x").unwrap().iter_mut().enumerate() {
                *x = (ts * 10 + i) as i64;
            }
            coll.push(g).unwrap();
        }
        (pg, Arc::new(coll))
    }

    #[test]
    fn memory_provider_projects_correctly() {
        let (pg, coll) = setup();
        let mut p = MemoryProvider::new(coll);
        let sg = pg.subgraph(pg.subgraphs_of_partition(1)[0]);
        let si = p.fetch(sg, 2);
        assert_eq!(si.vertex_i64(0).unwrap(), &[23, 24, 25]);
        assert_eq!(p.num_timesteps(), 4);
        assert_eq!(p.period(), 10);
        let io = p.take_io_stats();
        assert_eq!(io.loads, 1);
        assert_eq!(p.take_io_stats().loads, 0, "take drains");
    }

    #[test]
    fn gofs_provider_matches_memory_provider() {
        let (pg, coll) = setup();
        let dir = std::env::temp_dir().join(format!(
            "provider-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        write_dataset(&dir, pg.clone(), &coll, 2, 5).unwrap();

        let source = InstanceSource::Gofs(dir.clone());
        assert_eq!(source.num_timesteps(), 4);
        let mut gp = source.provider(&pg, 0);
        let mut mp = MemoryProvider::new(coll);
        let sg = pg.subgraph(pg.subgraphs_of_partition(0)[0]);
        for t in 0..4 {
            assert_eq!(*gp.fetch(sg, t), *mp.fetch(sg, t), "timestep {t}");
        }
        assert!(gp.take_io_stats().bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
