//! Message wire format.
//!
//! Messages between subgraphs in the *same* partition are moved as values
//! (same address space — GoFFish's intra-host messages stay inside one JVM).
//! Messages crossing partitions are **really serialised** through this
//! module and deserialised on the receiving worker, so the engine's
//! "partition overhead" metric measures genuine marshalling work and the
//! byte counters reflect actual on-the-wire sizes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tempograph_core::VertexIdx;
use tempograph_partition::SubgraphId;

/// A message payload that can cross partition boundaries.
///
/// Implementations must be exact round-trips: `decode(encode(m)) == m`.
/// Decoding panics on malformed input — wire buffers are engine-internal and
/// always produced by `encode`, so corruption is a bug, not an input error.
pub trait WireMsg: Send + Clone + 'static {
    /// Append this message to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Read one message back from `buf`.
    fn decode(buf: &mut Bytes) -> Self;
}

impl WireMsg for () {
    fn encode(&self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> Self {}
}

impl WireMsg for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Self {
        buf.get_u32_le()
    }
}

impl WireMsg for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Self {
        buf.get_u64_le()
    }
}

impl WireMsg for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Self {
        buf.get_i64_le()
    }
}

impl WireMsg for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Self {
        buf.get_f64_le()
    }
}

impl WireMsg for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> Self {
        buf.get_u8() != 0
    }
}

impl WireMsg for VertexIdx {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.0);
    }
    fn decode(buf: &mut Bytes) -> Self {
        VertexIdx(buf.get_u32_le())
    }
}

impl WireMsg for SubgraphId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.0);
    }
    fn decode(buf: &mut Bytes) -> Self {
        SubgraphId(buf.get_u32_le())
    }
}

impl WireMsg for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Self {
        let len = buf.get_u32_le() as usize;
        let raw = buf.split_to(len);
        // Validate in place, then copy once — `String::from_utf8(to_vec())`
        // would copy before validating.
        std::str::from_utf8(&raw)
            .expect("engine-internal wire buffer")
            .to_owned()
    }
}

impl<T: WireMsg> WireMsg for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for x in self {
            x.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Self {
        let len = buf.get_u32_le() as usize;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(buf));
        }
        v
    }
}

impl<T: WireMsg> WireMsg for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(x) => {
                buf.put_u8(1);
                x.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Self {
        match buf.get_u8() {
            0 => None,
            _ => Some(T::decode(buf)),
        }
    }
}

impl<A: WireMsg, B: WireMsg> WireMsg for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        (A::decode(buf), B::decode(buf))
    }
}

impl<A: WireMsg, B: WireMsg, C: WireMsg> WireMsg for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Self {
        (A::decode(buf), B::decode(buf), C::decode(buf))
    }
}

/// A routed message: payload plus source/destination subgraphs and a
/// per-sender sequence number used for deterministic delivery ordering.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// Sending subgraph.
    pub from: SubgraphId,
    /// Destination subgraph.
    pub to: SubgraphId,
    /// Sender-assigned sequence number (unique per sender per phase).
    pub seq: u32,
    /// The payload.
    pub payload: M,
}

impl<M: WireMsg> Envelope<M> {
    /// Append the envelope (header + payload) to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.from.0);
        buf.put_u32_le(self.to.0);
        buf.put_u32_le(self.seq);
        self.payload.encode(buf);
    }

    /// Read one envelope back.
    pub fn decode(buf: &mut Bytes) -> Self {
        let from = SubgraphId(buf.get_u32_le());
        let to = SubgraphId(buf.get_u32_le());
        let seq = buf.get_u32_le();
        Envelope {
            from,
            to,
            seq,
            payload: M::decode(buf),
        }
    }
}

/// Sort envelopes into the engine's canonical deterministic delivery order.
///
/// `(from, seq)` keys are unique within any delivery scope (per-subgraph
/// send counters are never reset — see `Outbox::seq`), so the unstable sort
/// is fully deterministic. This is the *reference* delivery order: the hot
/// path reproduces it run-merge-wise via
/// [`crate::batch::merge_sorted_runs`], and property tests hold the two
/// equal.
pub fn sort_envelopes<M>(envelopes: &mut [Envelope<M>]) {
    envelopes.sort_unstable_by_key(|e| (e.from, e.seq));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: WireMsg + PartialEq + std::fmt::Debug>(m: M) {
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(M::decode(&mut bytes), m);
        assert_eq!(bytes.remaining(), 0, "must consume exactly");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(());
        roundtrip(42u32);
        roundtrip(u64::MAX);
        roundtrip(-17i64);
        roundtrip(2.5f64);
        roundtrip(true);
        roundtrip(VertexIdx(9));
        roundtrip(SubgraphId(3));
        roundtrip(String::from("héllo"));
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(Some((VertexIdx(1), 2.5f64)));
        roundtrip(None::<u32>);
        roundtrip((VertexIdx(5), 1.25f64, 99u64));
        roundtrip(vec![vec![VertexIdx(0)], vec![]]);
    }

    #[test]
    fn envelope_roundtrip() {
        let e = Envelope {
            from: SubgraphId(1),
            to: SubgraphId(2),
            seq: 7,
            payload: (VertexIdx(3), 1.5f64),
        };
        let mut buf = BytesMut::new();
        e.encode(&mut buf);
        let back = Envelope::<(VertexIdx, f64)>::decode(&mut buf.freeze());
        assert_eq!(back, e);
    }

    #[test]
    fn canonical_order_is_by_sender_then_seq() {
        let mk = |from: u32, seq: u32| Envelope {
            from: SubgraphId(from),
            to: SubgraphId(0),
            seq,
            payload: (),
        };
        let mut v = vec![mk(2, 0), mk(1, 1), mk(1, 0), mk(0, 5)];
        sort_envelopes(&mut v);
        let order: Vec<(u32, u32)> = v.iter().map(|e| (e.from.0, e.seq)).collect();
        assert_eq!(order, vec![(0, 5), (1, 0), (1, 1), (2, 0)]);
    }
}
