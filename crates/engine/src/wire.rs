//! Message wire format.
//!
//! Messages between subgraphs in the *same* partition are moved as values
//! (same address space — GoFFish's intra-host messages stay inside one JVM).
//! Messages crossing partitions are **really serialised** through this
//! module and deserialised on the receiving worker, so the engine's
//! "partition overhead" metric measures genuine marshalling work and the
//! byte counters reflect actual on-the-wire sizes.

use crate::error::WireError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tempograph_core::VertexIdx;
use tempograph_partition::SubgraphId;

// ---- checked primitive reads -------------------------------------------
//
// The `bytes` cursor panics on underflow; every read below checks
// `remaining()` first so a truncated or corrupt frame becomes a typed
// [`WireError`] instead of a worker panic (lint rule P01).

#[inline]
fn need(buf: &Bytes, n: usize, context: &'static str) -> Result<(), WireError> {
    if buf.remaining() < n {
        return Err(WireError::Eof {
            context,
            needed: n,
            remaining: buf.remaining(),
        });
    }
    Ok(())
}

/// Checked little-endian `u8` read.
#[inline]
pub fn get_u8(buf: &mut Bytes, context: &'static str) -> Result<u8, WireError> {
    need(buf, 1, context)?;
    Ok(buf.get_u8())
}

/// Checked little-endian `u16` read.
#[inline]
pub fn get_u16(buf: &mut Bytes, context: &'static str) -> Result<u16, WireError> {
    need(buf, 2, context)?;
    Ok(buf.get_u16_le())
}

/// Checked little-endian `u32` read.
#[inline]
pub fn get_u32(buf: &mut Bytes, context: &'static str) -> Result<u32, WireError> {
    need(buf, 4, context)?;
    Ok(buf.get_u32_le())
}

/// Checked little-endian `u64` read.
#[inline]
pub fn get_u64(buf: &mut Bytes, context: &'static str) -> Result<u64, WireError> {
    need(buf, 8, context)?;
    Ok(buf.get_u64_le())
}

/// Checked little-endian `i64` read.
#[inline]
pub fn get_i64(buf: &mut Bytes, context: &'static str) -> Result<i64, WireError> {
    need(buf, 8, context)?;
    Ok(buf.get_i64_le())
}

/// Checked little-endian `f64` read.
#[inline]
pub fn get_f64(buf: &mut Bytes, context: &'static str) -> Result<f64, WireError> {
    need(buf, 8, context)?;
    Ok(buf.get_f64_le())
}

/// A message payload that can cross partition boundaries.
///
/// Implementations must be exact round-trips: `decode(encode(m)) == Ok(m)`.
/// Wire buffers are engine-internal and always produced by `encode`, so a
/// decode failure means corruption — but it surfaces as a typed
/// [`WireError`] (which the worker propagates as an
/// [`crate::EngineError`]), never as a panic in the hot path.
pub trait WireMsg: Send + Clone + 'static {
    /// Append this message to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Read one message back from `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;
}

impl WireMsg for () {
    fn encode(&self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(())
    }
}

impl WireMsg for u16 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u16_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_u16(buf, "u16")
    }
}

impl WireMsg for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_u32(buf, "u32")
    }
}

impl WireMsg for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_u64(buf, "u64")
    }
}

impl WireMsg for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_i64(buf, "i64")
    }
}

impl WireMsg for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_f64(buf, "f64")
    }
}

impl WireMsg for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(get_u8(buf, "bool")? != 0)
    }
}

impl WireMsg for VertexIdx {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.0);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(VertexIdx(get_u32(buf, "VertexIdx")?))
    }
}

impl WireMsg for SubgraphId {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.0);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(SubgraphId(get_u32(buf, "SubgraphId")?))
    }
}

impl WireMsg for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = get_u32(buf, "String length")? as usize;
        need(buf, len, "String bytes")?;
        let raw = buf.split_to(len);
        // Validate in place, then copy once — `String::from_utf8(to_vec())`
        // would copy before validating.
        match std::str::from_utf8(&raw) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(WireError::Utf8 { context: "String" }),
        }
    }
}

impl<T: WireMsg> WireMsg for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for x in self {
            x.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = get_u32(buf, "Vec length")? as usize;
        // Cap the speculative reservation by what the buffer could possibly
        // hold, so a corrupt length cannot trigger a huge allocation before
        // the element reads fail.
        let mut v = Vec::with_capacity(len.min(buf.remaining().max(1)));
        for _ in 0..len {
            v.push(T::decode(buf)?);
        }
        Ok(v)
    }
}

impl<T: WireMsg> WireMsg for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(x) => {
                buf.put_u8(1);
                x.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        // Explicit tags (lint rule W01): an unknown tag is corruption, not
        // an implicit `Some`.
        match get_u8(buf, "Option tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(WireError::BadTag {
                context: "Option",
                tag,
            }),
        }
    }
}

impl<A: WireMsg, B: WireMsg> WireMsg for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: WireMsg, B: WireMsg, C: WireMsg> WireMsg for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

/// A routed message: payload plus source/destination subgraphs and a
/// per-sender sequence number used for deterministic delivery ordering.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// Sending subgraph.
    pub from: SubgraphId,
    /// Destination subgraph.
    pub to: SubgraphId,
    /// Sender-assigned sequence number (unique per sender per phase).
    pub seq: u32,
    /// The payload.
    pub payload: M,
}

impl<M: WireMsg> Envelope<M> {
    /// Append the envelope (header + payload) to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.from.0);
        buf.put_u32_le(self.to.0);
        buf.put_u32_le(self.seq);
        self.payload.encode(buf);
    }

    /// Read one envelope back.
    pub fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let from = SubgraphId(get_u32(buf, "Envelope.from")?);
        let to = SubgraphId(get_u32(buf, "Envelope.to")?);
        let seq = get_u32(buf, "Envelope.seq")?;
        Ok(Envelope {
            from,
            to,
            seq,
            payload: M::decode(buf)?,
        })
    }
}

/// Sort envelopes into the engine's canonical deterministic delivery order.
///
/// `(from, seq)` keys are unique within any delivery scope (per-subgraph
/// send counters are never reset — see `Outbox::seq`), so the unstable sort
/// is fully deterministic. This is the *reference* delivery order: the hot
/// path reproduces it run-merge-wise via
/// [`crate::batch::merge_sorted_runs`], and property tests hold the two
/// equal.
pub fn sort_envelopes<M>(envelopes: &mut [Envelope<M>]) {
    envelopes.sort_unstable_by_key(|e| (e.from, e.seq));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: WireMsg + PartialEq + std::fmt::Debug>(m: M) {
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(M::decode(&mut bytes).unwrap(), m);
        assert_eq!(bytes.remaining(), 0, "must consume exactly");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(());
        roundtrip(42u32);
        roundtrip(u64::MAX);
        roundtrip(-17i64);
        roundtrip(2.5f64);
        roundtrip(true);
        roundtrip(VertexIdx(9));
        roundtrip(SubgraphId(3));
        roundtrip(String::from("héllo"));
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<String>::new());
        roundtrip(Some((VertexIdx(1), 2.5f64)));
        roundtrip(None::<u32>);
        roundtrip((VertexIdx(5), 1.25f64, 99u64));
        roundtrip(vec![vec![VertexIdx(0)], vec![]]);
    }

    #[test]
    fn truncated_buffers_are_typed_errors_not_panics() {
        // Empty buffer for every fixed-width primitive.
        assert!(matches!(
            u32::decode(&mut Bytes::new()),
            Err(WireError::Eof { .. })
        ));
        assert!(matches!(
            f64::decode(&mut Bytes::new()),
            Err(WireError::Eof { .. })
        ));
        // A string whose length prefix overruns the buffer.
        let mut buf = BytesMut::new();
        buf.put_u32_le(1000);
        buf.put_slice(b"short");
        assert!(matches!(
            String::decode(&mut buf.freeze()),
            Err(WireError::Eof { .. })
        ));
        // A vec truncated mid-element.
        let mut buf = BytesMut::new();
        vec![1u64, 2, 3].encode(&mut buf);
        let full = buf.freeze();
        let mut cut = Bytes::copy_from_slice(&full[..full.len() - 4]);
        assert!(matches!(
            Vec::<u64>::decode(&mut cut),
            Err(WireError::Eof { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert_eq!(
            String::decode(&mut buf.freeze()),
            Err(WireError::Utf8 { context: "String" })
        );
    }

    #[test]
    fn unknown_option_tag_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        assert_eq!(
            Option::<u32>::decode(&mut buf.freeze()),
            Err(WireError::BadTag {
                context: "Option",
                tag: 2
            })
        );
    }

    #[test]
    fn envelope_roundtrip() {
        let e = Envelope {
            from: SubgraphId(1),
            to: SubgraphId(2),
            seq: 7,
            payload: (VertexIdx(3), 1.5f64),
        };
        let mut buf = BytesMut::new();
        e.encode(&mut buf);
        let back = Envelope::<(VertexIdx, f64)>::decode(&mut buf.freeze()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn canonical_order_is_by_sender_then_seq() {
        let mk = |from: u32, seq: u32| Envelope {
            from: SubgraphId(from),
            to: SubgraphId(0),
            seq,
            payload: (),
        };
        let mut v = vec![mk(2, 0), mk(1, 1), mk(1, 0), mk(0, 5)];
        sort_envelopes(&mut v);
        let order: Vec<(u32, u32)> = v.iter().map(|e| (e.from.0, e.seq)).collect();
        assert_eq!(order, vec![(0, 5), (1, 0), (1, 1), (2, 0)]);
    }
}
