//! TCP framing for the [`crate::transport::Tcp`] transport.
//!
//! Everything that crosses a socket is a **frame**: a fixed 33-byte header
//! followed by a checksummed payload. One frame type carries both data
//! (encoded `MessageBatch` bytes) and control traffic (handshakes, barrier
//! contributions/aggregates, abort notices), so a connection needs exactly
//! one reader loop and corruption anywhere surfaces as a typed error.
//!
//! ```text
//! offset  size  field
//!      0     4  magic          b"TGFR"
//!      4     2  version        u16 le (currently 1)
//!      6     1  kind           FrameKind tag
//!      7     2  sender         partition id (u16::MAX = coordinator)
//!      9     4  epoch          recovery attempt this frame belongs to
//!     13     8  seq            per (sender → receiver) data-frame counter,
//!                              counted from 1; 0 for control frames
//!     21     4  len            payload length, u32 le (capped)
//!     25     8  checksum       fnv1a64_words of the payload
//!     33     …  payload
//! ```
//!
//! The header itself is not checksummed: the engine trusts TCP's integrity
//! for the fixed-width fields and uses the payload checksum to catch the
//! one corruption mode the fault plan injects (damaged payload bytes, see
//! [`crate::FrameFault::Truncate`]). A checksum mismatch is detected *after*
//! the whole frame has been consumed, so the stream stays frame-aligned and
//! the receiver can simply await the retransmission.
//!
//! [`Frame::decode`] is a pure buffer decoder (what the codec proptests
//! attack); [`read_frame`]/[`write_frame`] run the same codec over any
//! `Read`/`Write` — an in-memory pipe in tests, a [`FrameConn`]-wrapped
//! `TcpStream` in production.

use crate::error::{EngineError, WireError};
use crate::sync::{Aggregate, Contribution};
use crate::wire::{get_u16, get_u32, get_u64, get_u8, WireMsg};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use tempograph_gofs::codec::fnv1a64_words;
use tempograph_trace::Clock;

/// Frame magic: "TempoGraph FRame".
pub const FRAME_MAGIC: [u8; 4] = *b"TGFR";

/// Current frame format version. Bump on any header/payload layout change;
/// a version mismatch at decode is corruption (mixed-build clusters are not
/// supported). v2 added the telemetry plane ([`FrameKind::Telemetry`],
/// [`FrameKind::StatusRequest`], [`FrameKind::StatusReply`]).
pub const FRAME_VERSION: u16 = 2;

/// Fixed header size in bytes (see the module-level layout table).
pub const HEADER_LEN: usize = 33;

/// Upper bound on a declared payload length. A corrupt `len` field must not
/// make a stream reader allocate gigabytes before the payload read fails.
pub const MAX_PAYLOAD_LEN: u32 = 256 << 20;

/// `sender` value identifying the coordinator (never a valid partition:
/// partition counts are far below `u16::MAX`).
pub const COORDINATOR: u16 = u16::MAX;

/// What a frame carries. Tags are part of the wire format — append only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Worker → coordinator: "partition P is up, my peer listener is at
    /// ADDR". Payload: [`HelloMsg`].
    Hello = 1,
    /// Coordinator → worker: epoch begins. Payload: [`StartMsg`].
    Start = 2,
    /// Worker → coordinator: barrier arrival. Payload: [`Contribution`].
    Contribution = 3,
    /// Coordinator → worker: barrier release. Payload: [`Aggregate`].
    Aggregate = 4,
    /// Coordinator → worker: a peer died, unwind now. Payload: [`AbortMsg`].
    Abort = 5,
    /// Worker → worker: encoded `MessageBatch` for the current superstep.
    DataSuperstep = 6,
    /// Worker → worker: encoded `MessageBatch` for the next timestep.
    DataNextTimestep = 7,
    /// Worker → worker: end-of-phase watermark — "I have sent you `seq`
    /// data frames in total this epoch". Payload: empty (watermark rides in
    /// the header's `seq` field).
    Sentinel = 8,
    /// Worker → worker: mesh handshake naming the dialing partition.
    PeerHello = 9,
    /// Worker → coordinator: final results. Payload: encoded
    /// `WorkerEssentials`.
    Output = 10,
    /// Worker → coordinator: cumulative observability snapshot (trace
    /// events, metrics shard, attribution rows). Sent once per barrier
    /// round and once at job end, only when observability is armed.
    /// Payload: [`TelemetryMsg`].
    Telemetry = 11,
    /// Introspection client → coordinator: status probe. Payload: empty.
    StatusRequest = 12,
    /// Coordinator → introspection client: per-worker status board.
    /// Payload: [`StatusReplyMsg`].
    StatusReply = 13,
}

impl FrameKind {
    fn tag(self) -> u8 {
        self as u8
    }
}

/// One unit of socket traffic. See the module docs for the byte layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Sending partition ([`COORDINATOR`] for the coordinator).
    pub sender: u16,
    /// Recovery epoch the frame belongs to.
    pub epoch: u32,
    /// Data-frame sequence number (per sender → receiver direction,
    /// counted from 1); watermark for [`FrameKind::Sentinel`]; 0 otherwise.
    pub seq: u64,
    /// The checksummed payload.
    pub payload: Bytes,
}

impl Frame {
    /// A control frame (seq = 0).
    pub fn control(kind: FrameKind, sender: u16, epoch: u32, payload: Bytes) -> Frame {
        Frame {
            kind,
            sender,
            epoch,
            seq: 0,
            payload,
        }
    }

    /// Serialise header + payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_slice(&FRAME_MAGIC);
        buf.put_u16_le(FRAME_VERSION);
        buf.put_u8(self.kind.tag());
        buf.put_u16_le(self.sender);
        buf.put_u32_le(self.epoch);
        buf.put_u64_le(self.seq);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_u64_le(fnv1a64_words(&self.payload));
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decode one frame from an in-memory buffer, verifying the payload
    /// checksum. Any malformation — short buffer, wrong magic/version,
    /// unknown kind, payload overrun, checksum mismatch — is a typed
    /// [`WireError`], never a panic.
    pub fn decode(buf: &mut Bytes) -> Result<Frame, WireError> {
        let h = Header::decode(buf)?;
        if buf.remaining() < h.len {
            return Err(WireError::Eof {
                context: "frame payload",
                needed: h.len,
                remaining: buf.remaining(),
            });
        }
        let payload = buf.split_to(h.len);
        if fnv1a64_words(&payload) != h.checksum {
            return Err(WireError::Checksum {
                context: "frame payload",
            });
        }
        Ok(Frame {
            kind: h.kind,
            sender: h.sender,
            epoch: h.epoch,
            seq: h.seq,
            payload,
        })
    }
}

/// The parsed fixed-width header, before the payload is available.
struct Header {
    kind: FrameKind,
    sender: u16,
    epoch: u32,
    seq: u64,
    len: usize,
    checksum: u64,
}

impl Header {
    /// Decode and validate the 33-byte header (magic, version, kind tag,
    /// length cap). Shared by the pure decoder and the stream reader.
    fn decode(buf: &mut Bytes) -> Result<Header, WireError> {
        let magic = get_u32(buf, "frame magic")?;
        if magic != u32::from_le_bytes(FRAME_MAGIC) {
            return Err(WireError::BadTag {
                context: "frame magic",
                tag: magic.to_le_bytes()[0],
            });
        }
        let version = get_u16(buf, "frame version")?;
        if version != FRAME_VERSION {
            return Err(WireError::BadTag {
                context: "frame version",
                tag: version.to_le_bytes()[0],
            });
        }
        let kind = match get_u8(buf, "frame kind")? {
            1 => FrameKind::Hello,
            2 => FrameKind::Start,
            3 => FrameKind::Contribution,
            4 => FrameKind::Aggregate,
            5 => FrameKind::Abort,
            6 => FrameKind::DataSuperstep,
            7 => FrameKind::DataNextTimestep,
            8 => FrameKind::Sentinel,
            9 => FrameKind::PeerHello,
            10 => FrameKind::Output,
            11 => FrameKind::Telemetry,
            12 => FrameKind::StatusRequest,
            13 => FrameKind::StatusReply,
            tag => {
                return Err(WireError::BadTag {
                    context: "frame kind",
                    tag,
                })
            }
        };
        let sender = get_u16(buf, "frame sender")?;
        let epoch = get_u32(buf, "frame epoch")?;
        let seq = get_u64(buf, "frame seq")?;
        let len = get_u32(buf, "frame length")? as usize;
        let checksum = get_u64(buf, "frame checksum")?;
        if len > MAX_PAYLOAD_LEN as usize {
            // The length field is corrupt; report its most significant
            // byte as the offending tag so the error names evidence.
            return Err(WireError::BadTag {
                context: "frame length (over cap)",
                tag: (len >> 24) as u8,
            });
        }
        Ok(Header {
            kind,
            sender,
            epoch,
            seq,
            len,
            checksum,
        })
    }
}

fn net_err(context: String) -> impl FnOnce(io::Error) -> EngineError {
    move |e| EngineError::Net {
        context,
        detail: e.to_string(),
    }
}

/// Fill `buf` from `r`, distinguishing the two EOF shapes the coordinator
/// must tell apart: a clean close *between* frames (`at_boundary` and zero
/// bytes read — the peer hung up) versus an EOF *inside* a frame (the peer
/// died mid-write; the frame is unrecoverable).
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    peer: &str,
    at_boundary: bool,
) -> Result<(), EngineError> {
    let mut filled = 0;
    while filled < buf.len() {
        let Some(rest) = buf.get_mut(filled..) else {
            break;
        };
        match r.read(rest) {
            Ok(0) => {
                let detail = if at_boundary && filled == 0 {
                    "connection closed by peer".to_string()
                } else {
                    format!(
                        "mid-frame EOF: connection closed after {filled} of {} bytes",
                        buf.len()
                    )
                };
                return Err(EngineError::Net {
                    context: format!("reading frame from {peer}"),
                    detail,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(net_err(format!("reading frame from {peer}"))(e)),
        }
    }
    Ok(())
}

/// Read one frame from any byte stream. Returns the frame and the total
/// bytes consumed. A checksum mismatch surfaces as
/// `EngineError::Wire(WireError::Checksum)` **after** the full frame has
/// been consumed, so the stream stays aligned and the caller may keep
/// reading (that is how damaged-then-retransmitted data frames are
/// skipped).
pub fn read_frame(r: &mut impl Read, peer: &str) -> Result<(Frame, usize), EngineError> {
    let mut header = [0u8; HEADER_LEN];
    read_full(r, &mut header, peer, true)?;
    let h = match Header::decode(&mut Bytes::copy_from_slice(&header)) {
        Ok(h) => h,
        Err(WireError::BadTag {
            context: "frame length (over cap)",
            ..
        }) => {
            return Err(EngineError::Protocol {
                detail: format!(
                    "frame from {peer} declares a payload over the {MAX_PAYLOAD_LEN}-byte cap"
                ),
            })
        }
        Err(e) => return Err(EngineError::Wire(e)),
    };
    let mut payload = vec![0u8; h.len];
    read_full(r, &mut payload, peer, false)?;
    if fnv1a64_words(&payload) != h.checksum {
        return Err(EngineError::Wire(WireError::Checksum {
            context: "frame payload",
        }));
    }
    Ok((
        Frame {
            kind: h.kind,
            sender: h.sender,
            epoch: h.epoch,
            seq: h.seq,
            payload: Bytes::from(payload),
        },
        HEADER_LEN + h.len,
    ))
}

/// Write one frame to any byte stream; returns bytes written.
pub fn write_frame(w: &mut impl Write, frame: &Frame, peer: &str) -> Result<usize, EngineError> {
    let enc = frame.encode();
    w.write_all(&enc)
        .and_then(|()| w.flush())
        .map_err(net_err(format!("writing frame to {peer}")))?;
    Ok(enc.len())
}

/// Write a deliberately damaged copy of `frame`: the last byte of the
/// encoding is flipped (a payload byte when there is a payload, a checksum
/// byte otherwise), so the header stays parseable but the receiver's
/// checksum verification fails and the frame is discarded. Fault injection
/// only ([`crate::FrameFault::Truncate`]).
pub fn write_frame_corrupted(
    w: &mut impl Write,
    frame: &Frame,
    peer: &str,
) -> Result<usize, EngineError> {
    let mut enc = frame.encode().to_vec();
    if let Some(last) = enc.last_mut() {
        *last ^= 0xff;
    }
    w.write_all(&enc)
        .and_then(|()| w.flush())
        .map_err(net_err(format!("writing frame to {peer}")))?;
    Ok(enc.len())
}

/// A framed, bidirectional TCP connection: buffered reads, Nagle disabled,
/// cumulative byte accounting for the transport's counters.
pub struct FrameConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: String,
    bytes_sent: u64,
    bytes_received: u64,
}

impl FrameConn {
    /// Wrap an established stream. `peer` is a human label ("peer 2",
    /// "coordinator") used in error contexts.
    pub fn new(stream: TcpStream, peer: impl Into<String>) -> Result<FrameConn, EngineError> {
        let peer = peer.into();
        stream
            .set_nodelay(true)
            .map_err(net_err(format!("configuring connection to {peer}")))?;
        let writer = stream
            .try_clone()
            .map_err(net_err(format!("cloning connection to {peer}")))?;
        Ok(FrameConn {
            reader: BufReader::new(stream),
            writer,
            peer,
            bytes_sent: 0,
            bytes_received: 0,
        })
    }

    /// The peer label this connection reports in errors.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Relabel the peer once its identity is known (the coordinator learns
    /// which partition a connection belongs to from its Hello frame).
    pub fn set_peer(&mut self, peer: impl Into<String>) {
        self.peer = peer.into();
    }

    /// Send one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), EngineError> {
        let n = write_frame(&mut self.writer, frame, &self.peer)?;
        self.bytes_sent += n as u64;
        Ok(())
    }

    /// Send a checksum-damaged copy of `frame` (fault injection only).
    pub fn send_corrupted(&mut self, frame: &Frame) -> Result<(), EngineError> {
        let n = write_frame_corrupted(&mut self.writer, frame, &self.peer)?;
        self.bytes_sent += n as u64;
        Ok(())
    }

    /// Receive one frame. See [`read_frame`] for the checksum-mismatch
    /// contract (typed error, stream stays aligned).
    pub fn recv(&mut self) -> Result<Frame, EngineError> {
        let (f, n) = read_frame(&mut self.reader, &self.peer)?;
        self.bytes_received += n as u64;
        Ok(f)
    }

    /// Cumulative bytes written to this connection.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Cumulative bytes read from this connection.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Half-close the write side (lets the peer observe a clean EOF while
    /// this side keeps reading). Best-effort.
    pub fn shutdown_write(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }
}

/// Dial `addr`, retrying with doubling backoff (2 ms base, 200 ms cap,
/// ~4 s total) — workers race the coordinator/each other to bind, so the
/// first dials legitimately lose.
pub fn connect_with_retry(addr: &str, peer: &str) -> Result<TcpStream, EngineError> {
    connect_with_retry_attempts(addr, peer, 25)
}

fn connect_with_retry_attempts(
    addr: &str,
    peer: &str,
    attempts: u32,
) -> Result<TcpStream, EngineError> {
    let mut backoff_ms = 2u64;
    let mut last = String::new();
    for attempt in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
            backoff_ms = (backoff_ms * 2).min(200);
        }
    }
    Err(EngineError::Net {
        context: format!("dialing {peer} at {addr}"),
        detail: format!("{last} (after {attempts} attempts)"),
    })
}

/// Accept one connection with a deadline, so a worker that never dials in
/// (crashed before its handshake) turns into a typed timeout instead of a
/// hang. Restores the listener to blocking mode on success.
pub fn accept_with_deadline(
    listener: &TcpListener,
    deadline_ms: u64,
    what: &str,
) -> Result<TcpStream, EngineError> {
    listener
        .set_nonblocking(true)
        .map_err(net_err(format!("configuring listener for {what}")))?;
    let clock = Clock::start();
    loop {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false)
                    .map_err(net_err(format!("configuring connection for {what}")))?;
                return Ok(s);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if clock.elapsed_ns() > deadline_ms.saturating_mul(1_000_000) {
                    return Err(EngineError::Net {
                        context: format!("accepting {what}"),
                        detail: format!("timed out after {deadline_ms} ms"),
                    });
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => return Err(net_err(format!("accepting {what}"))(e)),
        }
    }
}

// ---- control payloads ---------------------------------------------------

/// Worker → coordinator handshake: names the partition and where its peer
/// listener accepts mesh connections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HelloMsg {
    /// The partition this worker serves.
    pub partition: u16,
    /// Address of the worker's peer-mesh listener ("127.0.0.1:PORT").
    pub listen_addr: String,
}

impl WireMsg for HelloMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.partition.encode(buf);
        self.listen_addr.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(HelloMsg {
            partition: u16::decode(buf)?,
            listen_addr: String::decode(buf)?,
        })
    }
}

/// Sentinel for [`StartMsg::resume_from`]: start fresh, no checkpoint.
pub const RESUME_NONE: u64 = u64::MAX;

/// Coordinator → worker: begin (or re-begin, after recovery) the epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StartMsg {
    /// Epoch number (0 on the first attempt; +1 per recovery).
    pub epoch: u32,
    /// Timestep of the checkpoint to restore, or [`RESUME_NONE`].
    pub resume_from: u64,
    /// Every worker's mesh listener address, indexed by partition.
    pub peer_addrs: Vec<String>,
    /// Fault-plan event indices already fired in earlier epochs (see
    /// [`crate::FaultPlan::fired_indices`]).
    pub fired: Vec<u32>,
}

impl WireMsg for StartMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.epoch.encode(buf);
        self.resume_from.encode(buf);
        self.peer_addrs.encode(buf);
        self.fired.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(StartMsg {
            epoch: u32::decode(buf)?,
            resume_from: u64::decode(buf)?,
            peer_addrs: Vec::<String>::decode(buf)?,
            fired: Vec::<u32>::decode(buf)?,
        })
    }
}

/// Coordinator → worker: a peer worker died; unwind this epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbortMsg {
    /// The partition whose worker died.
    pub dead_partition: u16,
    /// Evidence (exit status, socket error) for error reporting.
    pub detail: String,
}

impl WireMsg for AbortMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.dead_partition.encode(buf);
        self.detail.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(AbortMsg {
            dead_partition: u16::decode(buf)?,
            detail: String::decode(buf)?,
        })
    }
}

impl WireMsg for Contribution {
    fn encode(&self, buf: &mut BytesMut) {
        self.msgs_sent.encode(buf);
        self.all_halted.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Contribution {
            msgs_sent: u64::decode(buf)?,
            all_halted: bool::decode(buf)?,
        })
    }
}

impl WireMsg for Aggregate {
    fn encode(&self, buf: &mut BytesMut) {
        self.total_msgs.encode(buf);
        self.all_halted.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Aggregate {
            total_msgs: u64::decode(buf)?,
            all_halted: bool::decode(buf)?,
        })
    }
}

// ---- telemetry payloads -------------------------------------------------

/// One recorded trace event in wire form. A plain tagged struct rather than
/// an enum so the field layout is locked by the W02 schema goldens: `kind`
/// is 1 = span, 2 = instant, 3 = counter (explicit tags, validated at
/// decode). `a` carries the span start / event timestamp, `b` the span
/// duration / counter value (0 for instants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEventWire {
    /// Event discriminant: 1 = span, 2 = instant, 3 = counter.
    pub kind: u8,
    /// Event name (interned back to `&'static str` on the receiver).
    pub name: String,
    /// Span `start_ns`; instant/counter `ts_ns`.
    pub a: u64,
    /// Span `dur_ns`; counter `value`; 0 for instants.
    pub b: u64,
    /// Optional `(key, value)` argument (spans and instants only).
    pub arg: Option<(String, u64)>,
}

impl TraceEventWire {
    /// Wire form of a recorded event (worker side, before shipping).
    pub(crate) fn from_event(ev: &tempograph_trace::TraceEvent) -> TraceEventWire {
        use tempograph_trace::TraceEvent;
        match *ev {
            TraceEvent::Span {
                name,
                start_ns,
                dur_ns,
                arg,
            } => TraceEventWire {
                kind: 1,
                name: name.to_string(),
                a: start_ns,
                b: dur_ns,
                arg: arg.map(|(k, v)| (k.to_string(), v)),
            },
            TraceEvent::Instant { name, ts_ns, arg } => TraceEventWire {
                kind: 2,
                name: name.to_string(),
                a: ts_ns,
                b: 0,
                arg: arg.map(|(k, v)| (k.to_string(), v)),
            },
            TraceEvent::Counter { name, ts_ns, value } => TraceEventWire {
                kind: 3,
                name: name.to_string(),
                a: ts_ns,
                b: value,
                arg: None,
            },
        }
    }

    /// Rebuild the in-memory event (coordinator side). Names are interned
    /// to `&'static str` through the same pool checkpoint restore uses, so
    /// repeated names across frames share one allocation. `kind` was
    /// validated at decode; 3 (counter) is the residual arm.
    pub(crate) fn into_event(self) -> tempograph_trace::TraceEvent {
        use tempograph_trace::TraceEvent;
        let name = crate::checkpoint::intern(&self.name);
        let arg = self.arg.map(|(k, v)| (crate::checkpoint::intern(&k), v));
        match self.kind {
            1 => TraceEvent::Span {
                name,
                start_ns: self.a,
                dur_ns: self.b,
                arg,
            },
            2 => TraceEvent::Instant {
                name,
                ts_ns: self.a,
                arg,
            },
            _ => TraceEvent::Counter {
                name,
                ts_ns: self.a,
                value: self.b,
            },
        }
    }
}

impl WireMsg for TraceEventWire {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.kind);
        self.name.encode(buf);
        self.a.encode(buf);
        self.b.encode(buf);
        self.arg.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let kind = match get_u8(buf, "trace event kind")? {
            1 => 1,
            2 => 2,
            3 => 3,
            tag => {
                return Err(WireError::BadTag {
                    context: "trace event kind",
                    tag,
                })
            }
        };
        Ok(TraceEventWire {
            kind,
            name: String::decode(buf)?,
            a: u64::decode(buf)?,
            b: u64::decode(buf)?,
            arg: Option::<(String, u64)>::decode(buf)?,
        })
    }
}

/// A log2-bucket histogram in wire form. `buckets` must hold exactly
/// [`tempograph_metrics::BUCKETS`] counts (validated at decode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramWire {
    /// Per-bucket observation counts (length = `BUCKETS`).
    pub buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramWire {
    pub(crate) fn from_histogram(h: &tempograph_metrics::Histogram) -> HistogramWire {
        HistogramWire {
            buckets: h.buckets().to_vec(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
        }
    }

    /// Rebuild the histogram. The bucket count was validated at decode;
    /// `zip` makes a short vector (impossible off the wire) harmless.
    pub(crate) fn into_histogram(self) -> tempograph_metrics::Histogram {
        let mut buckets = [0u64; tempograph_metrics::BUCKETS];
        for (slot, &count) in buckets.iter_mut().zip(&self.buckets) {
            *slot = count;
        }
        tempograph_metrics::Histogram::from_parts(buckets, self.count, self.sum, self.min, self.max)
    }
}

impl WireMsg for HistogramWire {
    fn encode(&self, buf: &mut BytesMut) {
        self.buckets.encode(buf);
        self.count.encode(buf);
        self.sum.encode(buf);
        self.min.encode(buf);
        self.max.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let buckets = Vec::<u64>::decode(buf)?;
        if buckets.len() != tempograph_metrics::BUCKETS {
            return Err(WireError::BadTag {
                context: "histogram bucket count",
                tag: buckets.len() as u8,
            });
        }
        Ok(HistogramWire {
            buckets,
            count: u64::decode(buf)?,
            sum: u64::decode(buf)?,
            min: u64::decode(buf)?,
            max: u64::decode(buf)?,
        })
    }
}

/// A worker's cumulative metrics shard in wire form (mirrors
/// `crate::metrics::MetricsShard` field-for-field).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsShardWire {
    /// Barriered compute durations.
    pub compute_ns: HistogramWire,
    /// Barrier wait durations.
    pub barrier_wait_ns: HistogramWire,
    /// Message marshalling/hand-off durations.
    pub send_ns: HistogramWire,
    /// Checkpoint snapshot+write durations.
    pub checkpoint_write_ns: HistogramWire,
    /// Checkpoint restore durations.
    pub recovery_restore_ns: HistogramWire,
    /// GoFS instance-cache hits.
    pub cache_hits: u64,
    /// GoFS instance-cache misses.
    pub cache_misses: u64,
    /// GoFS instance-cache evictions.
    pub cache_evictions: u64,
    /// Bytes read and decoded from slice files.
    pub bytes_read: u64,
}

impl MetricsShardWire {
    pub(crate) fn from_shard(s: &crate::metrics::MetricsShard) -> MetricsShardWire {
        MetricsShardWire {
            compute_ns: HistogramWire::from_histogram(&s.compute_ns),
            barrier_wait_ns: HistogramWire::from_histogram(&s.barrier_wait_ns),
            send_ns: HistogramWire::from_histogram(&s.send_ns),
            checkpoint_write_ns: HistogramWire::from_histogram(&s.checkpoint_write_ns),
            recovery_restore_ns: HistogramWire::from_histogram(&s.recovery_restore_ns),
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            cache_evictions: s.cache_evictions,
            bytes_read: s.bytes_read,
        }
    }

    pub(crate) fn into_shard(self) -> crate::metrics::MetricsShard {
        crate::metrics::MetricsShard {
            compute_ns: self.compute_ns.into_histogram(),
            barrier_wait_ns: self.barrier_wait_ns.into_histogram(),
            send_ns: self.send_ns.into_histogram(),
            checkpoint_write_ns: self.checkpoint_write_ns.into_histogram(),
            recovery_restore_ns: self.recovery_restore_ns.into_histogram(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_evictions: self.cache_evictions,
            bytes_read: self.bytes_read,
        }
    }
}

impl WireMsg for MetricsShardWire {
    fn encode(&self, buf: &mut BytesMut) {
        self.compute_ns.encode(buf);
        self.barrier_wait_ns.encode(buf);
        self.send_ns.encode(buf);
        self.checkpoint_write_ns.encode(buf);
        self.recovery_restore_ns.encode(buf);
        self.cache_hits.encode(buf);
        self.cache_misses.encode(buf);
        self.cache_evictions.encode(buf);
        self.bytes_read.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(MetricsShardWire {
            compute_ns: HistogramWire::decode(buf)?,
            barrier_wait_ns: HistogramWire::decode(buf)?,
            send_ns: HistogramWire::decode(buf)?,
            checkpoint_write_ns: HistogramWire::decode(buf)?,
            recovery_restore_ns: HistogramWire::decode(buf)?,
            cache_hits: u64::decode(buf)?,
            cache_misses: u64::decode(buf)?,
            cache_evictions: u64::decode(buf)?,
            bytes_read: u64::decode(buf)?,
        })
    }
}

/// One per-(subgraph, timestep) attribution row in wire form (mirrors
/// `crate::metrics::AttributionRow`; `timestep == u32::MAX` ⇒ merge phase).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttrRowWire {
    /// Subgraph id.
    pub subgraph: u32,
    /// Timestep index (`u32::MAX` ⇒ merge phase).
    pub timestep: u32,
    /// Measured nanoseconds inside this subgraph's program hooks.
    pub compute_ns: u64,
    /// Program-hook invocations folded into this row.
    pub invocations: u32,
}

impl AttrRowWire {
    pub(crate) fn from_row(r: &crate::metrics::AttributionRow) -> AttrRowWire {
        AttrRowWire {
            subgraph: r.subgraph.0,
            timestep: r.timestep,
            compute_ns: r.compute_ns,
            invocations: r.invocations,
        }
    }

    pub(crate) fn into_row(self) -> crate::metrics::AttributionRow {
        crate::metrics::AttributionRow {
            subgraph: tempograph_partition::SubgraphId(self.subgraph),
            timestep: self.timestep,
            compute_ns: self.compute_ns,
            invocations: self.invocations,
        }
    }
}

impl WireMsg for AttrRowWire {
    fn encode(&self, buf: &mut BytesMut) {
        self.subgraph.encode(buf);
        self.timestep.encode(buf);
        self.compute_ns.encode(buf);
        self.invocations.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(AttrRowWire {
            subgraph: u32::decode(buf)?,
            timestep: u32::decode(buf)?,
            compute_ns: u64::decode(buf)?,
            invocations: u32::decode(buf)?,
        })
    }
}

/// Worker → coordinator observability snapshot, one per barrier round plus
/// one final flush. `shard` and `attr` are **cumulative** snapshots (the
/// coordinator replaces, never adds, so a re-sent snapshot cannot double
/// count); `events` are **drained** increments (sent exactly once).
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryMsg {
    /// Timestep this flush closes (worker-local progress marker).
    pub timestep: u32,
    /// Supersteps the closed timestep ran.
    pub supersteps: u32,
    /// Barrier wait accumulated in the closed timestep, nanoseconds.
    pub barrier_wait_ns: u64,
    /// Worker clock reading at flush time, nanoseconds since the worker's
    /// session epoch. Worker clock domain: comparable within one worker's
    /// frames, not across workers or with the coordinator clock.
    pub clock_ns: u64,
    /// Cumulative bytes this worker has written to sockets.
    pub bytes_sent: u64,
    /// Cumulative bytes this worker has read from sockets.
    pub bytes_received: u64,
    /// True for the end-of-job flush (sent just before the Output frame).
    pub final_flush: bool,
    /// Trace events recorded since the previous flush (drained increments).
    pub events: Vec<TraceEventWire>,
    /// Cumulative metrics shard snapshot (when metrics are armed).
    pub shard: Option<MetricsShardWire>,
    /// Cumulative attribution snapshot (when attribution is armed).
    pub attr: Vec<AttrRowWire>,
}

impl WireMsg for TelemetryMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.timestep.encode(buf);
        self.supersteps.encode(buf);
        self.barrier_wait_ns.encode(buf);
        self.clock_ns.encode(buf);
        self.bytes_sent.encode(buf);
        self.bytes_received.encode(buf);
        self.final_flush.encode(buf);
        self.events.encode(buf);
        self.shard.encode(buf);
        self.attr.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(TelemetryMsg {
            timestep: u32::decode(buf)?,
            supersteps: u32::decode(buf)?,
            barrier_wait_ns: u64::decode(buf)?,
            clock_ns: u64::decode(buf)?,
            bytes_sent: u64::decode(buf)?,
            bytes_received: u64::decode(buf)?,
            final_flush: bool::decode(buf)?,
            events: Vec::<TraceEventWire>::decode(buf)?,
            shard: Option::<MetricsShardWire>::decode(buf)?,
            attr: Vec::<AttrRowWire>::decode(buf)?,
        })
    }
}

/// One row of the coordinator's live status board.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStatusWire {
    /// The partition this row describes.
    pub partition: u16,
    /// Recovery epoch the worker is executing.
    pub epoch: u32,
    /// Last timestep the worker closed.
    pub timestep: u32,
    /// Supersteps the last closed timestep ran.
    pub supersteps: u32,
    /// Barrier-wait watermark: the worker's largest per-timestep barrier
    /// wait observed so far, nanoseconds.
    pub barrier_wait_ns: u64,
    /// Cumulative bytes the worker has sent.
    pub bytes_sent: u64,
    /// Cumulative bytes the worker has received.
    pub bytes_received: u64,
    /// Milliseconds since the coordinator last heard telemetry from this
    /// worker (coordinator clock).
    pub last_telemetry_ms: u64,
}

impl WireMsg for WorkerStatusWire {
    fn encode(&self, buf: &mut BytesMut) {
        self.partition.encode(buf);
        self.epoch.encode(buf);
        self.timestep.encode(buf);
        self.supersteps.encode(buf);
        self.barrier_wait_ns.encode(buf);
        self.bytes_sent.encode(buf);
        self.bytes_received.encode(buf);
        self.last_telemetry_ms.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(WorkerStatusWire {
            partition: u16::decode(buf)?,
            epoch: u32::decode(buf)?,
            timestep: u32::decode(buf)?,
            supersteps: u32::decode(buf)?,
            barrier_wait_ns: u64::decode(buf)?,
            bytes_sent: u64::decode(buf)?,
            bytes_received: u64::decode(buf)?,
            last_telemetry_ms: u64::decode(buf)?,
        })
    }
}

/// Coordinator → introspection client: the whole status board.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusReplyMsg {
    /// One row per partition, sorted by partition.
    pub workers: Vec<WorkerStatusWire>,
}

impl WireMsg for StatusReplyMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.workers.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(StatusReplyMsg {
            workers: Vec::<WorkerStatusWire>::decode(buf)?,
        })
    }
}

/// Encode a control payload into `Bytes`.
pub fn encode_payload<M: WireMsg>(m: &M) -> Bytes {
    let mut buf = BytesMut::new();
    m.encode(&mut buf);
    buf.freeze()
}

/// Decode a full control payload, requiring exact consumption.
pub fn decode_payload<M: WireMsg>(mut payload: Bytes) -> Result<M, EngineError> {
    let m = M::decode(&mut payload)?;
    if payload.remaining() != 0 {
        return Err(EngineError::Protocol {
            detail: format!(
                "{} trailing bytes after control payload",
                payload.remaining()
            ),
        });
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Loopback socket pair, or `None` (with a notice) where the sandbox
    /// forbids sockets — the documented skip path for TCP tests.
    fn loopback_pair() -> Option<(TcpStream, TcpStream)> {
        let listener = match TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(e) => {
                eprintln!("NOTICE: loopback sockets unavailable ({e}); skipping TCP test");
                return None;
            }
        };
        let addr = listener.local_addr().ok()?;
        let a = TcpStream::connect(addr).ok()?;
        let (b, _) = listener.accept().ok()?;
        Some((a, b))
    }

    fn data_frame(seq: u64, payload: &[u8]) -> Frame {
        Frame {
            kind: FrameKind::DataSuperstep,
            sender: 1,
            epoch: 3,
            seq,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn frame_roundtrips_through_buffer_and_pipe() {
        let frames = vec![
            Frame::control(FrameKind::Hello, 2, 0, encode_payload(&"x".to_string())),
            data_frame(1, b"hello world"),
            data_frame(2, &[]),
            Frame {
                kind: FrameKind::Sentinel,
                sender: 0,
                epoch: 1,
                seq: 17,
                payload: Bytes::new(),
            },
        ];
        // Pure buffer decode.
        for f in &frames {
            let mut enc = f.encode();
            assert_eq!(Frame::decode(&mut enc).unwrap(), *f);
            assert_eq!(enc.remaining(), 0, "must consume exactly");
        }
        // Stream codec over an in-memory pipe, frames back-to-back.
        let mut pipe = Vec::new();
        for f in &frames {
            write_frame(&mut pipe, f, "pipe").unwrap();
        }
        let mut r = Cursor::new(pipe);
        for f in &frames {
            let (got, _) = read_frame(&mut r, "pipe").unwrap();
            assert_eq!(got, *f);
        }
        // Pipe drained: the next read reports a clean close.
        let err = read_frame(&mut r, "pipe").unwrap_err();
        assert!(err.to_string().contains("closed by peer"), "{err}");
    }

    #[test]
    fn corrupted_frame_is_a_typed_checksum_error_and_stream_stays_aligned() {
        let bad = data_frame(1, b"payload bytes");
        let good = data_frame(2, b"clean retransmission");
        let mut pipe = Vec::new();
        write_frame_corrupted(&mut pipe, &bad, "pipe").unwrap();
        write_frame(&mut pipe, &good, "pipe").unwrap();
        let mut r = Cursor::new(pipe);
        let err = read_frame(&mut r, "pipe").unwrap_err();
        assert_eq!(
            err,
            EngineError::Wire(WireError::Checksum {
                context: "frame payload"
            })
        );
        let (got, _) = read_frame(&mut r, "pipe").unwrap();
        assert_eq!(
            got, good,
            "stream must stay frame-aligned after a bad frame"
        );
    }

    #[test]
    fn header_malformations_are_typed_errors() {
        let enc = data_frame(1, b"abc").encode();
        // Wrong magic.
        let mut bad = enc.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            Frame::decode(&mut Bytes::from(bad)),
            Err(WireError::BadTag {
                context: "frame magic",
                ..
            })
        ));
        // Wrong version.
        let mut bad = enc.to_vec();
        bad[4] = 99;
        assert!(matches!(
            Frame::decode(&mut Bytes::from(bad)),
            Err(WireError::BadTag {
                context: "frame version",
                ..
            })
        ));
        // Unknown kind.
        let mut bad = enc.to_vec();
        bad[6] = 0;
        assert!(matches!(
            Frame::decode(&mut Bytes::from(bad)),
            Err(WireError::BadTag {
                context: "frame kind",
                tag: 0
            })
        ));
        // First tag past the telemetry kinds is still unknown.
        let mut bad = enc.to_vec();
        bad[6] = 14;
        assert!(matches!(
            Frame::decode(&mut Bytes::from(bad)),
            Err(WireError::BadTag {
                context: "frame kind",
                tag: 14
            })
        ));
        // Truncated payload.
        let mut cut = Bytes::copy_from_slice(&enc[..enc.len() - 1]);
        assert!(matches!(
            Frame::decode(&mut cut),
            Err(WireError::Eof {
                context: "frame payload",
                ..
            })
        ));
        // Oversized declared length.
        let mut bad = enc.to_vec();
        bad[21..25].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&mut Bytes::from(bad.clone())),
            Err(WireError::BadTag {
                context: "frame length (over cap)",
                ..
            })
        ));
        let err = read_frame(&mut Cursor::new(bad), "pipe").unwrap_err();
        assert!(matches!(err, EngineError::Protocol { .. }), "{err}");
    }

    #[test]
    fn half_open_and_mid_frame_eof_are_distinguished() {
        // Clean close between frames.
        let Some((a, b)) = loopback_pair() else {
            return;
        };
        let mut conn = FrameConn::new(a, "peer 1").unwrap();
        drop(b);
        let err = conn.recv().unwrap_err();
        assert!(err.to_string().contains("closed by peer"), "{err}");
        assert!(err.to_string().contains("peer 1"), "{err}");

        // EOF inside a frame: peer writes a partial header then dies.
        let Some((a, mut b)) = loopback_pair() else {
            return;
        };
        let mut conn = FrameConn::new(a, "peer 2").unwrap();
        b.write_all(&data_frame(1, b"payload").encode()[..10])
            .unwrap();
        drop(b);
        let err = conn.recv().unwrap_err();
        assert!(err.to_string().contains("mid-frame EOF"), "{err}");
        assert!(err.to_string().contains("10 of 33"), "{err}");

        // EOF inside the payload is mid-frame too.
        let Some((a, mut b)) = loopback_pair() else {
            return;
        };
        let mut conn = FrameConn::new(a, "peer 3").unwrap();
        let enc = data_frame(1, b"payload").encode();
        b.write_all(&enc[..HEADER_LEN + 3]).unwrap();
        drop(b);
        let err = conn.recv().unwrap_err();
        assert!(err.to_string().contains("mid-frame EOF"), "{err}");
    }

    #[test]
    fn frame_conn_counts_bytes_both_ways() {
        let Some((a, b)) = loopback_pair() else {
            return;
        };
        let mut tx = FrameConn::new(a, "rx").unwrap();
        let mut rx = FrameConn::new(b, "tx").unwrap();
        let f = data_frame(1, b"12345");
        tx.send(&f).unwrap();
        let got = rx.recv().unwrap();
        assert_eq!(got, f);
        assert_eq!(tx.bytes_sent(), (HEADER_LEN + 5) as u64);
        assert_eq!(rx.bytes_received(), (HEADER_LEN + 5) as u64);
    }

    #[test]
    fn connect_with_retry_reports_failure_after_attempts() {
        // Bind then drop a listener to obtain a port that refuses.
        let addr = match TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l.local_addr().unwrap().to_string(),
            Err(e) => {
                eprintln!("NOTICE: loopback sockets unavailable ({e}); skipping TCP test");
                return;
            }
        };
        let err = connect_with_retry_attempts(&addr, "worker 1", 2).unwrap_err();
        assert!(err.to_string().contains("worker 1"), "{err}");
        assert!(err.to_string().contains("2 attempts"), "{err}");
    }

    #[test]
    fn control_payloads_roundtrip() {
        let hello = HelloMsg {
            partition: 4,
            listen_addr: "127.0.0.1:9000".into(),
        };
        assert_eq!(
            decode_payload::<HelloMsg>(encode_payload(&hello)).unwrap(),
            hello
        );
        let start = StartMsg {
            epoch: 2,
            resume_from: RESUME_NONE,
            peer_addrs: vec!["a:1".into(), "b:2".into()],
            fired: vec![0, 3],
        };
        assert_eq!(
            decode_payload::<StartMsg>(encode_payload(&start)).unwrap(),
            start
        );
        let abort = AbortMsg {
            dead_partition: 1,
            detail: "exit status: 42".into(),
        };
        assert_eq!(
            decode_payload::<AbortMsg>(encode_payload(&abort)).unwrap(),
            abort
        );
        let c = Contribution {
            msgs_sent: 7,
            all_halted: false,
        };
        assert_eq!(
            decode_payload::<Contribution>(encode_payload(&c)).unwrap(),
            c
        );
        let a = Aggregate {
            total_msgs: 7,
            all_halted: true,
        };
        assert_eq!(decode_payload::<Aggregate>(encode_payload(&a)).unwrap(), a);
        // Trailing bytes are a protocol violation, not silently ignored.
        let mut buf = BytesMut::new();
        hello.encode(&mut buf);
        buf.put_u8(0);
        assert!(decode_payload::<HelloMsg>(buf.freeze()).is_err());
    }

    fn sample_histogram_wire() -> HistogramWire {
        let mut h = tempograph_metrics::Histogram::new();
        h.record(0);
        h.record(17);
        h.record(1 << 40);
        HistogramWire::from_histogram(&h)
    }

    #[test]
    fn telemetry_payload_roundtrips() {
        let msg = TelemetryMsg {
            timestep: 3,
            supersteps: 5,
            barrier_wait_ns: 12_345,
            clock_ns: 999_999,
            bytes_sent: 4096,
            bytes_received: 8192,
            final_flush: false,
            events: vec![
                TraceEventWire {
                    kind: 1,
                    name: "compute".into(),
                    a: 100,
                    b: 50,
                    arg: Some(("superstep".into(), 2)),
                },
                TraceEventWire {
                    kind: 2,
                    name: "marker".into(),
                    a: 180,
                    b: 0,
                    arg: None,
                },
                TraceEventWire {
                    kind: 3,
                    name: "msgs".into(),
                    a: 200,
                    b: 42,
                    arg: None,
                },
            ],
            shard: Some(MetricsShardWire {
                compute_ns: sample_histogram_wire(),
                barrier_wait_ns: sample_histogram_wire(),
                send_ns: HistogramWire::from_histogram(&tempograph_metrics::Histogram::new()),
                checkpoint_write_ns: sample_histogram_wire(),
                recovery_restore_ns: sample_histogram_wire(),
                cache_hits: 7,
                cache_misses: 2,
                cache_evictions: 1,
                bytes_read: 4096,
            }),
            attr: vec![
                AttrRowWire {
                    subgraph: 0,
                    timestep: 3,
                    compute_ns: 777,
                    invocations: 4,
                },
                AttrRowWire {
                    subgraph: 1,
                    timestep: u32::MAX,
                    compute_ns: 11,
                    invocations: 1,
                },
            ],
        };
        assert_eq!(
            decode_payload::<TelemetryMsg>(encode_payload(&msg)).unwrap(),
            msg
        );
    }

    #[test]
    fn telemetry_event_and_histogram_malformations_are_typed() {
        // Unknown trace-event kind tag.
        let ev = TraceEventWire {
            kind: 1,
            name: "x".into(),
            a: 0,
            b: 0,
            arg: None,
        };
        let mut buf = BytesMut::new();
        ev.encode(&mut buf);
        let mut bad = buf.freeze().to_vec();
        bad[0] = 9;
        assert!(matches!(
            TraceEventWire::decode(&mut Bytes::from(bad)),
            Err(WireError::BadTag {
                context: "trace event kind",
                tag: 9
            })
        ));
        // Wrong histogram bucket count.
        let hw = HistogramWire {
            buckets: vec![0; 3],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        };
        let mut buf = BytesMut::new();
        hw.encode(&mut buf);
        assert!(matches!(
            HistogramWire::decode(&mut buf.freeze()),
            Err(WireError::BadTag {
                context: "histogram bucket count",
                tag: 3
            })
        ));
    }

    #[test]
    fn trace_event_wire_conversions_roundtrip() {
        use tempograph_trace::TraceEvent;
        let events = [
            TraceEvent::Span {
                name: "compute",
                start_ns: 10,
                dur_ns: 5,
                arg: Some(("superstep", 3)),
            },
            TraceEvent::Instant {
                name: "straggler.detected",
                ts_ns: 99,
                arg: Some(("wait_ns", 1234)),
            },
            TraceEvent::Counter {
                name: "net.bytes_sent",
                ts_ns: 50,
                value: 4096,
            },
        ];
        for ev in &events {
            assert_eq!(TraceEventWire::from_event(ev).into_event(), *ev);
        }
    }

    #[test]
    fn histogram_wire_conversions_roundtrip() {
        let mut h = tempograph_metrics::Histogram::new();
        for v in [0u64, 1, 17, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let w = HistogramWire::from_histogram(&h);
        assert_eq!(w.into_histogram(), h);
        // Empty histograms roundtrip too (min sentinel restored).
        let empty = tempograph_metrics::Histogram::new();
        assert_eq!(
            HistogramWire::from_histogram(&empty).into_histogram(),
            empty
        );
    }

    #[test]
    fn status_payload_roundtrips() {
        let reply = StatusReplyMsg {
            workers: vec![
                WorkerStatusWire {
                    partition: 0,
                    epoch: 1,
                    timestep: 4,
                    supersteps: 3,
                    barrier_wait_ns: 555,
                    bytes_sent: 1000,
                    bytes_received: 2000,
                    last_telemetry_ms: 12,
                },
                WorkerStatusWire {
                    partition: 1,
                    epoch: 1,
                    timestep: 4,
                    supersteps: 3,
                    barrier_wait_ns: 444,
                    bytes_sent: 900,
                    bytes_received: 1800,
                    last_telemetry_ms: 7,
                },
            ],
        };
        assert_eq!(
            decode_payload::<StatusReplyMsg>(encode_payload(&reply)).unwrap(),
            reply
        );
    }
}
