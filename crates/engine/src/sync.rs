//! Barrier with reduction: the BSP synchronisation point.
//!
//! Each worker ends a superstep by calling [`SyncPoint::arrive`] with its
//! local contribution (messages sent, whether all its subgraphs voted to
//! halt). The last arriver aggregates the contributions, stores the global
//! [`Aggregate`], resets the accumulators and wakes everyone — one blocking
//! rendezvous per superstep, exactly the structure whose wait time the paper
//! reports as "Sync Overhead" (Fig. 7b/7d).

use parking_lot::{Condvar, Mutex};

/// Per-worker contribution folded at the barrier.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Contribution {
    /// Messages this worker emitted during the phase.
    pub msgs_sent: u64,
    /// True when every subgraph owned by this worker voted to halt.
    pub all_halted: bool,
}

/// Global reduction of all workers' contributions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Aggregate {
    /// Total messages emitted across the cluster during the phase.
    pub total_msgs: u64,
    /// True when every subgraph in the cluster voted to halt.
    pub all_halted: bool,
}

impl Aggregate {
    /// BSP termination rule: stop when nobody sent anything and everyone
    /// voted to halt.
    pub fn should_stop(&self) -> bool {
        self.total_msgs == 0 && self.all_halted
    }
}

struct State {
    arrived: usize,
    generation: u64,
    msgs: u64,
    halted: bool,
    result: Aggregate,
}

/// Reusable barrier-with-reduction for `n` workers. See module docs.
pub struct SyncPoint {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl SyncPoint {
    /// A sync point for `n` workers (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one worker");
        SyncPoint {
            n,
            state: Mutex::new(State {
                arrived: 0,
                generation: 0,
                msgs: 0,
                halted: true,
                result: Aggregate::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participating workers.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Block until all `n` workers arrive; returns the folded [`Aggregate`].
    pub fn arrive(&self, c: Contribution) -> Aggregate {
        let mut s = self.state.lock();
        s.msgs += c.msgs_sent;
        s.halted &= c.all_halted;
        s.arrived += 1;
        if s.arrived == self.n {
            s.result = Aggregate {
                total_msgs: s.msgs,
                all_halted: s.halted,
            };
            s.arrived = 0;
            s.msgs = 0;
            s.halted = true;
            s.generation += 1;
            self.cv.notify_all();
            s.result
        } else {
            let gen = s.generation;
            while s.generation == gen {
                self.cv.wait(&mut s);
            }
            s.result
        }
    }

    /// Pure barrier: arrive with an empty contribution.
    pub fn barrier(&self) {
        self.arrive(Contribution {
            msgs_sent: 0,
            all_halted: true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_worker_reduction() {
        let sp = SyncPoint::new(1);
        let agg = sp.arrive(Contribution {
            msgs_sent: 3,
            all_halted: false,
        });
        assert_eq!(agg.total_msgs, 3);
        assert!(!agg.all_halted);
        assert!(!agg.should_stop());
        // Reusable: accumulators were reset.
        let agg2 = sp.arrive(Contribution {
            msgs_sent: 0,
            all_halted: true,
        });
        assert!(agg2.should_stop());
    }

    #[test]
    fn multi_worker_fold_and_broadcast() {
        let sp = Arc::new(SyncPoint::new(4));
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let sp = sp.clone();
                std::thread::spawn(move || {
                    sp.arrive(Contribution {
                        msgs_sent: i,
                        all_halted: i != 2,
                    })
                })
            })
            .collect();
        for h in handles {
            let agg = h.join().unwrap();
            assert_eq!(agg.total_msgs, 6);
            assert!(!agg.all_halted);
        }
    }

    #[test]
    fn many_generations_stay_in_lockstep() {
        let sp = Arc::new(SyncPoint::new(3));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let sp = sp.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..100u64 {
                        let agg = sp.arrive(Contribution {
                            msgs_sent: round,
                            all_halted: true,
                        });
                        seen.push(agg.total_msgs);
                    }
                    seen
                })
            })
            .collect();
        let expect: Vec<u64> = (0..100u64).map(|r| r * 3).collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
    }

    #[test]
    fn barrier_is_just_an_empty_arrive() {
        let sp = Arc::new(SyncPoint::new(2));
        let sp2 = sp.clone();
        let t = std::thread::spawn(move || sp2.barrier());
        sp.barrier();
        t.join().unwrap();
    }
}
