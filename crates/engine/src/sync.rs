//! Barrier with reduction: the BSP synchronisation point.
//!
//! Each worker ends a superstep by calling [`SyncPoint::arrive`] with its
//! local contribution (messages sent, whether all its subgraphs voted to
//! halt). The last arriver aggregates the contributions, stores the global
//! [`Aggregate`], resets the accumulators and wakes everyone — one blocking
//! rendezvous per superstep, exactly the structure whose wait time the paper
//! reports as "Sync Overhead" (Fig. 7b/7d).

use parking_lot::{Condvar, Mutex};

/// Per-worker contribution folded at the barrier.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Contribution {
    /// Messages this worker emitted during the phase.
    pub msgs_sent: u64,
    /// True when every subgraph owned by this worker voted to halt.
    pub all_halted: bool,
}

/// Global reduction of all workers' contributions.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Aggregate {
    /// Total messages emitted across the cluster during the phase.
    pub total_msgs: u64,
    /// True when every subgraph in the cluster voted to halt.
    pub all_halted: bool,
}

impl Aggregate {
    /// BSP termination rule: stop when nobody sent anything and everyone
    /// voted to halt.
    pub fn should_stop(&self) -> bool {
        self.total_msgs == 0 && self.all_halted
    }
}

/// Panic message used when a barrier is poisoned by a dying peer. The
/// executor's recovery loop treats panics carrying this text as *cascade*
/// failures (secondary deaths caused by the primary one) and prefers the
/// original panic when re-surfacing errors.
pub(crate) const POISON_MSG: &str = "sync point poisoned: a peer worker died";

struct State {
    arrived: usize,
    generation: u64,
    msgs: u64,
    halted: bool,
    poisoned: bool,
    result: Aggregate,
}

/// Reusable barrier-with-reduction for `n` workers. See module docs.
pub struct SyncPoint {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl SyncPoint {
    /// A sync point for `n` workers (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one worker");
        SyncPoint {
            n,
            state: Mutex::new(State {
                arrived: 0,
                generation: 0,
                msgs: 0,
                halted: true,
                poisoned: false,
                result: Aggregate::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participating workers.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Block until all `n` workers arrive; returns the folded [`Aggregate`].
    ///
    /// Panics (with [`POISON_MSG`]) if the sync point was [`SyncPoint::poison`]ed
    /// — a peer worker died, so the full complement can never arrive and
    /// waiting would deadlock.
    pub fn arrive(&self, c: Contribution) -> Aggregate {
        let mut s = self.state.lock();
        if s.poisoned {
            drop(s);
            panic!("{POISON_MSG}");
        }
        s.msgs += c.msgs_sent;
        s.halted &= c.all_halted;
        s.arrived += 1;
        if s.arrived == self.n {
            s.result = Aggregate {
                total_msgs: s.msgs,
                all_halted: s.halted,
            };
            s.arrived = 0;
            s.msgs = 0;
            s.halted = true;
            s.generation += 1;
            self.cv.notify_all();
            s.result
        } else {
            let gen = s.generation;
            while s.generation == gen {
                self.cv.wait(&mut s);
                if s.poisoned {
                    drop(s);
                    panic!("{POISON_MSG}");
                }
            }
            s.result
        }
    }

    /// Mark the sync point dead and wake every waiter: their `arrive` calls
    /// panic instead of deadlocking on a worker that will never show up.
    pub fn poison(&self) {
        let mut s = self.state.lock();
        s.poisoned = true;
        self.cv.notify_all();
    }

    /// Pure barrier: arrive with an empty contribution.
    pub fn barrier(&self) {
        self.arrive(Contribution {
            msgs_sent: 0,
            all_halted: true,
        });
    }
}

/// RAII guard a worker holds for its whole run: if the worker unwinds (an
/// injected fault or a real bug), `Drop` poisons the sync point so peers
/// blocked at the barrier die promptly instead of deadlocking. A normal
/// return drops the guard without poisoning.
pub struct PoisonOnPanic<'a>(pub &'a SyncPoint);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Unwrap a worker thread's join result, resurfacing which partition's
/// worker panicked.
///
/// A bare `handle.join().unwrap()` loses the panic's origin: the driver
/// thread reports `Any { .. }` with no hint of *which* of the k workers
/// died. This helper re-panics with the partition id (and the panic's
/// message when it was a string), so a failing run names its straggler —
/// pair it with the flight-recorder dump the dying worker already wrote to
/// stderr. Takes the `join()` result rather than the handle so it works
/// for plain and scoped threads alike: `join_partition(p, h.join())`.
pub fn join_partition<T>(partition: usize, joined: std::thread::Result<T>) -> T {
    match joined {
        Ok(v) => v,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&'static str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("worker for partition {partition} panicked: {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_worker_reduction() {
        let sp = SyncPoint::new(1);
        let agg = sp.arrive(Contribution {
            msgs_sent: 3,
            all_halted: false,
        });
        assert_eq!(agg.total_msgs, 3);
        assert!(!agg.all_halted);
        assert!(!agg.should_stop());
        // Reusable: accumulators were reset.
        let agg2 = sp.arrive(Contribution {
            msgs_sent: 0,
            all_halted: true,
        });
        assert!(agg2.should_stop());
    }

    #[test]
    fn multi_worker_fold_and_broadcast() {
        let sp = Arc::new(SyncPoint::new(4));
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let sp = sp.clone();
                std::thread::spawn(move || {
                    sp.arrive(Contribution {
                        msgs_sent: i,
                        all_halted: i != 2,
                    })
                })
            })
            .collect();
        for (p, h) in handles.into_iter().enumerate() {
            let agg = join_partition(p, h.join());
            assert_eq!(agg.total_msgs, 6);
            assert!(!agg.all_halted);
        }
    }

    #[test]
    fn many_generations_stay_in_lockstep() {
        let sp = Arc::new(SyncPoint::new(3));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let sp = sp.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..100u64 {
                        let agg = sp.arrive(Contribution {
                            msgs_sent: round,
                            all_halted: true,
                        });
                        seen.push(agg.total_msgs);
                    }
                    seen
                })
            })
            .collect();
        let expect: Vec<u64> = (0..100u64).map(|r| r * 3).collect();
        for (p, h) in handles.into_iter().enumerate() {
            assert_eq!(join_partition(p, h.join()), expect);
        }
    }

    #[test]
    fn barrier_is_just_an_empty_arrive() {
        let sp = Arc::new(SyncPoint::new(2));
        let sp2 = sp.clone();
        let t = std::thread::spawn(move || sp2.barrier());
        sp.barrier();
        join_partition(1, t.join());
    }

    #[test]
    fn poison_wakes_waiters_and_fails_future_arrivals() {
        let sp = Arc::new(SyncPoint::new(2));
        let waiter = {
            let sp = sp.clone();
            std::thread::spawn(move || sp.barrier())
        };
        // Give the waiter time to block, then poison instead of arriving.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sp.poison();
        let err = waiter.join().expect_err("waiter must panic, not hang");
        assert!(err
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("poisoned")));
        // Later arrivals fail fast too.
        let late = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sp.barrier()));
        assert!(late.is_err());
    }

    #[test]
    fn poison_on_panic_guard_only_fires_during_unwind() {
        let sp = Arc::new(SyncPoint::new(2));
        {
            let _guard = PoisonOnPanic(&sp);
        }
        // Clean drop: not poisoned, a 2-party barrier still works.
        let sp2 = sp.clone();
        let t = std::thread::spawn(move || sp2.barrier());
        sp.barrier();
        join_partition(1, t.join());

        let sp3 = sp.clone();
        let dead = std::thread::spawn(move || {
            let _guard = PoisonOnPanic(&sp3);
            panic!("worker bug");
        })
        .join();
        assert!(dead.is_err());
        let late = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sp.barrier()));
        assert!(late.is_err(), "unwinding drop must poison");
    }

    #[test]
    fn join_partition_names_the_dead_worker() {
        let ok = std::thread::spawn(|| 42);
        assert_eq!(join_partition(0, ok.join()), 42);

        let dead = std::thread::spawn(|| panic!("inbox corrupted")).join();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| join_partition(3, dead)))
                .expect_err("must re-panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("re-panic carries a String");
        assert!(msg.contains("partition 3"), "{msg}");
        assert!(msg.contains("inbox corrupted"), "{msg}");
    }
}
