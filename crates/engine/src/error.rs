//! Typed errors for the engine's worker hot path.
//!
//! The message decode path (superstep drain, checkpoint inbox decode) used
//! to panic on malformed bytes — acceptable while buffers were provably
//! engine-internal, but a panic in a worker poisons the whole cluster and
//! loses the structured cause. Lint rule **P01** now forbids
//! `unwrap`/`expect`/`panic!` in that path; corruption instead surfaces as
//! a [`WireError`] (codec layer) wrapped into an [`EngineError`] (worker
//! layer), which the driver re-raises with the failing partition attached.

use std::fmt;

/// A malformed wire buffer, detected during decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-width read.
    Eof {
        /// What was being decoded.
        context: &'static str,
        /// Bytes the read required.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A tag byte matched no known variant.
    BadTag {
        /// The enum or frame whose tag was read.
        context: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    Utf8 {
        /// What was being decoded.
        context: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof {
                context,
                needed,
                remaining,
            } => write!(
                f,
                "unexpected end of wire buffer decoding {context}: \
                 need {needed} bytes, {remaining} remain"
            ),
            WireError::BadTag { context, tag } => {
                write!(f, "unknown {context} tag {tag:#04x}")
            }
            WireError::Utf8 { context } => write!(f, "invalid UTF-8 decoding {context}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A worker-level failure surfaced to the driver as a value, not a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A received frame failed to decode.
    Wire(WireError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Wire(e) => write!(f, "wire decode failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Wire(e) => Some(e),
        }
    }
}

impl From<WireError> for EngineError {
    fn from(e: WireError) -> Self {
        EngineError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = WireError::Eof {
            context: "u32",
            needed: 4,
            remaining: 1,
        };
        assert!(e.to_string().contains("u32"));
        assert!(e.to_string().contains("4 bytes"));
        let e = WireError::BadTag {
            context: "Option",
            tag: 7,
        };
        assert!(e.to_string().contains("0x07"));
        let e: EngineError = WireError::Utf8 { context: "String" }.into();
        assert!(e.to_string().contains("UTF-8"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
