//! Typed errors for the engine's worker hot path.
//!
//! The message decode path (superstep drain, checkpoint inbox decode) used
//! to panic on malformed bytes — acceptable while buffers were provably
//! engine-internal, but a panic in a worker poisons the whole cluster and
//! loses the structured cause. Lint rule **P01** now forbids
//! `unwrap`/`expect`/`panic!` in that path; corruption instead surfaces as
//! a [`WireError`] (codec layer) wrapped into an [`EngineError`] (worker
//! layer), which the driver re-raises with the failing partition attached.

use std::fmt;

/// A malformed wire buffer, detected during decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-width read.
    Eof {
        /// What was being decoded.
        context: &'static str,
        /// Bytes the read required.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A tag byte matched no known variant.
    BadTag {
        /// The enum or frame whose tag was read.
        context: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    Utf8 {
        /// What was being decoded.
        context: &'static str,
    },
    /// A framed payload's checksum did not match its contents.
    Checksum {
        /// The frame whose checksum failed.
        context: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof {
                context,
                needed,
                remaining,
            } => write!(
                f,
                "unexpected end of wire buffer decoding {context}: \
                 need {needed} bytes, {remaining} remain"
            ),
            WireError::BadTag { context, tag } => {
                write!(f, "unknown {context} tag {tag:#04x}")
            }
            WireError::Utf8 { context } => write!(f, "invalid UTF-8 decoding {context}"),
            WireError::Checksum { context } => {
                write!(f, "checksum mismatch decoding {context}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A worker-level failure surfaced to the driver as a value, not a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A received frame failed to decode.
    Wire(WireError),
    /// A transport-level I/O failure on this worker's own connections
    /// (dial failure, write failure, connection reset, mid-frame EOF).
    /// `detail` carries the stringified `io::Error` — `io::Error` itself is
    /// neither `Clone` nor `Eq`, which this type must be so the driver can
    /// re-surface a worker error by value.
    Net {
        /// What the transport was doing (e.g. "reading frame from peer 2").
        context: String,
        /// The underlying I/O failure, stringified.
        detail: String,
    },
    /// The coordinator observed a remote worker die: its control connection
    /// reset, or its process exited. `detail` names the evidence (exit
    /// status or socket error) so the failure is attributable.
    RemoteWorkerDied {
        /// The partition whose worker died.
        partition: u16,
        /// Exit status / connection error that proved the death.
        detail: String,
    },
    /// A peer's end-of-phase sentinel proved frames were lost in flight and
    /// never retransmitted: the received data-frame sequence numbers do not
    /// cover the sender's declared watermark.
    FrameLoss {
        /// The peer partition whose frames went missing.
        peer: u16,
        /// Data frames the sentinel declared sent (cumulative).
        expected: u64,
        /// Data frames actually accounted for (cumulative).
        got: u64,
    },
    /// A worker received a frame it cannot accept in its current state:
    /// wrong epoch, wrong recipient, or a kind that is invalid mid-phase.
    Protocol {
        /// Human description of the violation.
        detail: String,
    },
    /// Writing or committing a checkpoint failed. `detail` carries the
    /// stringified storage error (the underlying `GofsError` is not `Eq`).
    Checkpoint {
        /// What the checkpoint machinery was doing (e.g. "writing slice 3").
        context: String,
        /// The underlying storage failure, stringified.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Wire(e) => write!(f, "wire decode failed: {e}"),
            EngineError::Net { context, detail } => {
                write!(f, "transport failure {context}: {detail}")
            }
            EngineError::RemoteWorkerDied { partition, detail } => {
                write!(f, "remote worker for partition {partition} died: {detail}")
            }
            EngineError::FrameLoss {
                peer,
                expected,
                got,
            } => write!(
                f,
                "frames from peer {peer} lost in flight: sentinel declared {expected} \
                 data frames, only {got} accounted for"
            ),
            EngineError::Protocol { detail } => write!(f, "transport protocol violation: {detail}"),
            EngineError::Checkpoint { context, detail } => {
                write!(f, "checkpoint failure {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Wire(e) => Some(e),
            EngineError::Net { .. }
            | EngineError::RemoteWorkerDied { .. }
            | EngineError::FrameLoss { .. }
            | EngineError::Protocol { .. }
            | EngineError::Checkpoint { .. } => None,
        }
    }
}

impl From<WireError> for EngineError {
    fn from(e: WireError) -> Self {
        EngineError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = WireError::Eof {
            context: "u32",
            needed: 4,
            remaining: 1,
        };
        assert!(e.to_string().contains("u32"));
        assert!(e.to_string().contains("4 bytes"));
        let e = WireError::BadTag {
            context: "Option",
            tag: 7,
        };
        assert!(e.to_string().contains("0x07"));
        let e: EngineError = WireError::Utf8 { context: "String" }.into();
        assert!(e.to_string().contains("UTF-8"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn transport_errors_name_their_subject() {
        let e = EngineError::RemoteWorkerDied {
            partition: 3,
            detail: "exit status: 1".into(),
        };
        assert!(e.to_string().contains("partition 3"), "{e}");
        assert!(e.to_string().contains("exit status"), "{e}");

        let e = EngineError::FrameLoss {
            peer: 2,
            expected: 7,
            got: 5,
        };
        assert!(e.to_string().contains("peer 2"), "{e}");

        let e = EngineError::Net {
            context: "reading frame from peer 1".into(),
            detail: "connection reset".into(),
        };
        assert!(e.to_string().contains("peer 1"), "{e}");

        let e: EngineError = WireError::Checksum { context: "frame" }.into();
        assert!(e.to_string().contains("checksum mismatch"), "{e}");
    }
}
