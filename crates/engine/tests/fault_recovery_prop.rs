//! Property-based recovery equivalence: for *arbitrary* fault-plan seeds
//! and checkpoint intervals, a crashed-and-recovered job must equal the
//! fault-free reference bit for bit.
//!
//! The program under test is a deliberately stateful gossip over a ring
//! (engine tests cannot use `tempograph-algos` — that would be circular):
//! every subgraph folds incoming payloads into an accumulator with a
//! non-commutative-looking but deterministic hash, gossips for two
//! supersteps per timestep, and forwards its accumulator across the
//! timestep boundary. Any lost message, replayed message, stale program
//! state, or mis-restored sequence counter changes the accumulator and
//! fails the equality.
//!
//! The vendored proptest has no shrinking; the failing seed is embedded in
//! the assertion message so a failure is directly replayable.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use tempograph_core::{TemplateBuilder, TimeSeriesCollection};
use tempograph_engine::{
    run_job, Context, Envelope, FaultPlan, InstanceSource, JobConfig, JobResult, SubgraphProgram,
};
use tempograph_partition::{discover_subgraphs, PartitionedGraph, Partitioning, Subgraph};

const PARTITIONS: usize = 3;
const TIMESTEPS: usize = 6;

/// Stateful ring gossip; see module docs.
struct ChainGossip {
    acc: u64,
}

impl SubgraphProgram for ChainGossip {
    type Msg = u64;

    fn compute(&mut self, ctx: &mut Context<'_, u64>, msgs: &[Envelope<u64>]) {
        for e in msgs {
            self.acc = self.acc.wrapping_mul(0x100000001b3).wrapping_add(e.payload);
        }
        if ctx.superstep() < 2 {
            let mut targets = Vec::new();
            for pos in ctx.subgraph().positions() {
                for rn in ctx.subgraph().remote_neighbors(pos) {
                    targets.push(rn.subgraph);
                }
            }
            targets.sort_unstable();
            targets.dedup();
            let val = self.acc ^ (((ctx.timestep() as u64) << 32) | ctx.superstep() as u64);
            for t in targets {
                ctx.send_to_subgraph(t, val);
            }
        }
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, u64>) {
        self.acc = self.acc.wrapping_add(ctx.timestep() as u64 + 1);
        ctx.emit(ctx.subgraph().vertex_at(0), (self.acc & 0xFFFF_FFFF) as f64);
        ctx.add_counter("gossip_acc_low", self.acc & 0xFFFF);
        if ctx.timestep() + 1 < ctx.num_timesteps() {
            ctx.send_to_next_timestep(self.acc);
        }
    }

    fn save_state(&self, buf: &mut bytes::BytesMut) {
        bytes::BufMut::put_u64_le(buf, self.acc);
    }

    fn restore_state(&mut self, buf: &mut bytes::Bytes) {
        self.acc = bytes::Buf::get_u64_le(buf);
    }
}

fn factory(sg: &Subgraph, _pg: &PartitionedGraph) -> ChainGossip {
    ChainGossip {
        acc: sg.id().0 as u64 + 1,
    }
}

/// A 12-vertex ring, round-robin partitioned so every edge crosses
/// partitions: all gossip is genuine wire traffic.
fn fixture() -> (Arc<PartitionedGraph>, InstanceSource) {
    let mut b = TemplateBuilder::new("ring", false);
    const N: u64 = 12;
    for v in 0..N {
        b.add_vertex(v);
    }
    for v in 0..N {
        b.add_edge(v, v, (v + 1) % N).unwrap();
    }
    let t = Arc::new(b.finalize().unwrap());
    let assignment: Vec<u16> = (0..N).map(|v| (v % PARTITIONS as u64) as u16).collect();
    let pg = Arc::new(discover_subgraphs(
        t.clone(),
        Partitioning {
            assignment,
            k: PARTITIONS,
        },
    ));
    let mut coll = TimeSeriesCollection::new(t, 0, 60);
    for _ in 0..TIMESTEPS {
        coll.push(coll.new_instance()).unwrap();
    }
    (pg, InstanceSource::Memory(Arc::new(coll)))
}

#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    emitted: Vec<(usize, u32, u64)>,
    counters: BTreeMap<String, Vec<u64>>,
    timesteps_run: usize,
    final_states: Vec<(u32, Vec<u8>)>,
}

fn fingerprint(r: &JobResult) -> Fingerprint {
    Fingerprint {
        emitted: r
            .emitted
            .iter()
            .map(|e| (e.timestep, e.vertex.0, e.value.to_bits()))
            .collect(),
        counters: r
            .counters
            .iter()
            .map(|(name, per_t)| {
                (
                    name.clone(),
                    per_t.iter().map(|per_p| per_p.iter().sum()).collect(),
                )
            })
            .collect(),
        timesteps_run: r.timesteps_run,
        final_states: r
            .final_states
            .iter()
            .map(|(sg, bytes)| (sg.0, bytes.clone()))
            .collect(),
    }
}

fn reference() -> &'static (Arc<PartitionedGraph>, InstanceSource, Fingerprint) {
    static REF: OnceLock<(Arc<PartitionedGraph>, InstanceSource, Fingerprint)> = OnceLock::new();
    REF.get_or_init(|| {
        let (pg, src) = fixture();
        let clean = run_job(
            &pg,
            &src,
            factory,
            JobConfig::sequentially_dependent(TIMESTEPS),
        );
        assert_eq!(clean.recoveries, 0);
        let fp = fingerprint(&clean);
        (pg, src, fp)
    })
}

proptest! {
    /// `usize::MAX` means "checkpointing armed but never due": recovery
    /// degenerates to restart-from-scratch, which must also be equivalent.
    #[test]
    fn recovered_run_equals_fault_free_reference(
        seed in any::<u64>(),
        every_idx in 0usize..4,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let every = [1, 2, 5, usize::MAX][every_idx];
        let (pg, src, clean_fp) = reference();

        let dir = std::env::temp_dir().join(format!(
            "fault-prop-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let plan = FaultPlan::from_seed(seed, PARTITIONS as u16, TIMESTEPS);
        let crashed = run_job(
            pg,
            src,
            factory,
            JobConfig::sequentially_dependent(TIMESTEPS)
                .with_checkpoint(every, &dir)
                .with_faults(plan),
        );
        let _ = std::fs::remove_dir_all(&dir);

        prop_assert!(
            crashed.recoveries >= 1,
            "seed {seed:#x}: from_seed always schedules at least one death \
             at a reachable superstep"
        );
        prop_assert_eq!(
            clean_fp,
            &fingerprint(&crashed),
            "recovery diverged: seed={:#x} every={}",
            seed,
            every
        );
    }
}
