//! Property-based tests for the engine wire format and sync primitive.

use bytes::BytesMut;
use proptest::prelude::*;
use tempograph_core::VertexIdx;
use tempograph_engine::batch::{legacy, merge_sorted_runs, MessageBatch};
use tempograph_engine::sync::{Contribution, SyncPoint};
use tempograph_engine::wire::{sort_envelopes, Envelope, WireMsg};
use tempograph_partition::SubgraphId;

fn roundtrip<M: WireMsg + PartialEq + std::fmt::Debug>(m: &M) -> M {
    let mut buf = BytesMut::new();
    m.encode(&mut buf);
    M::decode(&mut buf.freeze()).expect("well-formed frame decodes")
}

proptest! {
    #[test]
    fn scalar_roundtrips(a in any::<u32>(), b in any::<u64>(), c in any::<i64>(), d in any::<bool>()) {
        prop_assert_eq!(roundtrip(&a), a);
        prop_assert_eq!(roundtrip(&b), b);
        prop_assert_eq!(roundtrip(&c), c);
        prop_assert_eq!(roundtrip(&d), d);
    }

    #[test]
    fn float_roundtrips(x in any::<f64>()) {
        let back = roundtrip(&x);
        // NaN compares unequal; compare bit patterns instead.
        prop_assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn string_roundtrips(s in "[\\PC]{0,40}") {
        prop_assert_eq!(roundtrip(&s), s);
    }

    #[test]
    fn nested_composites_roundtrip(
        items in proptest::collection::vec(
            (any::<u32>().prop_map(VertexIdx), any::<f64>().prop_filter("no nan", |x| !x.is_nan())),
            0..30,
        ),
        tail in proptest::collection::vec(proptest::collection::vec(any::<i64>(), 0..4), 0..6),
        opt in proptest::option::of(any::<u64>()),
    ) {
        prop_assert_eq!(roundtrip(&items), items);
        prop_assert_eq!(roundtrip(&tail), tail);
        prop_assert_eq!(roundtrip(&opt), opt);
    }

    /// Envelope streams decode in order with exact consumption.
    #[test]
    fn envelope_stream_roundtrip(
        envs in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<i64>()),
            0..40,
        ),
    ) {
        let envelopes: Vec<Envelope<i64>> = envs
            .iter()
            .map(|&(f, t, s, p)| Envelope {
                from: SubgraphId(f),
                to: SubgraphId(t),
                seq: s,
                payload: p,
            })
            .collect();
        let mut buf = BytesMut::new();
        for e in &envelopes {
            e.encode(&mut buf);
        }
        let mut bytes = buf.freeze();
        for e in &envelopes {
            prop_assert_eq!(&Envelope::<i64>::decode(&mut bytes).unwrap(), e);
        }
        prop_assert_eq!(bytes.len(), 0);
    }

    /// Canonical ordering is total and stable under shuffling.
    #[test]
    fn canonical_order_is_shuffle_invariant(
        mut pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..40),
        seed in any::<u64>(),
    ) {
        pairs.sort_unstable();
        pairs.dedup();
        let mk = |v: &[(u32, u32)]| -> Vec<Envelope<()>> {
            v.iter()
                .map(|&(f, s)| Envelope {
                    from: SubgraphId(f),
                    to: SubgraphId(0),
                    seq: s,
                    payload: (),
                })
                .collect()
        };
        let mut a = mk(&pairs);
        // Poor-man's shuffle with the seed.
        let mut b = mk(&pairs);
        if !b.is_empty() {
            let n = b.len();
            for i in 0..n {
                let j = (seed as usize).wrapping_mul(31).wrapping_add(i * 17) % n;
                b.swap(i, j);
            }
        }
        sort_envelopes(&mut a);
        sort_envelopes(&mut b);
        prop_assert_eq!(a, b);
    }

    /// `MessageBatch` frames round-trip for any envelope stream — including
    /// the empty frame and single-message batches (the 0..40 length range
    /// covers both, and shrinking drives failures toward them).
    #[test]
    fn message_batch_frame_roundtrip(
        envs in proptest::collection::vec(
            (any::<u32>(), 0u32..20, any::<u32>(), any::<i64>()),
            0..40,
        ),
    ) {
        let mut batch = MessageBatch::new();
        for &(f, t, s, p) in &envs {
            batch.push(Envelope {
                from: SubgraphId(f),
                to: SubgraphId(t),
                seq: s,
                payload: p,
            });
        }
        prop_assert_eq!(batch.len(), envs.len());
        let mut buf = BytesMut::new();
        batch.encode(&mut buf);
        let mut bytes = buf.freeze();
        let decoded = MessageBatch::<i64>::decode(&mut bytes).unwrap();
        prop_assert_eq!(bytes.len(), 0, "frame decodes with exact consumption");
        // Decoded runs must equal the sender-side grouping: one run per
        // destination in first-push order, envelopes in push order within
        // each run.
        let mut expect: Vec<(SubgraphId, Vec<Envelope<i64>>)> = Vec::new();
        for &(f, t, s, p) in &envs {
            let e = Envelope {
                from: SubgraphId(f),
                to: SubgraphId(t),
                seq: s,
                payload: p,
            };
            match expect.iter_mut().find(|(to, _)| *to == e.to) {
                Some((_, run)) => run.push(e),
                None => expect.push((e.to, vec![e])),
            }
        }
        prop_assert_eq!(decoded, expect);
    }

    /// An explicitly empty and an explicitly single-message frame
    /// round-trip (the degenerate cases the receiver must tolerate).
    #[test]
    fn message_batch_degenerate_frames(f in any::<u32>(), t in any::<u32>(), s in any::<u32>(), p in any::<i64>()) {
        let empty = MessageBatch::<i64>::new();
        prop_assert!(empty.is_empty());
        let mut buf = BytesMut::new();
        empty.encode(&mut buf);
        prop_assert!(MessageBatch::<i64>::decode(&mut buf.freeze()).unwrap().is_empty());

        let mut single = MessageBatch::new();
        let e = Envelope { from: SubgraphId(f), to: SubgraphId(t), seq: s, payload: p };
        single.push(e.clone());
        let mut buf = BytesMut::new();
        single.encode(&mut buf);
        let runs = MessageBatch::<i64>::decode(&mut buf.freeze()).unwrap();
        prop_assert_eq!(runs, vec![(SubgraphId(t), vec![e])]);
    }

    /// The receiver's k-way merge of sorted per-sender runs delivers the
    /// exact order of the reference implementation (concatenate + global
    /// `sort_envelopes`), for any distribution of unique (from, seq) keys
    /// across any number of runs.
    #[test]
    fn merge_sorted_runs_matches_reference_sort(
        mut keys in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..60),
        n_runs in 1usize..8,
    ) {
        keys.sort_unstable();
        keys.dedup(); // delivery keys are globally unique in the engine
        let mut runs: Vec<Vec<Envelope<u64>>> = vec![Vec::new(); n_runs];
        for (i, &(f, s)) in keys.iter().enumerate() {
            runs[i % n_runs].push(Envelope {
                from: SubgraphId(f),
                to: SubgraphId(0),
                seq: s,
                payload: i as u64,
            });
        }
        for run in &mut runs {
            sort_envelopes(run); // each per-sender run arrives sorted
        }
        let merged = merge_sorted_runs(runs.clone());
        let reference = legacy::deliver(runs);
        prop_assert_eq!(merged, reference);
    }

    /// Legacy per-envelope encoding and the batched frame carry the same
    /// payloads (the microbench compares like for like).
    #[test]
    fn legacy_envelopes_roundtrip(
        envs in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u64>()),
            0..40,
        ),
    ) {
        let envelopes: Vec<Envelope<u64>> = envs
            .iter()
            .map(|&(f, t, s, p)| Envelope {
                from: SubgraphId(f),
                to: SubgraphId(t),
                seq: s,
                payload: p,
            })
            .collect();
        let (count, mut bytes) = legacy::encode_envelopes(&envelopes);
        prop_assert_eq!(count as usize, envelopes.len());
        let decoded = legacy::decode_envelopes::<u64>(count, &mut bytes).unwrap();
        prop_assert_eq!(bytes.len(), 0);
        prop_assert_eq!(decoded, envelopes);
    }

    /// The barrier reduction equals the sequential fold for any worker
    /// contributions.
    #[test]
    fn sync_reduction_matches_sequential_fold(
        contributions in proptest::collection::vec((0u64..1000, any::<bool>()), 1..6),
    ) {
        let n = contributions.len();
        let sp = std::sync::Arc::new(SyncPoint::new(n));
        let expect_msgs: u64 = contributions.iter().map(|c| c.0).sum();
        let expect_halted = contributions.iter().all(|c| c.1);
        let handles: Vec<_> = contributions
            .into_iter()
            .map(|(msgs, halted)| {
                let sp = sp.clone();
                std::thread::spawn(move || {
                    sp.arrive(Contribution {
                        msgs_sent: msgs,
                        all_halted: halted,
                    })
                })
            })
            .collect();
        for h in handles {
            let agg = h.join().unwrap();
            prop_assert_eq!(agg.total_msgs, expect_msgs);
            prop_assert_eq!(agg.all_halted, expect_halted);
        }
    }
}
