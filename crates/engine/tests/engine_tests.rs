//! Engine integration tests: BSP semantics, TI-BSP patterns, determinism,
//! and GoFS-backed execution.

use std::sync::Arc;
use tempograph_core::{AttrType, TemplateBuilder, TimeSeriesCollection, VertexIdx};
use tempograph_engine::{run_job, Context, Envelope, InstanceSource, JobConfig, SubgraphProgram};
use tempograph_gofs::store::write_dataset;
use tempograph_partition::{
    discover_subgraphs, MultilevelPartitioner, PartitionedGraph, Partitioner, Partitioning,
    SubgraphId,
};

/// Path graph 0-1-…-(n-1), k equal chunks, one i64 vertex attr "x" where
/// x(v, t) = t*1000 + v.
fn fixture(
    n: u64,
    k: usize,
    timesteps: usize,
) -> (Arc<PartitionedGraph>, Arc<TimeSeriesCollection>) {
    let mut b = TemplateBuilder::new("fixture", false);
    b.vertex_schema().add("x", AttrType::Long);
    for i in 0..n {
        b.add_vertex(i);
    }
    for i in 0..n - 1 {
        b.add_edge(i, i, i + 1).unwrap();
    }
    let t = Arc::new(b.finalize().unwrap());
    let chunk = n as usize / k;
    let assignment = (0..n as usize)
        .map(|v| ((v / chunk).min(k - 1)) as u16)
        .collect();
    let pg = Arc::new(discover_subgraphs(
        t.clone(),
        Partitioning { assignment, k },
    ));
    let mut coll = TimeSeriesCollection::new(t, 0, 10);
    for ts in 0..timesteps {
        let mut g = coll.new_instance();
        for (i, x) in g.vertex_i64_mut("x").unwrap().iter_mut().enumerate() {
            *x = (ts * 1000 + i) as i64;
        }
        coll.push(g).unwrap();
    }
    (pg, Arc::new(coll))
}

// ---- 1. superstep messaging over remote edges ---------------------------

/// Floods a token from the subgraph containing vertex 0 across remote edges;
/// every subgraph counts the supersteps until it was reached.
struct Flood {
    reached: bool,
}

impl SubgraphProgram for Flood {
    type Msg = u32;

    fn compute(&mut self, ctx: &mut Context<'_, u32>, msgs: &[Envelope<u32>]) {
        let newly = if ctx.superstep() == 0 {
            ctx.subgraph().local_pos(VertexIdx(0)).is_some()
        } else {
            !msgs.is_empty() && !self.reached
        };
        if newly {
            self.reached = true;
            ctx.add_counter("reached_at", ctx.superstep() as u64 + 1);
            // Notify every neighbouring subgraph once.
            let mut targets: Vec<SubgraphId> = Vec::new();
            for pos in ctx.subgraph().positions() {
                for rn in ctx.subgraph().remote_neighbors(pos) {
                    if !targets.contains(&rn.subgraph) {
                        targets.push(rn.subgraph);
                    }
                }
            }
            for sg in targets {
                ctx.send_to_subgraph(sg, ctx.superstep() as u32);
            }
        }
        ctx.vote_to_halt();
    }
}

#[test]
fn flood_crosses_partitions_in_superstep_order() {
    let (pg, coll) = fixture(30, 3, 1);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        |_, _| Flood { reached: false },
        JobConfig::independent(1),
    );
    // 3 partitions in a path: 3 subgraphs, reached at supersteps 1, 2, 3.
    assert_eq!(result.counter_at("reached_at", 0), 1 + 2 + 3);
    assert_eq!(result.timesteps_run, 1);
    let m = &result.metrics[0];
    assert!(m.iter().map(|x| x.msgs_remote).sum::<u64>() >= 2);
}

// ---- 2. sequentially dependent state threading ---------------------------

/// Accumulates the sum of its instance's `x` values across timesteps by
/// threading a running total through `SendToNextTimestep`.
struct RunningSum {
    total: i64,
}

impl SubgraphProgram for RunningSum {
    type Msg = i64;

    fn compute(&mut self, ctx: &mut Context<'_, i64>, msgs: &[Envelope<i64>]) {
        if ctx.superstep() == 0 {
            let carried: i64 = msgs.iter().map(|e| e.payload).sum();
            let instance = ctx.instance();
            let here: i64 = instance.vertex_i64(0).unwrap().iter().sum();
            self.total = carried + here;
        }
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, i64>) {
        if ctx.timestep() + 1 < ctx.num_timesteps() {
            ctx.send_to_next_timestep(self.total);
        } else {
            // Final timestep: emit per-subgraph total on vertex 0 position.
            ctx.emit(ctx.subgraph().vertex_at(0), self.total as f64);
        }
    }
}

#[test]
fn sequentially_dependent_threads_state() {
    let (pg, coll) = fixture(12, 2, 4);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        |_, _| RunningSum { total: 0 },
        JobConfig::sequentially_dependent(4),
    );
    // Expected global sum: Σ_t Σ_v (1000t + v) for t in 0..4, v in 0..12.
    let expect: i64 = (0..4i64)
        .flat_map(|t| (0..12i64).map(move |v| 1000 * t + v))
        .sum();
    let got: i64 = result.emitted_at(3).map(|e| e.value as i64).sum();
    assert_eq!(got, expect);
    assert_eq!(result.timesteps_run, 4);
}

// ---- 3. eventually dependent merge ---------------------------------------

/// Each timestep sends its subgraph's vertex count to merge; merge sums all
/// received values and forwards them to the designated master subgraph.
struct CountToMerge;

impl SubgraphProgram for CountToMerge {
    type Msg = u64;

    fn compute(&mut self, ctx: &mut Context<'_, u64>, _msgs: &[Envelope<u64>]) {
        if ctx.superstep() == 0 {
            ctx.send_to_merge(ctx.subgraph().num_vertices() as u64);
        }
        ctx.vote_to_halt();
    }

    fn merge(&mut self, ctx: &mut Context<'_, u64>, msgs: &[Envelope<u64>]) {
        let master = ctx
            .partitioned_graph()
            .largest_subgraph_in_partition(0)
            .unwrap();
        if ctx.superstep() == 0 {
            // One message per timestep must have arrived, in order.
            assert_eq!(msgs.len(), ctx.num_timesteps());
            let sum: u64 = msgs.iter().map(|e| e.payload).sum();
            ctx.send_to_subgraph(master, sum);
        } else if ctx.subgraph().id() == master && !msgs.is_empty() {
            let grand: u64 = msgs.iter().map(|e| e.payload).sum();
            ctx.add_counter("grand_total", grand);
        }
        ctx.vote_to_halt();
    }
}

#[test]
fn eventually_dependent_merges_across_timesteps() {
    let (pg, coll) = fixture(20, 2, 5);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        |_, _| CountToMerge,
        JobConfig::eventually_dependent(5),
    );
    // 20 vertices × 5 timesteps = 100.
    let grand: u64 = result
        .merge_counters
        .get("grand_total")
        .unwrap()
        .iter()
        .sum();
    assert_eq!(grand, 100);
}

// ---- 4. while-active early termination ------------------------------------

/// Runs until timestep 2, then all subgraphs vote to halt the timestep loop.
struct StopsEarly;

impl SubgraphProgram for StopsEarly {
    type Msg = ();

    fn compute(&mut self, ctx: &mut Context<'_, ()>, _msgs: &[Envelope<()>]) {
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, ()>) {
        if ctx.timestep() >= 2 {
            ctx.vote_to_halt_timestep();
        } else {
            ctx.send_to_next_timestep(());
        }
    }
}

#[test]
fn while_active_stops_when_all_vote() {
    let (pg, coll) = fixture(10, 2, 8);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        |_, _| StopsEarly,
        JobConfig::sequentially_dependent(8).while_active(8),
    );
    assert_eq!(result.timesteps_run, 3, "stops after timestep index 2");
}

// ---- 5. initial messages ---------------------------------------------------

struct EchoInitial;

impl SubgraphProgram for EchoInitial {
    type Msg = u64;

    fn compute(&mut self, ctx: &mut Context<'_, u64>, msgs: &[Envelope<u64>]) {
        if ctx.timestep() == 0 && ctx.superstep() == 0 {
            for e in msgs {
                ctx.add_counter("initial_sum", e.payload);
            }
        }
        ctx.vote_to_halt();
    }
}

#[test]
fn initial_messages_reach_target_subgraph() {
    let (pg, coll) = fixture(10, 2, 1);
    let target = pg.subgraph_of_vertex(VertexIdx(7));
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        |_, _| EchoInitial,
        JobConfig::independent(1).with_initial_messages(vec![(target, 41), (target, 1)]),
    );
    assert_eq!(result.counter_at("initial_sum", 0), 42);
}

// ---- 6. GoFS source matches memory source ----------------------------------

#[test]
fn gofs_and_memory_sources_agree() {
    let (pg, coll) = fixture(24, 3, 6);
    let dir = std::env::temp_dir().join(format!("engine-gofs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_dataset(&dir, pg.clone(), &coll, 2, 2).unwrap();

    let mem = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        |_, _| RunningSum { total: 0 },
        JobConfig::sequentially_dependent(6),
    );
    let gofs = run_job(
        &pg,
        &InstanceSource::Gofs(dir.clone()),
        |_, _| RunningSum { total: 0 },
        JobConfig::sequentially_dependent(6),
    );
    assert_eq!(mem.emitted, gofs.emitted);
    // GoFS run must actually have hit the disk.
    let loads: u64 = gofs.metrics.iter().flatten().map(|m| m.slice_loads).sum();
    assert!(loads > 0, "expected real slice loads");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- 7. determinism ---------------------------------------------------------

#[test]
fn runs_are_deterministic() {
    let (pg, coll) = fixture(30, 3, 3);
    let src = InstanceSource::Memory(coll);
    let a = run_job(
        &pg,
        &src,
        |_, _| RunningSum { total: 0 },
        JobConfig::sequentially_dependent(3),
    );
    let b = run_job(
        &pg,
        &src,
        |_, _| RunningSum { total: 0 },
        JobConfig::sequentially_dependent(3),
    );
    assert_eq!(a.emitted, b.emitted);
    assert_eq!(a.timesteps_run, b.timesteps_run);
}

// ---- 8. temporal parallelism ablation ---------------------------------------

#[test]
fn temporal_parallelism_matches_barriered_run() {
    let (pg, coll) = fixture(20, 2, 5);
    let src = InstanceSource::Memory(coll);
    let normal = run_job(
        &pg,
        &src,
        |_, _| CountToMerge,
        JobConfig::eventually_dependent(5),
    );
    let fast = run_job(
        &pg,
        &src,
        |_, _| CountToMerge,
        JobConfig::eventually_dependent(5).with_temporal_parallelism(),
    );
    assert_eq!(
        normal.merge_counters.get("grand_total"),
        fast.merge_counters.get("grand_total")
    );
}

// ---- 9. lazy instance loading ------------------------------------------------

/// Touches instance data only in the subgraph containing vertex 0.
struct TouchOne;

impl SubgraphProgram for TouchOne {
    type Msg = ();

    fn compute(&mut self, ctx: &mut Context<'_, ()>, _msgs: &[Envelope<()>]) {
        if ctx.subgraph().local_pos(VertexIdx(0)).is_some() {
            let inst = ctx.instance();
            ctx.add_counter(
                "sum",
                inst.vertex_i64(0).unwrap().iter().sum::<i64>() as u64,
            );
        }
        ctx.vote_to_halt();
    }
}

#[test]
fn untouched_subgraphs_cause_no_io() {
    let (pg, coll) = fixture(20, 2, 2);
    let dir = std::env::temp_dir().join(format!("engine-lazy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_dataset(&dir, pg.clone(), &coll, 1, 1).unwrap();
    let result = run_job(
        &pg,
        &InstanceSource::Gofs(dir.clone()),
        |_, _| TouchOne,
        JobConfig::independent(2),
    );
    // Only partition 0 (owning vertex 0) should load slices: 1 slice per
    // timestep with packing=1, binning=1 and one subgraph per partition.
    let p0_loads: u64 = result.metrics.iter().map(|t| t[0].slice_loads).sum();
    let p1_loads: u64 = result.metrics.iter().map(|t| t[1].slice_loads).sum();
    assert_eq!(p0_loads, 2);
    assert_eq!(p1_loads, 0, "inactive partition must not touch disk");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---- 10. multilevel-partitioned end-to-end ----------------------------------

#[test]
fn works_with_multilevel_partitioning() {
    let mut b = TemplateBuilder::new("grid", false);
    b.vertex_schema().add("x", AttrType::Long);
    let side = 12u64;
    for i in 0..side * side {
        b.add_vertex(i);
    }
    let mut eid = 0;
    for y in 0..side {
        for x in 0..side {
            let v = y * side + x;
            if x + 1 < side {
                b.add_edge(eid, v, v + 1).unwrap();
                eid += 1;
            }
            if y + 1 < side {
                b.add_edge(eid, v, v + side).unwrap();
                eid += 1;
            }
        }
    }
    let t = Arc::new(b.finalize().unwrap());
    let part = MultilevelPartitioner::default().partition(&t, 4);
    let pg = Arc::new(discover_subgraphs(t.clone(), part));
    let mut coll = TimeSeriesCollection::new(t, 0, 1);
    for _ in 0..2 {
        coll.push(coll.new_instance()).unwrap();
    }
    let result = run_job(
        &pg,
        &InstanceSource::Memory(Arc::new(coll)),
        |_, _| Flood { reached: false },
        JobConfig::independent(1),
    );
    // Every subgraph must eventually be reached (grid is connected).
    let reached_count = result
        .counters
        .get("reached_at")
        .map(|rows| rows[0].iter().sum::<u64>());
    assert!(reached_count.is_some());
}

// ---- 11. intra-partition parallelism -----------------------------------

#[test]
fn intra_partition_parallelism_matches_sequential() {
    let (pg, coll) = fixture(24, 2, 4);
    let src = InstanceSource::Memory(coll);
    let sequential = run_job(
        &pg,
        &src,
        |_, _| RunningSum { total: 0 },
        JobConfig::sequentially_dependent(4),
    );
    let parallel = run_job(
        &pg,
        &src,
        |_, _| RunningSum { total: 0 },
        JobConfig::sequentially_dependent(4).with_intra_partition_parallelism(),
    );
    assert_eq!(sequential.emitted, parallel.emitted);
    assert_eq!(sequential.timesteps_run, parallel.timesteps_run);
}

#[test]
fn intra_partition_parallelism_preserves_messaging_semantics() {
    let (pg, coll) = fixture(30, 3, 1);
    let result = run_job(
        &pg,
        &InstanceSource::Memory(coll),
        |_, _| Flood { reached: false },
        JobConfig::independent(1).with_intra_partition_parallelism(),
    );
    assert_eq!(result.counter_at("reached_at", 0), 1 + 2 + 3);
}
