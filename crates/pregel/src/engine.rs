//! The vertex-centric BSP engine.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;
use tempograph_core::{GraphTemplate, Neighbor, VertexIdx};
use tempograph_engine::batch::BufferPool;
use tempograph_engine::sync::{join_partition, Contribution, SyncPoint};
use tempograph_engine::wire::WireMsg;
use tempograph_partition::Partitioning;
use tempograph_trace::{Clock, Trace, TraceConfig, TraceSink};

/// Per-vertex user logic (Pregel's `Compute`). One program *value* is shared
/// (immutably) by all vertices; per-vertex state lives in `Self::State`.
pub trait VertexProgram: Send + Sync + 'static {
    /// Message type exchanged between vertices.
    type Msg: WireMsg;
    /// Per-vertex mutable state (e.g. the distance label).
    type State: Send + Clone + 'static;

    /// Initial state of vertex `v`.
    fn init(&self, v: VertexIdx, template: &GraphTemplate) -> Self::State;

    /// Per-superstep vertex computation. A vertex is invoked at superstep 0
    /// and whenever it has incoming messages; calling
    /// [`VertexContext::vote_to_halt`] deactivates it until a message
    /// arrives (Pregel semantics).
    fn compute(&self, ctx: &mut VertexContext<'_, Self::State, Self::Msg>, msgs: &[Self::Msg]);

    /// Whether [`VertexProgram::combine`] should fold outgoing messages at
    /// the sender (Pregel's combiners). Default: no combining.
    fn has_combiner(&self) -> bool {
        false
    }

    /// Fold `incoming` into `acc` — two messages bound for the same vertex.
    /// Must be an associative, commutative reduction (min, max, sum); only
    /// called when [`VertexProgram::has_combiner`] returns true.
    fn combine(&self, _acc: &mut Self::Msg, _incoming: Self::Msg) {
        unreachable!("combine() called without has_combiner()");
    }
}

/// Context handed to one vertex invocation.
pub struct VertexContext<'a, S, M> {
    /// The vertex being computed.
    pub vertex: VertexIdx,
    /// Superstep number (0-based).
    pub superstep: usize,
    /// The shared template (adjacency lives here).
    pub template: &'a GraphTemplate,
    state: &'a mut S,
    out: &'a mut Vec<(VertexIdx, M)>,
    halted: &'a mut bool,
}

impl<'a, S, M: Clone> VertexContext<'a, S, M> {
    /// This vertex's mutable state.
    pub fn state(&mut self) -> &mut S {
        self.state
    }

    /// Out-neighbours (both directions for undirected templates).
    pub fn neighbors(&self) -> &'a [Neighbor] {
        self.template.neighbors(self.vertex)
    }

    /// Send a message to an arbitrary vertex, delivered next superstep.
    pub fn send(&mut self, to: VertexIdx, msg: M) {
        self.out.push((to, msg));
    }

    /// Send the same message to every neighbour.
    pub fn send_to_neighbors(&mut self, msg: M) {
        for n in self.template.neighbors(self.vertex) {
            self.out.push((n.vertex, msg.clone()));
        }
    }

    /// Halt until a message arrives.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }
}

/// Aggregate run statistics.
#[derive(Clone, Debug, Default)]
pub struct PregelMetrics {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Total messages (local + remote).
    pub messages: u64,
    /// Messages that crossed partitions (serialised).
    pub remote_messages: u64,
    /// Serialised bytes shipped across partitions.
    pub remote_bytes: u64,
    /// Messages eliminated by the sender-side combiner.
    pub combined_messages: u64,
    /// Total compute nanoseconds summed over workers.
    pub compute_ns: u64,
    /// Total barrier-wait nanoseconds summed over workers.
    pub sync_ns: u64,
    /// End-to-end wall nanoseconds.
    pub wall_ns: u64,
}

impl PregelMetrics {
    /// Fold this baseline run's aggregates into a metrics registry under
    /// the `pregel_` prefix, so vertex-centric baseline numbers sit next to
    /// the TI-BSP job metrics in one exposition dump.
    pub fn export_into(&self, reg: &mut tempograph_metrics::Registry) {
        reg.counter_add("pregel_supersteps_total", &[], self.supersteps as u64);
        reg.counter_add("pregel_msgs_total", &[], self.messages);
        reg.counter_add("pregel_msgs_remote_total", &[], self.remote_messages);
        reg.counter_add("pregel_bytes_remote_total", &[], self.remote_bytes);
        reg.counter_add("pregel_msgs_combined_total", &[], self.combined_messages);
        reg.counter_add("pregel_compute_ns_total", &[], self.compute_ns);
        reg.counter_add("pregel_sync_ns_total", &[], self.sync_ns);
        reg.counter_add("pregel_wall_ns_total", &[], self.wall_ns);
        reg.gauge_set(
            "pregel_msgs_remote_fraction",
            &[],
            tempograph_metrics::ratio_or_zero(self.remote_messages, self.messages),
        );
    }
}

/// Final states plus metrics.
pub struct PregelResult<S> {
    /// Final state per vertex, by dense vertex index.
    pub states: Vec<S>,
    /// Run statistics.
    pub metrics: PregelMetrics,
    /// Assembled trace (only from [`run_pregel_traced`]).
    pub trace: Option<Trace>,
}

struct WorkerOut<S> {
    states: Vec<(u32, S)>,
    messages: u64,
    remote_messages: u64,
    remote_bytes: u64,
    combined_messages: u64,
    compute_ns: u64,
    sync_ns: u64,
    supersteps: usize,
    sink: TraceSink,
}

/// Run a vertex-centric BSP to quiescence (all vertices halted, no messages
/// in flight). `max_supersteps` bounds runaway programs.
pub fn run_pregel<P: VertexProgram>(
    template: &Arc<GraphTemplate>,
    partitioning: &Partitioning,
    program: &P,
    max_supersteps: usize,
) -> PregelResult<P::State> {
    run_pregel_impl(template, partitioning, program, max_supersteps, None)
}

/// [`run_pregel`] with structured tracing: each partition records
/// `"superstep"` / `"compute"` / `"send"` / `"barrier.arrive"` /
/// `"barrier.post"` spans onto its track, and the result carries the
/// assembled [`Trace`].
pub fn run_pregel_traced<P: VertexProgram>(
    template: &Arc<GraphTemplate>,
    partitioning: &Partitioning,
    program: &P,
    max_supersteps: usize,
    trace: TraceConfig,
) -> PregelResult<P::State> {
    run_pregel_impl(template, partitioning, program, max_supersteps, Some(trace))
}

fn run_pregel_impl<P: VertexProgram>(
    template: &Arc<GraphTemplate>,
    partitioning: &Partitioning,
    program: &P,
    max_supersteps: usize,
    trace: Option<TraceConfig>,
) -> PregelResult<P::State> {
    partitioning
        .validate(template)
        .expect("partitioning must match template");
    let k = partitioning.k;
    let n = template.num_vertices();

    // Local vertex lists per partition (ascending order).
    let mut part_vertices: Vec<Vec<u32>> = vec![Vec::new(); k];
    for v in 0..n as u32 {
        part_vertices[partitioning.assignment[v as usize] as usize].push(v);
    }
    // Global → local position map (u32::MAX = foreign).
    let mut local_pos = vec![u32::MAX; n];
    for verts in &part_vertices {
        for (i, &v) in verts.iter().enumerate() {
            local_pos[v as usize] = i as u32;
        }
    }
    let local_pos = Arc::new(local_pos);

    let sync = SyncPoint::new(k);
    let mut txs: Vec<Sender<Bytes>> = Vec::with_capacity(k);
    let mut rxs: Vec<Option<Receiver<Bytes>>> = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(Some(rx));
    }

    let wall = Clock::start();
    let outs: Vec<WorkerOut<P::State>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        for p in 0..k {
            let rx = rxs[p].take().expect("unclaimed");
            let txs = txs.clone();
            let sync = &sync;
            let template = template.clone();
            let verts = std::mem::take(&mut part_vertices[p]);
            let local_pos = local_pos.clone();
            let assignment = &partitioning.assignment;
            let sink = trace
                .map(|tc| tc.sink(p as u32))
                .unwrap_or_else(TraceSink::inert);
            handles.push(scope.spawn(move || {
                worker::<P>(
                    p as u16,
                    template,
                    verts,
                    local_pos,
                    assignment,
                    program,
                    rx,
                    txs,
                    sync,
                    max_supersteps,
                    sink,
                )
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(p, h)| join_partition(p, h.join()))
            .collect()
    });

    let mut states: Vec<Option<P::State>> = vec![None; n];
    let mut metrics = PregelMetrics {
        wall_ns: wall.elapsed_ns(),
        ..Default::default()
    };
    let mut sinks = Vec::with_capacity(outs.len());
    for o in outs {
        for (v, s) in o.states {
            states[v as usize] = Some(s);
        }
        metrics.messages += o.messages;
        metrics.remote_messages += o.remote_messages;
        metrics.remote_bytes += o.remote_bytes;
        metrics.combined_messages += o.combined_messages;
        metrics.compute_ns += o.compute_ns;
        metrics.sync_ns += o.sync_ns;
        metrics.supersteps = metrics.supersteps.max(o.supersteps);
        sinks.push((format!("partition {}", o.sink.track()), o.sink));
    }
    let assembled = trace.map(|_| Trace::from_sinks(sinks));
    PregelResult {
        states: states.into_iter().map(|s| s.expect("all init")).collect(),
        metrics,
        trace: assembled,
    }
}

#[allow(clippy::too_many_arguments)]
fn worker<P: VertexProgram>(
    partition: u16,
    template: Arc<GraphTemplate>,
    verts: Vec<u32>,
    local_pos: Arc<Vec<u32>>,
    assignment: &[u16],
    program: &P,
    rx: Receiver<Bytes>,
    txs: Vec<Sender<Bytes>>,
    sync: &SyncPoint,
    max_supersteps: usize,
    mut sink: TraceSink,
) -> WorkerOut<P::State> {
    let nl = verts.len();
    let mut states: Vec<P::State> = verts
        .iter()
        .map(|&v| program.init(VertexIdx(v), &template))
        .collect();
    let mut halted = vec![false; nl];
    let mut inbox: Vec<Vec<P::Msg>> = vec![Vec::new(); nl];
    let mut out = WorkerOut {
        states: Vec::new(),
        messages: 0,
        remote_messages: 0,
        remote_bytes: 0,
        combined_messages: 0,
        compute_ns: 0,
        sync_ns: 0,
        supersteps: 0,
        sink: TraceSink::inert(),
    };
    let mut pool = BufferPool::new();

    let mut ss = 0usize;
    loop {
        let compute0 = sink.now();
        let mut sent: Vec<(VertexIdx, P::Msg)> = Vec::new();
        for i in 0..nl {
            let msgs = std::mem::take(&mut inbox[i]);
            if ss > 0 && halted[i] && msgs.is_empty() {
                continue;
            }
            halted[i] = false;
            let mut is_halted = false;
            let mut ctx = VertexContext {
                vertex: VertexIdx(verts[i]),
                superstep: ss,
                template: &template,
                state: &mut states[i],
                out: &mut sent,
                halted: &mut is_halted,
            };
            program.compute(&mut ctx, &msgs);
            halted[i] = is_halted;
        }
        let compute1 = sink.now();
        out.compute_ns += compute1 - compute0;
        sink.span_arg_at("compute", compute0, compute1, "superstep", ss as u64);

        // Sender-side combining (Pregel's combiners): fold messages bound
        // for the same vertex before any of them is serialised.
        let n_sent = sent.len() as u64;
        out.messages += n_sent;
        if program.has_combiner() && sent.len() > 1 {
            let mut acc_at: HashMap<u32, usize> = HashMap::new();
            let mut combined: Vec<(VertexIdx, P::Msg)> = Vec::with_capacity(sent.len());
            for (to, msg) in sent {
                match acc_at.entry(to.0) {
                    Entry::Occupied(o) => program.combine(&mut combined[*o.get()].1, msg),
                    Entry::Vacant(v) => {
                        v.insert(combined.len());
                        combined.push((to, msg));
                    }
                }
            }
            out.combined_messages += n_sent - combined.len() as u64;
            sent = combined;
        }

        // Route: local direct; remote written straight into one pooled
        // frame per peer (the count prefix is patched in place afterwards —
        // no second copy).
        let send_span = sink.start();
        let mut remote: Vec<Option<(BytesMut, u32)>> = vec![None; txs.len()];
        for (to, msg) in sent {
            let tp = assignment[to.idx()] as usize;
            if tp == partition as usize {
                inbox[local_pos[to.idx()] as usize].push(msg);
            } else {
                out.remote_messages += 1;
                let slot = remote[tp].get_or_insert_with(|| {
                    let mut buf = pool.get();
                    buf.put_u32_le(0); // message count, patched below
                    (buf, 0)
                });
                to.encode(&mut slot.0);
                msg.encode(&mut slot.0);
                slot.1 += 1;
            }
        }
        for (tp, slot) in remote.into_iter().enumerate() {
            if let Some((mut buf, count)) = slot {
                buf[..4].copy_from_slice(&count.to_le_bytes());
                let bytes = buf.freeze();
                out.remote_bytes += bytes.len() as u64;
                txs[tp].send(bytes).expect("receiver alive");
            }
        }
        sink.span_since("send", send_span);

        let wait0 = sink.now();
        let agg = sync.arrive(Contribution {
            msgs_sent: n_sent,
            all_halted: halted.iter().all(|&h| h),
        });
        let wait1 = sink.now();
        out.sync_ns += wait1 - wait0;
        sink.span_at("barrier.arrive", wait0, wait1);
        sink.straggler_check(wait1 - wait0);

        // Drain remote batches, recycling frame allocations.
        let drain_span = sink.start();
        while let Ok(mut bytes) = rx.try_recv() {
            let count = bytes.get_u32_le();
            for _ in 0..count {
                // Frames are produced by this same process; decode failure
                // here is a bug, not recoverable input.
                let to = VertexIdx::decode(&mut bytes).expect("pregel-internal frame");
                let msg = P::Msg::decode(&mut bytes).expect("pregel-internal frame");
                inbox[local_pos[to.idx()] as usize].push(msg);
            }
            pool.reclaim(bytes);
        }
        sink.span_since("drain", drain_span);
        // Post-drain rendezvous: see tempograph-engine — a fast worker must
        // not send superstep s+1 batches into a slow worker's s drain.
        let wait2 = sink.now();
        sync.barrier();
        let wait3 = sink.now();
        out.sync_ns += wait3 - wait2;
        sink.span_at("barrier.post", wait2, wait3);
        sink.span_arg_at("superstep", compute0, wait3, "superstep", ss as u64);

        ss += 1;
        if agg.should_stop() || ss >= max_supersteps {
            break;
        }
    }

    out.supersteps = ss;
    out.states = verts.iter().zip(states).map(|(&v, s)| (v, s)).collect();
    out.sink = sink;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempograph_core::TemplateBuilder;

    /// Max-propagation: every vertex converges to the max vertex id in its
    /// component.
    struct MaxProp;

    impl VertexProgram for MaxProp {
        type Msg = u64;
        type State = u64;

        fn init(&self, v: VertexIdx, t: &GraphTemplate) -> u64 {
            t.vertex_id(v)
        }

        fn compute(&self, ctx: &mut VertexContext<'_, u64, u64>, msgs: &[u64]) {
            let mut best = *ctx.state();
            if ctx.superstep == 0 {
                best = *ctx.state();
            }
            for &m in msgs {
                best = best.max(m);
            }
            if best > *ctx.state() || ctx.superstep == 0 {
                *ctx.state() = best;
                ctx.send_to_neighbors(best);
            }
            ctx.vote_to_halt();
        }
    }

    fn path(n: u64) -> Arc<GraphTemplate> {
        let mut b = TemplateBuilder::new("path", false);
        for i in 0..n {
            b.add_vertex(i);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i, i + 1).unwrap();
        }
        Arc::new(b.finalize().unwrap())
    }

    #[test]
    fn max_propagation_converges() {
        let t = path(20);
        for k in [1, 2, 4] {
            let part = Partitioning {
                assignment: (0..20).map(|v| (v % k) as u16).collect(),
                k,
            };
            let r = run_pregel(&t, &part, &MaxProp, 1000);
            assert!(r.states.iter().all(|&s| s == 19), "k={k}");
            // A path of 20 vertices needs ~19 supersteps: vertex-centric
            // pays diameter in supersteps.
            assert!(
                r.metrics.supersteps >= 19,
                "k={k}: {}",
                r.metrics.supersteps
            );
        }
    }

    #[test]
    fn metrics_export_into_registry() {
        let t = path(10);
        let part = Partitioning {
            assignment: (0..10).map(|v| (v % 2) as u16).collect(),
            k: 2,
        };
        let r = run_pregel(&t, &part, &MaxProp, 1000);
        let mut reg = tempograph_metrics::Registry::new();
        r.metrics.export_into(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_total("pregel_supersteps_total"),
            r.metrics.supersteps as u64
        );
        assert_eq!(snap.counter_total("pregel_msgs_total"), r.metrics.messages);
        match snap.get("pregel_msgs_remote_fraction", &[]) {
            Some(tempograph_metrics::Metric::Gauge(g)) => {
                assert!(g.is_finite() && (0.0..=1.0).contains(g));
            }
            other => panic!("expected gauge, got {other:?}"),
        }
        assert!(snap
            .to_prometheus()
            .contains("# TYPE pregel_msgs_total counter"));

        // An idle baseline (no messages) keeps the ratio finite.
        let mut reg = tempograph_metrics::Registry::new();
        PregelMetrics::default().export_into(&mut reg);
        match reg.get("pregel_msgs_remote_fraction", &[]) {
            Some(tempograph_metrics::Metric::Gauge(g)) => assert_eq!(*g, 0.0),
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn traced_run_derives_metrics_from_spans() {
        let t = path(12);
        let part = Partitioning {
            assignment: (0..12).map(|v| (v % 2) as u16).collect(),
            k: 2,
        };
        let r = run_pregel_traced(&t, &part, &MaxProp, 100, TraceConfig::new());
        assert!(r.states.iter().all(|&s| s == 11));
        let trace = r.trace.expect("traced run returns a trace");
        trace.validate().expect("trace invariants hold");
        assert_eq!(trace.tracks.len(), 2);
        // Aggregates are exactly derivable: the worker fed the same clock
        // readings to the metrics and the spans.
        let compute: u64 = trace.sum_spans("compute");
        assert_eq!(compute, r.metrics.compute_ns);
        let sync: u64 = trace.sum_spans("barrier.arrive") + trace.sum_spans("barrier.post");
        assert_eq!(sync, r.metrics.sync_ns);
        assert_eq!(
            trace.span_count("superstep"),
            r.metrics.supersteps * 2,
            "one superstep span per partition per superstep"
        );
        // Untraced runs carry no trace.
        assert!(run_pregel(&t, &part, &MaxProp, 100).trace.is_none());
    }

    #[test]
    fn remote_traffic_only_with_multiple_partitions() {
        let t = path(10);
        let single = run_pregel(
            &t,
            &Partitioning {
                assignment: vec![0; 10],
                k: 1,
            },
            &MaxProp,
            100,
        );
        assert_eq!(single.metrics.remote_messages, 0);
        let multi = run_pregel(
            &t,
            &Partitioning {
                assignment: (0..10).map(|v| (v % 2) as u16).collect(),
                k: 2,
            },
            &MaxProp,
            100,
        );
        assert!(multi.metrics.remote_messages > 0);
        assert!(multi.metrics.remote_bytes > 0);
    }
}
