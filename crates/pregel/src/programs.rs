//! Standard vertex programs: SSSP, BFS, WCC.

use crate::engine::{VertexContext, VertexProgram};
use tempograph_core::{GraphTemplate, VertexIdx};

/// Vertex-centric SSSP (Giraph's canonical example, and the paper's
/// baseline workload). `latencies` is an optional per-edge weight table
/// indexed by dense edge index; `None` ⇒ unit weights (BFS-equivalent,
/// matching the paper's unweighted-graph setup for Giraph).
pub struct SsspVertex {
    /// Source vertex.
    pub source: VertexIdx,
    /// Optional per-edge weights (dense edge index).
    pub latencies: Option<Vec<f64>>,
}

impl VertexProgram for SsspVertex {
    type Msg = f64;
    type State = f64;

    fn init(&self, _v: VertexIdx, _t: &GraphTemplate) -> f64 {
        f64::INFINITY
    }

    fn compute(&self, ctx: &mut VertexContext<'_, f64, f64>, msgs: &[f64]) {
        let mut best = *ctx.state();
        if ctx.superstep == 0 && ctx.vertex == self.source {
            best = 0.0;
        }
        for &m in msgs {
            if m < best {
                best = m;
            }
        }
        if best < *ctx.state() || (ctx.superstep == 0 && ctx.vertex == self.source) {
            *ctx.state() = best;
            let neighbors = ctx.neighbors().to_vec();
            for n in neighbors {
                let w = self.latencies.as_ref().map_or(1.0, |l| l[n.edge.idx()]);
                ctx.send(n.vertex, best + w);
            }
        }
        ctx.vote_to_halt();
    }

    // Min-combining: the vertex keeps the smallest incoming distance, so
    // collapsing same-destination messages to their min at the sender is
    // lossless (Pregel's canonical combiner example).
    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, acc: &mut f64, incoming: f64) {
        if incoming < *acc {
            *acc = incoming;
        }
    }
}

/// Vertex-centric BFS: hop counts from a source (unit-weight SSSP with
/// integer levels).
pub struct BfsVertex {
    /// Source vertex.
    pub source: VertexIdx,
}

impl VertexProgram for BfsVertex {
    type Msg = u64;
    type State = i64;

    fn init(&self, _v: VertexIdx, _t: &GraphTemplate) -> i64 {
        -1
    }

    fn compute(&self, ctx: &mut VertexContext<'_, i64, u64>, msgs: &[u64]) {
        if *ctx.state() < 0 {
            let level = if ctx.superstep == 0 && ctx.vertex == self.source {
                Some(0u64)
            } else {
                msgs.iter().min().copied()
            };
            if let Some(l) = level {
                *ctx.state() = l as i64;
                ctx.send_to_neighbors(l + 1);
            }
        }
        ctx.vote_to_halt();
    }

    // An unvisited vertex adopts the minimum incoming level, so min-combining
    // at the sender is lossless.
    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, acc: &mut u64, incoming: u64) {
        if incoming < *acc {
            *acc = incoming;
        }
    }
}

/// Vertex-centric PageRank with a fixed iteration count — one superstep per
/// iteration, messages carry `rank/degree` shares (cf. the subgraph-centric
/// variant in `tempograph-algos`; the results are identical, the messaging
/// volume is not).
pub struct PageRankVertex {
    /// Iterations to run.
    pub iterations: usize,
    /// Total vertex count (for the teleport term).
    pub n: f64,
}

impl VertexProgram for PageRankVertex {
    type Msg = f64;
    type State = f64;

    fn init(&self, _v: VertexIdx, _t: &GraphTemplate) -> f64 {
        1.0 / self.n
    }

    fn compute(&self, ctx: &mut VertexContext<'_, f64, f64>, msgs: &[f64]) {
        if ctx.superstep > 0 {
            let incoming: f64 = msgs.iter().sum();
            *ctx.state() = 0.15 / self.n + 0.85 * incoming;
        }
        if ctx.superstep == self.iterations {
            ctx.vote_to_halt();
            return;
        }
        let deg = ctx.neighbors().len();
        if deg > 0 {
            let share = *ctx.state() / deg as f64;
            ctx.send_to_neighbors(share);
        } else {
            // Keep the dangling vertex alive through the fixed iterations.
            let me = ctx.vertex;
            ctx.send(me, 0.0);
        }
    }
}

/// Vertex-centric WCC: hash-min label propagation over external vertex ids.
pub struct WccVertex;

impl VertexProgram for WccVertex {
    type Msg = u64;
    type State = u64;

    fn init(&self, v: VertexIdx, t: &GraphTemplate) -> u64 {
        t.vertex_id(v)
    }

    fn compute(&self, ctx: &mut VertexContext<'_, u64, u64>, msgs: &[u64]) {
        let mut best = *ctx.state();
        for &m in msgs {
            best = best.min(m);
        }
        if best < *ctx.state() || ctx.superstep == 0 {
            *ctx.state() = best;
            ctx.send_to_neighbors(best);
        }
        ctx.vote_to_halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_pregel;
    use std::sync::Arc;
    use tempograph_core::TemplateBuilder;
    use tempograph_partition::Partitioning;

    fn grid(side: u64) -> Arc<GraphTemplate> {
        let mut b = TemplateBuilder::new("grid", false);
        for i in 0..side * side {
            b.add_vertex(i);
        }
        let mut eid = 0;
        for y in 0..side {
            for x in 0..side {
                let v = y * side + x;
                if x + 1 < side {
                    b.add_edge(eid, v, v + 1).unwrap();
                    eid += 1;
                }
                if y + 1 < side {
                    b.add_edge(eid, v, v + side).unwrap();
                    eid += 1;
                }
            }
        }
        Arc::new(b.finalize().unwrap())
    }

    fn stripes(n: usize, k: usize) -> Partitioning {
        Partitioning {
            assignment: (0..n).map(|v| ((v * k) / n) as u16).collect(),
            k,
        }
    }

    #[test]
    fn bfs_levels_match_manhattan_distance_on_grid() {
        let side = 6u64;
        let t = grid(side);
        let part = stripes(t.num_vertices(), 3);
        let r = run_pregel(
            &t,
            &part,
            &BfsVertex {
                source: VertexIdx(0),
            },
            1000,
        );
        for y in 0..side {
            for x in 0..side {
                let v = (y * side + x) as usize;
                assert_eq!(r.states[v], (x + y) as i64, "vertex ({x},{y})");
            }
        }
    }

    #[test]
    fn sssp_weighted_respects_weights() {
        // Path 0-1-2 with weights 5, 1.
        let mut b = TemplateBuilder::new("p3", false);
        for i in 0..3 {
            b.add_vertex(i);
        }
        b.add_edge(0, 0, 1).unwrap();
        b.add_edge(1, 1, 2).unwrap();
        let t = Arc::new(b.finalize().unwrap());
        let prog = SsspVertex {
            source: VertexIdx(0),
            latencies: Some(vec![5.0, 1.0]),
        };
        let r = run_pregel(&t, &stripes(3, 2), &prog, 100);
        assert_eq!(r.states, vec![0.0, 5.0, 6.0]);
    }

    #[test]
    fn sssp_unweighted_equals_bfs() {
        let t = grid(5);
        let part = stripes(t.num_vertices(), 2);
        let sssp = run_pregel(
            &t,
            &part,
            &SsspVertex {
                source: VertexIdx(0),
                latencies: None,
            },
            1000,
        );
        let bfs = run_pregel(
            &t,
            &part,
            &BfsVertex {
                source: VertexIdx(0),
            },
            1000,
        );
        for v in 0..t.num_vertices() {
            assert_eq!(sssp.states[v] as i64, bfs.states[v]);
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_matches_power_iteration() {
        let t = grid(5);
        let n = t.num_vertices();
        let part = stripes(n, 2);
        let r = run_pregel(
            &t,
            &part,
            &PageRankVertex {
                iterations: 8,
                n: n as f64,
            },
            100,
        );
        let total: f64 = r.states.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "ranks sum to {total}");
        // Reference power iteration.
        let mut adj = vec![Vec::new(); n];
        for e in t.edges() {
            let (s, d) = t.endpoints(e);
            adj[s.idx()].push(d.idx());
            adj[d.idx()].push(s.idx());
        }
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..8 {
            let mut next = vec![0.15 / n as f64; n];
            for u in 0..n {
                let share = 0.85 * rank[u] / adj[u].len() as f64;
                for &v in &adj[u] {
                    next[v] += share;
                }
            }
            rank = next;
        }
        for (v, expect) in rank.iter().enumerate() {
            assert!((r.states[v] - expect).abs() < 1e-12, "vertex {v}");
        }
    }

    #[test]
    fn wcc_finds_components() {
        // Two disjoint paths.
        let mut b = TemplateBuilder::new("2p", false);
        for i in 0..8 {
            b.add_vertex(i);
        }
        b.add_edge(0, 0, 1).unwrap();
        b.add_edge(1, 1, 2).unwrap();
        b.add_edge(2, 4, 5).unwrap();
        b.add_edge(3, 5, 6).unwrap();
        b.add_edge(4, 6, 7).unwrap();
        let t = Arc::new(b.finalize().unwrap());
        let r = run_pregel(&t, &stripes(8, 2), &WccVertex, 100);
        assert_eq!(&r.states[0..3], &[0, 0, 0]);
        assert_eq!(r.states[3], 3); // isolated vertex
        assert_eq!(&r.states[4..8], &[4, 4, 4, 4]);
    }
}
