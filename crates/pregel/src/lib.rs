//! # tempograph-pregel — a Giraph/Pregel-style vertex-centric baseline
//!
//! The paper's §IV.C baseline is Apache Giraph, a vertex-centric BSP system:
//! user logic runs per *vertex*, messages travel per vertex, and every
//! traversal hop costs a full barriered superstep — which is exactly why the
//! subgraph-centric model wins on high-diameter graphs (a subgraph crosses
//! its whole interior in one superstep; a vertex program needs one superstep
//! per hop).
//!
//! This crate is a from-scratch vertex-centric engine on the same simulated
//! cluster substrate as `tempograph-engine` (one worker thread per
//! partition, serialised cross-partition batches, barrier-with-reduction
//! sync), so Fig. 5b's comparison measures model differences, not substrate
//! differences.

#![forbid(unsafe_code)]

pub mod engine;
pub mod programs;

pub use engine::{
    run_pregel, run_pregel_traced, PregelMetrics, PregelResult, VertexContext, VertexProgram,
};
pub use programs::{BfsVertex, PageRankVertex, SsspVertex, WccVertex};
