//! Property-based tests for the core data model.

use proptest::prelude::*;
use std::sync::Arc;
use tempograph_core::{
    AttrType, AttrValue, Column, GraphInstance, TemplateBuilder, TimeSeriesCollection, VertexIdx,
};

fn arb_attr_type() -> impl Strategy<Value = AttrType> {
    prop_oneof![
        Just(AttrType::Long),
        Just(AttrType::Double),
        Just(AttrType::Bool),
        Just(AttrType::Text),
        Just(AttrType::LongList),
        Just(AttrType::TextList),
    ]
}

fn arb_value_of(ty: AttrType) -> BoxedStrategy<AttrValue> {
    match ty {
        AttrType::Long => any::<i64>().prop_map(AttrValue::Long).boxed(),
        AttrType::Double => any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(AttrValue::Double)
            .boxed(),
        AttrType::Bool => any::<bool>().prop_map(AttrValue::Bool).boxed(),
        AttrType::Text => "[a-z#]{0,12}".prop_map(AttrValue::Text).boxed(),
        AttrType::LongList => proptest::collection::vec(any::<i64>(), 0..6)
            .prop_map(AttrValue::LongList)
            .boxed(),
        AttrType::TextList => proptest::collection::vec("[a-z#]{0,8}".prop_map(String::from), 0..4)
            .prop_map(AttrValue::TextList)
            .boxed(),
    }
}

proptest! {
    /// Dynamic set-then-get returns exactly what was stored, for every
    /// attribute type.
    #[test]
    fn column_set_get_roundtrip(
        ty in arb_attr_type(),
        len in 1usize..40,
        idx_frac in 0.0f64..1.0,
    ) {
        let mut col = Column::new(ty, len);
        let idx = ((len - 1) as f64 * idx_frac) as usize;
        let runner = &mut proptest::test_runner::TestRunner::deterministic();
        let value = arb_value_of(ty).new_tree(runner).unwrap().current();
        col.set(idx, value.clone()).unwrap();
        prop_assert_eq!(col.get(idx), value);
        prop_assert_eq!(col.len(), len);
    }

    /// Collections only accept the exact periodic timestamp sequence.
    #[test]
    fn collection_timestamps_are_periodic(
        t0 in -1_000_000i64..1_000_000,
        period in 1i64..10_000,
        n in 1usize..20,
    ) {
        let mut b = TemplateBuilder::new("p", false);
        b.add_vertex(0);
        let t = Arc::new(b.finalize().unwrap());
        let mut c = TimeSeriesCollection::new(t, t0, period);
        for i in 0..n {
            prop_assert_eq!(c.next_timestamp(), t0 + period * i as i64);
            c.push(c.new_instance()).unwrap();
        }
        prop_assert_eq!(c.len(), n);
        // at_time maps any time within the covered range to the right bucket.
        let probe = t0 + period * (n as i64 / 2) + period / 2;
        let g = c.at_time(probe).unwrap();
        prop_assert_eq!(g.timestamp(), t0 + period * (n as i64 / 2));
    }

    /// CSR adjacency is consistent: undirected degree sums to 2|E|, every
    /// adjacency entry's edge connects back, and neighbor lists are sorted.
    #[test]
    fn template_csr_invariants(
        n in 2u64..60,
        edges in proptest::collection::vec((0u64..60, 0u64..60), 0..120),
    ) {
        let mut b = TemplateBuilder::new("g", false);
        for v in 0..n {
            b.add_vertex(v);
        }
        for (eid, (s, d)) in edges.into_iter().enumerate() {
            let (s, d) = (s % n, d % n);
            b.add_edge(eid as u64, s, d).unwrap();
        }
        let g = b.finalize().unwrap();
        let total_deg: usize = g.vertices().map(|v| g.degree(v)).sum();
        // Self-loops appear twice in undirected adjacency too.
        prop_assert_eq!(total_deg, 2 * g.num_edges());
        for v in g.vertices() {
            let ns = g.neighbors(v);
            for w in ns.windows(2) {
                prop_assert!((w[0].vertex, w[0].edge) <= (w[1].vertex, w[1].edge));
            }
            for nb in ns {
                let (a, bnd) = g.endpoints(nb.edge);
                prop_assert!(a == v || bnd == v, "edge must touch its source");
            }
        }
    }

    /// Instances always validate against the template that built them, and
    /// all columns match the vertex/edge counts.
    #[test]
    fn fresh_instances_validate(
        nv in 1u64..40,
        ne_frac in 0usize..40,
        n_attrs in 0usize..4,
    ) {
        let mut b = TemplateBuilder::new("g", true);
        for (i, ty) in [AttrType::Long, AttrType::Double, AttrType::TextList, AttrType::Bool]
            .into_iter()
            .take(n_attrs)
            .enumerate()
        {
            b.vertex_schema().add(format!("a{i}"), ty);
            b.edge_schema().add(format!("b{i}"), ty);
        }
        for v in 0..nv {
            b.add_vertex(v);
        }
        for e in 0..ne_frac.min((nv * nv) as usize) as u64 {
            b.add_edge(e, e % nv, (e * 7 + 1) % nv).unwrap();
        }
        let t = b.finalize().unwrap();
        let g = GraphInstance::new(&t, 123);
        prop_assert!(g.validate_against(&t).is_ok());
        for c in g.vertex_columns() {
            prop_assert_eq!(c.len(), t.num_vertices());
        }
        for c in g.edge_columns() {
            prop_assert_eq!(c.len(), t.num_edges());
        }
    }

    /// approx_diameter is a lower bound on the true diameter and at least
    /// the distance found by any BFS (sanity on paths where it is exact).
    #[test]
    fn path_diameter_exact(n in 2u64..80) {
        let mut b = TemplateBuilder::new("p", false);
        for v in 0..n {
            b.add_vertex(v);
        }
        for e in 0..n - 1 {
            b.add_edge(e, e, e + 1).unwrap();
        }
        let g = b.finalize().unwrap();
        prop_assert_eq!(g.approx_diameter(), (n - 1) as usize);
        let _ = VertexIdx(0);
    }
}
