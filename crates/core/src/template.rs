//! The graph template `Ĝ = ⟨V̂, Ê⟩`: time-invariant topology + schemas.
//!
//! Built once via [`TemplateBuilder`], then shared immutably (typically as an
//! `Arc<GraphTemplate>`) by every instance, partition and engine worker.
//! Adjacency is CSR — a flat offsets/targets pair — so traversal is a pair of
//! slice reads with no pointer chasing.

use crate::attr::Schema;
use crate::error::{CoreError, Result};
use crate::ids::{EdgeIdx, VertexIdx};
use std::collections::HashMap;

/// One adjacency entry: the neighbouring vertex and the edge connecting it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Neighbor {
    /// The vertex at the other end of the edge.
    pub vertex: VertexIdx,
    /// The connecting edge (shared with the reverse direction when the
    /// template is undirected).
    pub edge: EdgeIdx,
}

/// Time-invariant topology and attribute schemas shared by all instances.
#[derive(Clone, Debug)]
pub struct GraphTemplate {
    name: String,
    directed: bool,
    vertex_ids: Vec<u64>,
    edge_ids: Vec<u64>,
    /// (source, target) per edge, by `EdgeIdx`.
    edge_endpoints: Vec<(VertexIdx, VertexIdx)>,
    /// CSR offsets into `adjacency`, length |V|+1.
    offsets: Vec<u32>,
    adjacency: Vec<Neighbor>,
    id_to_idx: HashMap<u64, VertexIdx>,
    edge_id_to_idx: HashMap<u64, EdgeIdx>,
    vertex_schema: Schema,
    edge_schema: Schema,
}

impl GraphTemplate {
    /// Conventional name of the boolean attribute that simulates slow
    /// topology churn (paper §II.A): a vertex/edge with `isExists = false`
    /// in an instance is treated as absent at that timestep.
    pub const IS_EXISTS: &'static str = "isExists";

    /// Human-readable dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether edges are directed. Undirected templates store each physical
    /// edge once but list it in both endpoints' adjacency.
    pub fn directed(&self) -> bool {
        self.directed
    }

    /// Number of vertices `|V̂|`.
    pub fn num_vertices(&self) -> usize {
        self.vertex_ids.len()
    }

    /// Number of (physical) edges `|Ê|`.
    pub fn num_edges(&self) -> usize {
        self.edge_ids.len()
    }

    /// External id of a vertex.
    pub fn vertex_id(&self, v: VertexIdx) -> u64 {
        self.vertex_ids[v.idx()]
    }

    /// External id of an edge.
    pub fn edge_id(&self, e: EdgeIdx) -> u64 {
        self.edge_ids[e.idx()]
    }

    /// Dense index for an external vertex id.
    pub fn vertex_by_id(&self, id: u64) -> Result<VertexIdx> {
        self.id_to_idx
            .get(&id)
            .copied()
            .ok_or(CoreError::UnknownVertexId(id))
    }

    /// Dense index for an external edge id.
    pub fn edge_by_id(&self, id: u64) -> Result<EdgeIdx> {
        self.edge_id_to_idx
            .get(&id)
            .copied()
            .ok_or(CoreError::UnknownEdgeId(id))
    }

    /// `(source, target)` endpoints of an edge as added to the builder.
    pub fn endpoints(&self, e: EdgeIdx) -> (VertexIdx, VertexIdx) {
        self.edge_endpoints[e.idx()]
    }

    /// Out-neighbours of `v` (both directions' neighbours when undirected).
    #[inline]
    pub fn neighbors(&self, v: VertexIdx) -> &[Neighbor] {
        let lo = self.offsets[v.idx()] as usize;
        let hi = self.offsets[v.idx() + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Out-degree of `v` (total adjacency degree when undirected).
    pub fn degree(&self, v: VertexIdx) -> usize {
        self.neighbors(v).len()
    }

    /// Iterate all vertex indices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexIdx> + '_ {
        (0..self.vertex_ids.len() as u32).map(VertexIdx)
    }

    /// Iterate all edge indices.
    pub fn edges(&self) -> impl Iterator<Item = EdgeIdx> + '_ {
        (0..self.edge_ids.len() as u32).map(EdgeIdx)
    }

    /// Schema of the time-variant vertex attributes.
    pub fn vertex_schema(&self) -> &Schema {
        &self.vertex_schema
    }

    /// Schema of the time-variant edge attributes.
    pub fn edge_schema(&self) -> &Schema {
        &self.edge_schema
    }

    /// Estimate the diameter with a double-sweep BFS lower bound (exact BFS
    /// eccentricity from the vertex found by the first sweep). Standard,
    /// cheap and accurate on both road networks and small-world graphs;
    /// used to reproduce the paper's dataset table.
    pub fn approx_diameter(&self) -> usize {
        if self.num_vertices() == 0 {
            return 0;
        }
        let (far, _) = self.bfs_farthest(VertexIdx(0));
        let (_, dist) = self.bfs_farthest(far);
        dist
    }

    fn bfs_farthest(&self, src: VertexIdx) -> (VertexIdx, usize) {
        let mut dist = vec![u32::MAX; self.num_vertices()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.idx()] = 0;
        queue.push_back(src);
        let mut far = src;
        let mut far_d = 0usize;
        while let Some(u) = queue.pop_front() {
            let du = dist[u.idx()];
            for n in self.neighbors(u) {
                let d = &mut dist[n.vertex.idx()];
                if *d == u32::MAX {
                    *d = du + 1;
                    if (du + 1) as usize > far_d {
                        far_d = (du + 1) as usize;
                        far = n.vertex;
                    }
                    queue.push_back(n.vertex);
                }
            }
        }
        (far, far_d)
    }
}

/// Incrementally constructs a [`GraphTemplate`]; call
/// [`TemplateBuilder::finalize`] to validate and build the CSR adjacency.
#[derive(Debug)]
pub struct TemplateBuilder {
    name: String,
    directed: bool,
    vertex_ids: Vec<u64>,
    id_to_idx: HashMap<u64, VertexIdx>,
    edge_ids: Vec<u64>,
    edge_id_to_idx: HashMap<u64, EdgeIdx>,
    edge_endpoints: Vec<(VertexIdx, VertexIdx)>,
    vertex_schema: Schema,
    edge_schema: Schema,
}

impl TemplateBuilder {
    /// Start a template named `name`; `directed` fixes edge semantics.
    pub fn new(name: impl Into<String>, directed: bool) -> Self {
        Self {
            name: name.into(),
            directed,
            vertex_ids: Vec::new(),
            id_to_idx: HashMap::new(),
            edge_ids: Vec::new(),
            edge_id_to_idx: HashMap::new(),
            edge_endpoints: Vec::new(),
            vertex_schema: Schema::new(),
            edge_schema: Schema::new(),
        }
    }

    /// Mutable access to the vertex attribute schema.
    pub fn vertex_schema(&mut self) -> &mut Schema {
        &mut self.vertex_schema
    }

    /// Mutable access to the edge attribute schema.
    pub fn edge_schema(&mut self) -> &mut Schema {
        &mut self.edge_schema
    }

    /// Add a vertex with external id `id`; returns its dense index.
    /// Re-adding an existing id returns the existing index.
    pub fn add_vertex(&mut self, id: u64) -> VertexIdx {
        if let Some(&idx) = self.id_to_idx.get(&id) {
            return idx;
        }
        let idx = VertexIdx(self.vertex_ids.len() as u32);
        self.vertex_ids.push(id);
        self.id_to_idx.insert(id, idx);
        idx
    }

    /// Add an edge with external id `edge_id` between external vertex ids.
    /// Both endpoints must already exist.
    pub fn add_edge(&mut self, edge_id: u64, src_id: u64, dst_id: u64) -> Result<EdgeIdx> {
        let src = *self
            .id_to_idx
            .get(&src_id)
            .ok_or(CoreError::UnknownVertexId(src_id))?;
        let dst = *self
            .id_to_idx
            .get(&dst_id)
            .ok_or(CoreError::UnknownVertexId(dst_id))?;
        self.add_edge_by_idx(edge_id, src, dst)
    }

    /// Add an edge between dense indices (faster bulk path for generators).
    pub fn add_edge_by_idx(
        &mut self,
        edge_id: u64,
        src: VertexIdx,
        dst: VertexIdx,
    ) -> Result<EdgeIdx> {
        if self.edge_id_to_idx.contains_key(&edge_id) {
            return Err(CoreError::DuplicateEdgeId(edge_id));
        }
        let idx = EdgeIdx(self.edge_ids.len() as u32);
        self.edge_ids.push(edge_id);
        self.edge_id_to_idx.insert(edge_id, idx);
        self.edge_endpoints.push((src, dst));
        Ok(idx)
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.vertex_ids.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edge_ids.len()
    }

    /// Validate schemas, build CSR adjacency and freeze the template.
    pub fn finalize(self) -> Result<GraphTemplate> {
        self.vertex_schema.validate()?;
        self.edge_schema.validate()?;
        if self.vertex_ids.len() > u32::MAX as usize {
            return Err(CoreError::CapacityExceeded("vertices"));
        }
        if self.edge_ids.len() > u32::MAX as usize {
            return Err(CoreError::CapacityExceeded("edges"));
        }

        let nv = self.vertex_ids.len();
        let mut degree = vec![0u32; nv];
        for &(s, d) in &self.edge_endpoints {
            degree[s.idx()] += 1;
            if !self.directed {
                degree[d.idx()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(nv + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..nv].to_vec();
        let mut adjacency = vec![
            Neighbor {
                vertex: VertexIdx(0),
                edge: EdgeIdx(0)
            };
            acc as usize
        ];
        for (ei, &(s, d)) in self.edge_endpoints.iter().enumerate() {
            let e = EdgeIdx(ei as u32);
            adjacency[cursor[s.idx()] as usize] = Neighbor { vertex: d, edge: e };
            cursor[s.idx()] += 1;
            if !self.directed {
                adjacency[cursor[d.idx()] as usize] = Neighbor { vertex: s, edge: e };
                cursor[d.idx()] += 1;
            }
        }
        // Sort each vertex's adjacency by (neighbor, edge) for deterministic
        // traversal order regardless of insertion order.
        for v in 0..nv {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            adjacency[lo..hi].sort_unstable_by_key(|n| (n.vertex, n.edge));
        }

        Ok(GraphTemplate {
            name: self.name,
            directed: self.directed,
            vertex_ids: self.vertex_ids,
            edge_ids: self.edge_ids,
            edge_endpoints: self.edge_endpoints,
            offsets,
            adjacency,
            id_to_idx: self.id_to_idx,
            edge_id_to_idx: self.edge_id_to_idx,
            vertex_schema: self.vertex_schema,
            edge_schema: self.edge_schema,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrType;

    fn path_graph(n: u64, directed: bool) -> GraphTemplate {
        let mut b = TemplateBuilder::new("path", directed);
        for i in 0..n {
            b.add_vertex(i * 10);
        }
        for i in 0..n - 1 {
            b.add_edge(i, i * 10, (i + 1) * 10).unwrap();
        }
        b.finalize().unwrap()
    }

    #[test]
    fn build_undirected_path() {
        let g = path_graph(4, false);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        // middle vertex has two neighbours
        let v1 = g.vertex_by_id(10).unwrap();
        assert_eq!(g.degree(v1), 2);
        // endpoints have one
        assert_eq!(g.degree(g.vertex_by_id(0).unwrap()), 1);
        assert_eq!(g.degree(g.vertex_by_id(30).unwrap()), 1);
    }

    #[test]
    fn build_directed_path() {
        let g = path_graph(4, true);
        assert_eq!(g.degree(g.vertex_by_id(0).unwrap()), 1);
        assert_eq!(g.degree(g.vertex_by_id(30).unwrap()), 0); // sink
    }

    #[test]
    fn undirected_edge_shares_edge_idx() {
        let g = path_graph(3, false);
        let v0 = g.vertex_by_id(0).unwrap();
        let v1 = g.vertex_by_id(10).unwrap();
        let fwd = g.neighbors(v0).iter().find(|n| n.vertex == v1).unwrap();
        let rev = g.neighbors(v1).iter().find(|n| n.vertex == v0).unwrap();
        assert_eq!(fwd.edge, rev.edge);
    }

    #[test]
    fn duplicate_vertex_id_is_idempotent() {
        let mut b = TemplateBuilder::new("t", false);
        let a = b.add_vertex(5);
        let c = b.add_vertex(5);
        assert_eq!(a, c);
        assert_eq!(b.num_vertices(), 1);
    }

    #[test]
    fn duplicate_edge_id_rejected() {
        let mut b = TemplateBuilder::new("t", false);
        b.add_vertex(1);
        b.add_vertex(2);
        b.add_edge(9, 1, 2).unwrap();
        assert_eq!(b.add_edge(9, 2, 1), Err(CoreError::DuplicateEdgeId(9)));
    }

    #[test]
    fn edge_to_unknown_vertex_rejected() {
        let mut b = TemplateBuilder::new("t", false);
        b.add_vertex(1);
        assert_eq!(b.add_edge(0, 1, 99), Err(CoreError::UnknownVertexId(99)));
    }

    #[test]
    fn lookup_roundtrips() {
        let g = path_graph(3, false);
        for v in g.vertices() {
            assert_eq!(g.vertex_by_id(g.vertex_id(v)).unwrap(), v);
        }
        for e in g.edges() {
            assert_eq!(g.edge_by_id(g.edge_id(e)).unwrap(), e);
        }
        assert!(g.vertex_by_id(12345).is_err());
        assert!(g.edge_by_id(12345).is_err());
    }

    #[test]
    fn endpoints_preserved() {
        let g = path_graph(3, false);
        let e0 = g.edge_by_id(0).unwrap();
        let (s, d) = g.endpoints(e0);
        assert_eq!(g.vertex_id(s), 0);
        assert_eq!(g.vertex_id(d), 10);
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = TemplateBuilder::new("star", false);
        for i in 0..5 {
            b.add_vertex(i);
        }
        // insert spokes in reverse order
        for (eid, i) in (1..5).rev().enumerate() {
            b.add_edge(eid as u64, 0, i).unwrap();
        }
        let g = b.finalize().unwrap();
        let hub = g.vertex_by_id(0).unwrap();
        let ns: Vec<_> = g.neighbors(hub).iter().map(|n| n.vertex.0).collect();
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        assert_eq!(ns, sorted);
    }

    #[test]
    fn diameter_of_path() {
        let g = path_graph(10, false);
        assert_eq!(g.approx_diameter(), 9);
    }

    #[test]
    fn diameter_of_empty_and_single() {
        let b = TemplateBuilder::new("empty", false);
        assert_eq!(b.finalize().unwrap().approx_diameter(), 0);
        let mut b = TemplateBuilder::new("one", false);
        b.add_vertex(1);
        assert_eq!(b.finalize().unwrap().approx_diameter(), 0);
    }

    #[test]
    fn schema_validation_at_finalize() {
        let mut b = TemplateBuilder::new("t", false);
        b.vertex_schema().add("x", AttrType::Long);
        b.vertex_schema().add("x", AttrType::Double);
        assert!(b.finalize().is_err());
    }
}
