//! Sparse deltas between same-shaped [`Column`]s.
//!
//! Time-series graphs change slowly: successive instances of a column are
//! mostly identical, with a handful of rows differing (`isExists` churn,
//! a few active vertices). The GoFS v2 slice format exploits this by
//! storing, for every instance after the first in a pack, only the rows
//! that differ from the pack's base snapshot. This module provides the
//! storage-agnostic half of that scheme:
//!
//! * [`Column::changed_rows`] — which rows of `self` differ from `base`;
//! * [`Column::gather_rows`] — extract those rows as a small dense column;
//! * [`Column::scatter_rows`] — apply such a patch onto a clone of the base.
//!
//! `Double` columns compare by **bit pattern** (`f64::to_bits`), so `NaN`
//! payloads and signed zeros survive a delta round-trip exactly — the
//! invariant is `base.scatter_rows(rows, values) == cur` for *any* floats,
//! not just the well-behaved ones.

use crate::error::{CoreError, Result};
use crate::instance::Column;

/// Compare one row of two same-typed columns; `Double` compares by bits.
macro_rules! rows_differ {
    ($a:expr, $b:expr, f64) => {
        $a.to_bits() != $b.to_bits()
    };
    ($a:expr, $b:expr) => {
        $a != $b
    };
}

impl Column {
    /// Indices of rows where `self` differs from `base`, ascending.
    ///
    /// Errors with [`CoreError::DeltaMismatch`] when the columns have
    /// different types or lengths — deltas are only defined between two
    /// instances of the *same* projected column.
    pub fn changed_rows(&self, base: &Column) -> Result<Vec<u32>> {
        if self.ty() != base.ty() {
            return Err(CoreError::DeltaMismatch(format!(
                "type {:?} vs base {:?}",
                self.ty(),
                base.ty()
            )));
        }
        if self.len() != base.len() {
            return Err(CoreError::DeltaMismatch(format!(
                "length {} vs base {}",
                self.len(),
                base.len()
            )));
        }
        fn diff<T>(cur: &[T], base: &[T], ne: impl Fn(&T, &T) -> bool) -> Vec<u32> {
            cur.iter()
                .zip(base)
                .enumerate()
                .filter(|(_, (c, b))| ne(c, b))
                .map(|(i, _)| i as u32)
                .collect()
        }
        Ok(match (self, base) {
            (Column::Long(c), Column::Long(b)) => diff(c, b, |x, y| rows_differ!(x, y)),
            (Column::Double(c), Column::Double(b)) => diff(c, b, |x, y| rows_differ!(x, y, f64)),
            (Column::Bool(c), Column::Bool(b)) => diff(c, b, |x, y| rows_differ!(x, y)),
            (Column::Text(c), Column::Text(b)) => diff(c, b, |x, y| rows_differ!(x, y)),
            (Column::LongList(c), Column::LongList(b)) => diff(c, b, |x, y| rows_differ!(x, y)),
            (Column::TextList(c), Column::TextList(b)) => diff(c, b, |x, y| rows_differ!(x, y)),
            // Unreachable: the type check above already rejected mixed pairs.
            (c, b) => {
                return Err(CoreError::DeltaMismatch(format!(
                    "type {:?} vs base {:?}",
                    c.ty(),
                    b.ty()
                )))
            }
        })
    }

    /// Extract `rows` (ascending, in-range) as a dense column of the same
    /// type. Panics on out-of-range rows — this is the encode side, where
    /// rows come straight from [`Column::changed_rows`].
    pub fn gather_rows(&self, rows: &[u32]) -> Column {
        fn pick<T: Clone>(v: &[T], rows: &[u32]) -> Vec<T> {
            rows.iter().map(|&i| v[i as usize].clone()).collect()
        }
        match self {
            Column::Long(v) => Column::Long(pick(v, rows)),
            Column::Double(v) => Column::Double(pick(v, rows)),
            Column::Bool(v) => Column::Bool(pick(v, rows)),
            Column::Text(v) => Column::Text(pick(v, rows)),
            Column::LongList(v) => Column::LongList(pick(v, rows)),
            Column::TextList(v) => Column::TextList(pick(v, rows)),
        }
    }

    /// Overwrite `rows[i]` with `values[i]` for each i. The decode side of
    /// a sparse delta: everything is validated (type, counts, strictly
    /// ascending in-range rows) and reported as
    /// [`CoreError::DeltaMismatch`] — untrusted bytes must never panic.
    pub fn scatter_rows(&mut self, rows: &[u32], values: &Column) -> Result<()> {
        if self.ty() != values.ty() {
            return Err(CoreError::DeltaMismatch(format!(
                "patch type {:?} vs column {:?}",
                values.ty(),
                self.ty()
            )));
        }
        if rows.len() != values.len() {
            return Err(CoreError::DeltaMismatch(format!(
                "{} rows but {} values",
                rows.len(),
                values.len()
            )));
        }
        let len = self.len();
        let mut prev: Option<u32> = None;
        for &r in rows {
            if r as usize >= len {
                return Err(CoreError::DeltaMismatch(format!(
                    "row {r} out of range (column has {len} rows)"
                )));
            }
            if prev.is_some_and(|p| p >= r) {
                return Err(CoreError::DeltaMismatch(
                    "rows must be strictly ascending".into(),
                ));
            }
            prev = Some(r);
        }
        fn put<T: Clone>(dst: &mut [T], rows: &[u32], values: &[T]) {
            for (&r, v) in rows.iter().zip(values) {
                dst[r as usize] = v.clone();
            }
        }
        match (self, values) {
            (Column::Long(d), Column::Long(v)) => put(d, rows, v),
            (Column::Double(d), Column::Double(v)) => put(d, rows, v),
            (Column::Bool(d), Column::Bool(v)) => put(d, rows, v),
            (Column::Text(d), Column::Text(v)) => put(d, rows, v),
            (Column::LongList(d), Column::LongList(v)) => put(d, rows, v),
            (Column::TextList(d), Column::TextList(v)) => put(d, rows, v),
            // Unreachable: the type check above already rejected mixed pairs.
            (d, v) => {
                return Err(CoreError::DeltaMismatch(format!(
                    "patch type {:?} vs column {:?}",
                    v.ty(),
                    d.ty()
                )))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_gather_scatter_roundtrip() {
        let base = Column::Long(vec![1, 2, 3, 4, 5]);
        let cur = Column::Long(vec![1, 20, 3, 40, 5]);
        let rows = cur.changed_rows(&base).unwrap();
        assert_eq!(rows, vec![1, 3]);
        let patch = cur.gather_rows(&rows);
        assert_eq!(patch, Column::Long(vec![20, 40]));
        let mut rebuilt = base.clone();
        rebuilt.scatter_rows(&rows, &patch).unwrap();
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn identical_columns_have_no_changes() {
        let c = Column::Text(vec!["a".into(), "b".into()]);
        assert!(c.changed_rows(&c.clone()).unwrap().is_empty());
    }

    #[test]
    fn doubles_compare_by_bits() {
        let base = Column::Double(vec![0.0, 1.0, f64::NAN]);
        let cur = Column::Double(vec![-0.0, 1.0, f64::NAN]);
        // -0.0 == 0.0 numerically but differs bitwise; NaN != NaN
        // numerically but the bit patterns here are identical.
        let rows = cur.changed_rows(&base).unwrap();
        assert_eq!(rows, vec![0]);
        let mut rebuilt = base.clone();
        rebuilt
            .scatter_rows(&rows, &cur.gather_rows(&rows))
            .unwrap();
        match rebuilt {
            Column::Double(v) => {
                assert_eq!(v[0].to_bits(), (-0.0f64).to_bits());
                assert!(v[2].is_nan());
            }
            other => panic!("wrong type {:?}", other.ty()),
        }
    }

    #[test]
    fn list_columns_delta() {
        let base = Column::TextList(vec![vec![], vec!["x".into()], vec![]]);
        let cur = Column::TextList(vec![vec![], vec!["x".into(), "y".into()], vec![]]);
        let rows = cur.changed_rows(&base).unwrap();
        assert_eq!(rows, vec![1]);
        let mut rebuilt = base.clone();
        rebuilt
            .scatter_rows(&rows, &cur.gather_rows(&rows))
            .unwrap();
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn mismatches_are_typed_errors() {
        let longs = Column::Long(vec![1]);
        let doubles = Column::Double(vec![1.0]);
        assert!(matches!(
            longs.changed_rows(&doubles),
            Err(CoreError::DeltaMismatch(_))
        ));
        assert!(matches!(
            longs.changed_rows(&Column::Long(vec![1, 2])),
            Err(CoreError::DeltaMismatch(_))
        ));

        let mut dst = Column::Long(vec![1, 2, 3]);
        // Wrong patch type.
        assert!(dst.scatter_rows(&[0], &Column::Double(vec![0.5])).is_err());
        // Count mismatch.
        assert!(dst.scatter_rows(&[0, 1], &Column::Long(vec![9])).is_err());
        // Out of range.
        assert!(dst.scatter_rows(&[7], &Column::Long(vec![9])).is_err());
        // Not ascending.
        assert!(dst
            .scatter_rows(&[1, 1], &Column::Long(vec![9, 9]))
            .is_err());
        // Untouched on failure.
        assert_eq!(dst, Column::Long(vec![1, 2, 3]));
    }
}
