//! Graph instances `gᵗ = ⟨Vᵗ, Eᵗ, t⟩`: columnar time-variant values.
//!
//! An instance carries one typed [`Column`] per schema attribute, for
//! vertices and for edges, each exactly as long as the template's vertex /
//! edge count. Instances embed a copy of the (tiny) schemas so they are
//! self-describing for serialisation and name-based access; hot loops should
//! resolve a name to a column position once and then use the positional
//! accessors ([`GraphInstance::vertex_col`] etc.).

use crate::attr::{AttrType, AttrValue, Schema};
use crate::error::{CoreError, Result};
use crate::ids::{EdgeIdx, VertexIdx};
use crate::template::GraphTemplate;

/// A dense, typed column of attribute values.
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    /// `i64` values.
    Long(Vec<i64>),
    /// `f64` values.
    Double(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Strings.
    Text(Vec<String>),
    /// Lists of `i64`.
    LongList(Vec<Vec<i64>>),
    /// Lists of strings.
    TextList(Vec<Vec<String>>),
}

impl Column {
    /// A column of `len` default values of type `ty`.
    pub fn new(ty: AttrType, len: usize) -> Column {
        match ty {
            AttrType::Long => Column::Long(vec![0; len]),
            AttrType::Double => Column::Double(vec![0.0; len]),
            AttrType::Bool => Column::Bool(vec![false; len]),
            AttrType::Text => Column::Text(vec![String::new(); len]),
            AttrType::LongList => Column::LongList(vec![Vec::new(); len]),
            AttrType::TextList => Column::TextList(vec![Vec::new(); len]),
        }
    }

    /// The column's element type.
    pub fn ty(&self) -> AttrType {
        match self {
            Column::Long(_) => AttrType::Long,
            Column::Double(_) => AttrType::Double,
            Column::Bool(_) => AttrType::Bool,
            Column::Text(_) => AttrType::Text,
            Column::LongList(_) => AttrType::LongList,
            Column::TextList(_) => AttrType::TextList,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Long(v) => v.len(),
            Column::Double(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Text(v) => v.len(),
            Column::LongList(v) => v.len(),
            Column::TextList(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dynamically-typed read of row `i`.
    pub fn get(&self, i: usize) -> AttrValue {
        match self {
            Column::Long(v) => AttrValue::Long(v[i]),
            Column::Double(v) => AttrValue::Double(v[i]),
            Column::Bool(v) => AttrValue::Bool(v[i]),
            Column::Text(v) => AttrValue::Text(v[i].clone()),
            Column::LongList(v) => AttrValue::LongList(v[i].clone()),
            Column::TextList(v) => AttrValue::TextList(v[i].clone()),
        }
    }

    /// Dynamically-typed write of row `i`; errors on type mismatch.
    pub fn set(&mut self, i: usize, value: AttrValue) -> Result<()> {
        match (self, value) {
            (Column::Long(v), AttrValue::Long(x)) => v[i] = x,
            (Column::Double(v), AttrValue::Double(x)) => v[i] = x,
            (Column::Bool(v), AttrValue::Bool(x)) => v[i] = x,
            (Column::Text(v), AttrValue::Text(x)) => v[i] = x,
            (Column::LongList(v), AttrValue::LongList(x)) => v[i] = x,
            (Column::TextList(v), AttrValue::TextList(x)) => v[i] = x,
            (col, value) => {
                return Err(CoreError::AttributeTypeMismatch {
                    name: String::from("<column>"),
                    expected: col.ty(),
                    got: value.ty(),
                })
            }
        }
        Ok(())
    }
}

/// Time-variant attribute values for one timestep.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphInstance {
    timestamp: i64,
    vertex_schema: Schema,
    edge_schema: Schema,
    vertex_cols: Vec<Column>,
    edge_cols: Vec<Column>,
}

impl GraphInstance {
    /// A fresh instance at `timestamp` with default attribute values for
    /// every vertex and edge of `template`.
    pub fn new(template: &GraphTemplate, timestamp: i64) -> Self {
        let nv = template.num_vertices();
        let ne = template.num_edges();
        GraphInstance {
            timestamp,
            vertex_schema: template.vertex_schema().clone(),
            edge_schema: template.edge_schema().clone(),
            vertex_cols: template
                .vertex_schema()
                .iter()
                .map(|a| Column::new(a.ty, nv))
                .collect(),
            edge_cols: template
                .edge_schema()
                .iter()
                .map(|a| Column::new(a.ty, ne))
                .collect(),
        }
    }

    /// Construct from pre-built columns (used by the GoFS decoder).
    /// [`GraphInstance::validate_against`] checks template conformance.
    pub fn from_parts(
        timestamp: i64,
        vertex_schema: Schema,
        edge_schema: Schema,
        vertex_cols: Vec<Column>,
        edge_cols: Vec<Column>,
    ) -> Self {
        GraphInstance {
            timestamp,
            vertex_schema,
            edge_schema,
            vertex_cols,
            edge_cols,
        }
    }

    /// Timestamp `t` of this instance.
    pub fn timestamp(&self) -> i64 {
        self.timestamp
    }

    /// The embedded vertex schema (a copy of the template's).
    pub fn vertex_schema(&self) -> &Schema {
        &self.vertex_schema
    }

    /// The embedded edge schema (a copy of the template's).
    pub fn edge_schema(&self) -> &Schema {
        &self.edge_schema
    }

    /// All vertex columns, in schema order.
    pub fn vertex_columns(&self) -> &[Column] {
        &self.vertex_cols
    }

    /// All edge columns, in schema order.
    pub fn edge_columns(&self) -> &[Column] {
        &self.edge_cols
    }

    /// Check that schemas, column types and lengths match `template`.
    pub fn validate_against(&self, template: &GraphTemplate) -> Result<()> {
        if &self.vertex_schema != template.vertex_schema() {
            return Err(CoreError::TemplateMismatch(
                "vertex schema differs".to_string(),
            ));
        }
        if &self.edge_schema != template.edge_schema() {
            return Err(CoreError::TemplateMismatch(
                "edge schema differs".to_string(),
            ));
        }
        let check = |cols: &[Column], schema: &Schema, n: usize, what: &str| -> Result<()> {
            if cols.len() != schema.len() {
                return Err(CoreError::TemplateMismatch(format!(
                    "{what}: {} columns, schema has {}",
                    cols.len(),
                    schema.len()
                )));
            }
            for (i, c) in cols.iter().enumerate() {
                let def = schema.def(i).ok_or_else(|| {
                    CoreError::TemplateMismatch(format!("{what}: schema has no column {i}"))
                })?;
                if c.ty() != def.ty {
                    return Err(CoreError::TemplateMismatch(format!(
                        "{what} column `{}`: type {:?} != schema {:?}",
                        def.name,
                        c.ty(),
                        def.ty
                    )));
                }
                if c.len() != n {
                    return Err(CoreError::TemplateMismatch(format!(
                        "{what} column `{}`: {} rows, expected {}",
                        def.name,
                        c.len(),
                        n
                    )));
                }
            }
            Ok(())
        };
        check(
            &self.vertex_cols,
            template.vertex_schema(),
            template.num_vertices(),
            "vertex",
        )?;
        check(
            &self.edge_cols,
            template.edge_schema(),
            template.num_edges(),
            "edge",
        )
    }

    // ---- typed column access by position (hot path) -------------------

    /// Vertex column at schema position `i`.
    pub fn vertex_col(&self, i: usize) -> &Column {
        &self.vertex_cols[i]
    }

    /// Mutable vertex column at schema position `i`.
    pub fn vertex_col_mut(&mut self, i: usize) -> &mut Column {
        &mut self.vertex_cols[i]
    }

    /// Edge column at schema position `i`.
    pub fn edge_col(&self, i: usize) -> &Column {
        &self.edge_cols[i]
    }

    /// Mutable edge column at schema position `i`.
    pub fn edge_col_mut(&mut self, i: usize) -> &mut Column {
        &mut self.edge_cols[i]
    }

    // ---- typed column access by name (convenience) --------------------

    /// Borrow a named `Double` vertex column.
    pub fn vertex_f64(&self, name: &str) -> Result<&[f64]> {
        let i = self.vertex_schema.resolve_typed(name, AttrType::Double)?;
        match &self.vertex_cols[i] {
            Column::Double(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Double)),
        }
    }

    /// Mutably borrow a named `Double` vertex column.
    pub fn vertex_f64_mut(&mut self, name: &str) -> Result<&mut [f64]> {
        let i = self.vertex_schema.resolve_typed(name, AttrType::Double)?;
        match &mut self.vertex_cols[i] {
            Column::Double(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Double)),
        }
    }

    /// Borrow a named `Long` vertex column.
    pub fn vertex_i64(&self, name: &str) -> Result<&[i64]> {
        let i = self.vertex_schema.resolve_typed(name, AttrType::Long)?;
        match &self.vertex_cols[i] {
            Column::Long(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Long)),
        }
    }

    /// Mutably borrow a named `Long` vertex column.
    pub fn vertex_i64_mut(&mut self, name: &str) -> Result<&mut [i64]> {
        let i = self.vertex_schema.resolve_typed(name, AttrType::Long)?;
        match &mut self.vertex_cols[i] {
            Column::Long(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Long)),
        }
    }

    /// Borrow a named `Bool` vertex column (e.g. `isExists`).
    pub fn vertex_bool(&self, name: &str) -> Result<&[bool]> {
        let i = self.vertex_schema.resolve_typed(name, AttrType::Bool)?;
        match &self.vertex_cols[i] {
            Column::Bool(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Bool)),
        }
    }

    /// Mutably borrow a named `Bool` vertex column.
    pub fn vertex_bool_mut(&mut self, name: &str) -> Result<&mut [bool]> {
        let i = self.vertex_schema.resolve_typed(name, AttrType::Bool)?;
        match &mut self.vertex_cols[i] {
            Column::Bool(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Bool)),
        }
    }

    /// Borrow a named `TextList` vertex column (e.g. tweets per interval).
    pub fn vertex_text_list(&self, name: &str) -> Result<&[Vec<String>]> {
        let i = self.vertex_schema.resolve_typed(name, AttrType::TextList)?;
        match &self.vertex_cols[i] {
            Column::TextList(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::TextList)),
        }
    }

    /// Mutably borrow a named `TextList` vertex column.
    pub fn vertex_text_list_mut(&mut self, name: &str) -> Result<&mut [Vec<String>]> {
        let i = self.vertex_schema.resolve_typed(name, AttrType::TextList)?;
        match &mut self.vertex_cols[i] {
            Column::TextList(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::TextList)),
        }
    }

    /// Borrow a named `Double` edge column (e.g. road latency).
    pub fn edge_f64(&self, name: &str) -> Result<&[f64]> {
        let i = self.edge_schema.resolve_typed(name, AttrType::Double)?;
        match &self.edge_cols[i] {
            Column::Double(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Double)),
        }
    }

    /// Mutably borrow a named `Double` edge column.
    pub fn edge_f64_mut(&mut self, name: &str) -> Result<&mut [f64]> {
        let i = self.edge_schema.resolve_typed(name, AttrType::Double)?;
        match &mut self.edge_cols[i] {
            Column::Double(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Double)),
        }
    }

    /// Borrow a named `Long` edge column.
    pub fn edge_i64(&self, name: &str) -> Result<&[i64]> {
        let i = self.edge_schema.resolve_typed(name, AttrType::Long)?;
        match &self.edge_cols[i] {
            Column::Long(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Long)),
        }
    }

    /// Mutably borrow a named `Long` edge column.
    pub fn edge_i64_mut(&mut self, name: &str) -> Result<&mut [i64]> {
        let i = self.edge_schema.resolve_typed(name, AttrType::Long)?;
        match &mut self.edge_cols[i] {
            Column::Long(v) => Ok(v),
            c => Err(type_err(name, c.ty(), AttrType::Long)),
        }
    }

    // ---- dynamically-typed access --------------------------------------

    /// Read one vertex attribute cell by column position.
    pub fn get_vertex(&self, col: usize, v: VertexIdx) -> AttrValue {
        self.vertex_cols[col].get(v.idx())
    }

    /// Write one vertex attribute cell by column position.
    pub fn set_vertex(&mut self, col: usize, v: VertexIdx, value: AttrValue) -> Result<()> {
        self.vertex_cols[col].set(v.idx(), value)
    }

    /// Read one edge attribute cell by column position.
    pub fn get_edge(&self, col: usize, e: EdgeIdx) -> AttrValue {
        self.edge_cols[col].get(e.idx())
    }

    /// Write one edge attribute cell by column position.
    pub fn set_edge(&mut self, col: usize, e: EdgeIdx, value: AttrValue) -> Result<()> {
        self.edge_cols[col].set(e.idx(), value)
    }

    /// Approximate heap footprint in bytes (used by the GoFS slice cache).
    pub fn approx_bytes(&self) -> usize {
        fn col_bytes(c: &Column) -> usize {
            match c {
                Column::Long(v) => v.len() * 8,
                Column::Double(v) => v.len() * 8,
                Column::Bool(v) => v.len(),
                Column::Text(v) => v.iter().map(|s| s.len() + 24).sum(),
                Column::LongList(v) => v.iter().map(|l| l.len() * 8 + 24).sum(),
                Column::TextList(v) => v
                    .iter()
                    .map(|l| l.iter().map(|s| s.len() + 24).sum::<usize>() + 24)
                    .sum(),
            }
        }
        self.vertex_cols.iter().map(col_bytes).sum::<usize>()
            + self.edge_cols.iter().map(col_bytes).sum::<usize>()
    }
}

fn type_err(name: &str, expected: AttrType, got: AttrType) -> CoreError {
    CoreError::AttributeTypeMismatch {
        name: name.to_string(),
        expected,
        got,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplateBuilder;

    fn template() -> GraphTemplate {
        let mut b = TemplateBuilder::new("t", false);
        b.vertex_schema().add("load", AttrType::Double);
        b.vertex_schema().add("tweets", AttrType::TextList);
        b.vertex_schema().add("count", AttrType::Long);
        b.vertex_schema()
            .add(GraphTemplate::IS_EXISTS, AttrType::Bool);
        b.edge_schema().add("latency", AttrType::Double);
        for i in 0..3 {
            b.add_vertex(i);
        }
        b.add_edge(0, 0, 1).unwrap();
        b.add_edge(1, 1, 2).unwrap();
        b.finalize().unwrap()
    }

    #[test]
    fn new_instance_has_defaults() {
        let t = template();
        let g = GraphInstance::new(&t, 42);
        assert_eq!(g.timestamp(), 42);
        assert_eq!(g.vertex_f64("load").unwrap(), &[0.0, 0.0, 0.0]);
        assert_eq!(g.edge_f64("latency").unwrap(), &[0.0, 0.0]);
        assert!(g.vertex_text_list("tweets").unwrap()[0].is_empty());
        g.validate_against(&t).unwrap();
    }

    #[test]
    fn typed_mutation_roundtrip() {
        let t = template();
        let mut g = GraphInstance::new(&t, 0);
        g.vertex_f64_mut("load").unwrap()[1] = 3.5;
        g.vertex_i64_mut("count").unwrap()[2] = -7;
        g.vertex_bool_mut(GraphTemplate::IS_EXISTS).unwrap()[0] = true;
        g.edge_f64_mut("latency").unwrap()[0] = 9.0;
        g.vertex_text_list_mut("tweets").unwrap()[1].push("#rust".into());
        assert_eq!(g.vertex_f64("load").unwrap()[1], 3.5);
        assert_eq!(g.vertex_i64("count").unwrap()[2], -7);
        assert!(g.vertex_bool(GraphTemplate::IS_EXISTS).unwrap()[0]);
        assert_eq!(g.edge_f64("latency").unwrap()[0], 9.0);
        assert_eq!(g.vertex_text_list("tweets").unwrap()[1], vec!["#rust"]);
    }

    #[test]
    fn name_and_type_errors() {
        let t = template();
        let mut g = GraphInstance::new(&t, 0);
        assert!(matches!(
            g.vertex_f64("ghost"),
            Err(CoreError::UnknownAttribute(_))
        ));
        assert!(matches!(
            g.vertex_f64("count"),
            Err(CoreError::AttributeTypeMismatch { .. })
        ));
        assert!(matches!(
            g.edge_f64_mut("missing"),
            Err(CoreError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn dynamic_access_roundtrip() {
        let t = template();
        let mut g = GraphInstance::new(&t, 0);
        let load = t.vertex_schema().index_of("load").unwrap();
        g.set_vertex(load, VertexIdx(0), AttrValue::Double(1.25))
            .unwrap();
        assert_eq!(g.get_vertex(load, VertexIdx(0)), AttrValue::Double(1.25));
        // type mismatch rejected
        assert!(g
            .set_vertex(load, VertexIdx(0), AttrValue::Long(1))
            .is_err());
    }

    #[test]
    fn validate_detects_wrong_length() {
        let t = template();
        let g = GraphInstance::from_parts(
            0,
            t.vertex_schema().clone(),
            t.edge_schema().clone(),
            t.vertex_schema()
                .iter()
                .map(|a| Column::new(a.ty, 99))
                .collect(),
            t.edge_schema()
                .iter()
                .map(|a| Column::new(a.ty, t.num_edges()))
                .collect(),
        );
        assert!(g.validate_against(&t).is_err());
    }

    #[test]
    fn validate_detects_schema_drift() {
        let t = template();
        let mut other = Schema::new();
        other.add("different", AttrType::Long);
        let g = GraphInstance::from_parts(
            0,
            other,
            t.edge_schema().clone(),
            vec![Column::new(AttrType::Long, t.num_vertices())],
            t.edge_schema()
                .iter()
                .map(|a| Column::new(a.ty, t.num_edges()))
                .collect(),
        );
        assert!(g.validate_against(&t).is_err());
    }

    #[test]
    fn column_helpers() {
        let c = Column::new(AttrType::Long, 4);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.ty(), AttrType::Long);
        assert_eq!(c.get(0), AttrValue::Long(0));
        let empty = Column::new(AttrType::Text, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn approx_bytes_is_positive_and_monotone() {
        let t = template();
        let mut g = GraphInstance::new(&t, 0);
        let before = g.approx_bytes();
        g.vertex_text_list_mut("tweets").unwrap()[0].push("#abcdef".into());
        assert!(g.approx_bytes() > before);
    }
}
