//! Vectorized aggregation kernels over dense column slices.
//!
//! The engine and algorithms repeatedly reduce whole columns — count edges
//! above a latency threshold, sum per-timestep hashtag vectors, fold a
//! window of instances element-wise. Doing this through per-row dynamic
//! accessors (or per-instance `Arc` round-trips) wastes the columnar
//! layout. These kernels take plain slices and are written so rustc's
//! auto-vectorizer can use SIMD: independent accumulator lanes for the
//! horizontal reductions, simple element-wise loops for the vertical
//! (across-time) folds. No `unsafe`, no intrinsics — the whole workspace
//! is `#![forbid(unsafe_code)]`, so portable auto-vectorizable shapes are
//! the tool available.
//!
//! Reduction identities: `min` over an empty slice is `+∞` / `i64::MAX`,
//! `max` is `-∞` / `i64::MIN`, sums are `0` — callers folding across
//! windows can combine partial results without special-casing emptiness.

/// Number of independent accumulator lanes for horizontal reductions.
/// Four 64-bit lanes fill a 256-bit vector register.
const LANES: usize = 4;

macro_rules! lanes_reduce {
    ($xs:ident, $init:expr, $step:expr, $join:expr) => {{
        let mut acc = [$init; LANES];
        let mut chunks = $xs.chunks_exact(LANES);
        for c in &mut chunks {
            for (a, &x) in acc.iter_mut().zip(c) {
                *a = $step(*a, x);
            }
        }
        let mut out = acc.into_iter().fold($init, $join);
        for &x in chunks.remainder() {
            out = $step(out, x);
        }
        out
    }};
}

/// Sum of an `f64` slice (0.0 when empty). Lane order changes float
/// rounding versus a naive left fold, but is itself deterministic: the
/// same slice always reduces in the same shape.
pub fn sum_f64(xs: &[f64]) -> f64 {
    lanes_reduce!(xs, 0.0f64, |a: f64, x: f64| a + x, |a: f64, b: f64| a + b)
}

/// Minimum of an `f64` slice (`+∞` when empty; NaNs are ignored,
/// matching `f64::min`).
pub fn min_f64(xs: &[f64]) -> f64 {
    lanes_reduce!(xs, f64::INFINITY, f64::min, f64::min)
}

/// Maximum of an `f64` slice (`-∞` when empty; NaNs are ignored).
pub fn max_f64(xs: &[f64]) -> f64 {
    lanes_reduce!(xs, f64::NEG_INFINITY, f64::max, f64::max)
}

/// Sum of an `i64` slice, wrapping on overflow (0 when empty).
pub fn sum_i64(xs: &[i64]) -> i64 {
    lanes_reduce!(
        xs,
        0i64,
        |a: i64, x: i64| a.wrapping_add(x),
        |a: i64, b: i64| a.wrapping_add(b)
    )
}

/// Sum of a `u64` slice, wrapping on overflow (0 when empty).
pub fn sum_u64(xs: &[u64]) -> u64 {
    lanes_reduce!(
        xs,
        0u64,
        |a: u64, x: u64| a.wrapping_add(x),
        |a: u64, b: u64| a.wrapping_add(b)
    )
}

/// Minimum of an `i64` slice (`i64::MAX` when empty).
pub fn min_i64(xs: &[i64]) -> i64 {
    lanes_reduce!(xs, i64::MAX, |a: i64, x: i64| a.min(x), |a: i64, b: i64| a
        .min(b))
}

/// Maximum of an `i64` slice (`i64::MIN` when empty).
pub fn max_i64(xs: &[i64]) -> i64 {
    lanes_reduce!(xs, i64::MIN, |a: i64, x: i64| a.max(x), |a: i64, b: i64| a
        .max(b))
}

/// Count of values strictly greater than `threshold`. Branch-free body
/// (comparison → 0/1 → add) so the loop vectorizes.
pub fn count_gt_f64(xs: &[f64], threshold: f64) -> u64 {
    lanes_reduce!(
        xs,
        0u64,
        |a: u64, x: f64| a + (x > threshold) as u64,
        |a: u64, b: u64| a + b
    )
}

/// Count of `xs[i] > threshold` over the gathered positions `at`.
/// Positions beyond the slice are ignored (callers precompute `at` from
/// topology that matches the column length).
pub fn count_gt_f64_at(xs: &[f64], at: &[u32], threshold: f64) -> u64 {
    let mut n = 0u64;
    for &i in at {
        if let Some(&x) = xs.get(i as usize) {
            n += (x > threshold) as u64;
        }
    }
    n
}

/// Element-wise `acc[i] += inc[i]` over the common prefix, the inner loop
/// of vector-sum combiners. Wrapping addition.
pub fn add_assign_u64(acc: &mut [u64], inc: &[u64]) {
    for (a, &b) in acc.iter_mut().zip(inc) {
        *a = a.wrapping_add(b);
    }
}

/// The `n` largest values with their positions, ordered by
/// `(value desc, position asc)` — deterministic under ties. Runs in
/// `O(len · n)` worst case but touches the candidate list only when a
/// value beats the current cut-off, so for small `n` over long slices it
/// stays close to a single scan.
pub fn top_n_desc(values: &[u64], n: usize) -> Vec<(usize, u64)> {
    if n == 0 {
        return Vec::new();
    }
    let mut top: Vec<(usize, u64)> = Vec::with_capacity(n + 1);
    for (pos, &v) in values.iter().enumerate() {
        if top.len() == n && v <= top[n - 1].1 {
            continue;
        }
        // Insert keeping (value desc, position asc); equal values keep the
        // earlier position first because later positions insert after them.
        let at = top.partition_point(|&(_, tv)| tv >= v);
        top.insert(at, (pos, v));
        top.truncate(n);
    }
    top
}

/// Temporal fold applied element-wise across a window of column slices.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TemporalAgg {
    /// Element-wise sum over the window.
    Sum,
    /// Element-wise minimum over the window.
    Min,
    /// Element-wise maximum over the window.
    Max,
}

/// Fold `series` (one `f64` slice per timestep, all the same length)
/// element-wise into one row vector. Empty windows produce the reduction
/// identity per row of `len` — callers pass the column length explicitly
/// so a zero-timestep window still has a well-defined shape.
pub fn rows_agg_f64(series: &[&[f64]], len: usize, agg: TemporalAgg) -> Vec<f64> {
    let mut out = vec![
        match agg {
            TemporalAgg::Sum => 0.0,
            TemporalAgg::Min => f64::INFINITY,
            TemporalAgg::Max => f64::NEG_INFINITY,
        };
        len
    ];
    for xs in series {
        debug_assert_eq!(xs.len(), len, "window slices must be same-shaped");
        match agg {
            TemporalAgg::Sum => {
                for (o, &x) in out.iter_mut().zip(*xs) {
                    *o += x;
                }
            }
            TemporalAgg::Min => {
                for (o, &x) in out.iter_mut().zip(*xs) {
                    *o = o.min(x);
                }
            }
            TemporalAgg::Max => {
                for (o, &x) in out.iter_mut().zip(*xs) {
                    *o = o.max(x);
                }
            }
        }
    }
    out
}

/// [`rows_agg_f64`] for `i64` columns (wrapping sums).
pub fn rows_agg_i64(series: &[&[i64]], len: usize, agg: TemporalAgg) -> Vec<i64> {
    let mut out = vec![
        match agg {
            TemporalAgg::Sum => 0,
            TemporalAgg::Min => i64::MAX,
            TemporalAgg::Max => i64::MIN,
        };
        len
    ];
    for xs in series {
        debug_assert_eq!(xs.len(), len, "window slices must be same-shaped");
        match agg {
            TemporalAgg::Sum => {
                for (o, &x) in out.iter_mut().zip(*xs) {
                    *o = o.wrapping_add(x);
                }
            }
            TemporalAgg::Min => {
                for (o, &x) in out.iter_mut().zip(*xs) {
                    *o = (*o).min(x);
                }
            }
            TemporalAgg::Max => {
                for (o, &x) in out.iter_mut().zip(*xs) {
                    *o = (*o).max(x);
                }
            }
        }
    }
    out
}

/// Per-row count of `x > threshold` across the window — the temporal
/// form of [`count_gt_f64`].
pub fn rows_count_gt_f64(series: &[&[f64]], len: usize, threshold: f64) -> Vec<u32> {
    let mut out = vec![0u32; len];
    for xs in series {
        debug_assert_eq!(xs.len(), len, "window slices must be same-shaped");
        for (o, &x) in out.iter_mut().zip(*xs) {
            *o += (x > threshold) as u32;
        }
    }
    out
}

/// Combine two partial [`rows_agg_f64`] results in place (window
/// stitching across slice boundaries).
pub fn combine_rows_f64(acc: &mut [f64], other: &[f64], agg: TemporalAgg) {
    match agg {
        TemporalAgg::Sum => {
            for (a, &b) in acc.iter_mut().zip(other) {
                *a += b;
            }
        }
        TemporalAgg::Min => {
            for (a, &b) in acc.iter_mut().zip(other) {
                *a = a.min(b);
            }
        }
        TemporalAgg::Max => {
            for (a, &b) in acc.iter_mut().zip(other) {
                *a = a.max(b);
            }
        }
    }
}

/// Combine two partial [`rows_agg_i64`] results in place.
pub fn combine_rows_i64(acc: &mut [i64], other: &[i64], agg: TemporalAgg) {
    match agg {
        TemporalAgg::Sum => {
            for (a, &b) in acc.iter_mut().zip(other) {
                *a = a.wrapping_add(b);
            }
        }
        TemporalAgg::Min => {
            for (a, &b) in acc.iter_mut().zip(other) {
                *a = (*a).min(b);
            }
        }
        TemporalAgg::Max => {
            for (a, &b) in acc.iter_mut().zip(other) {
                *a = (*a).max(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions_match_naive() {
        // 13 elements: exercises both the lane loop and the remainder.
        let xs: Vec<f64> = (0..13).map(|i| (i as f64) * 1.5 - 4.0).collect();
        assert_eq!(sum_f64(&xs), xs.iter().sum::<f64>());
        assert_eq!(
            min_f64(&xs),
            xs.iter().cloned().fold(f64::INFINITY, f64::min)
        );
        assert_eq!(
            max_f64(&xs),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        );
        let ys: Vec<i64> = (0..13).map(|i| 7 - 3 * i as i64).collect();
        assert_eq!(sum_i64(&ys), ys.iter().sum::<i64>());
        assert_eq!(min_i64(&ys), *ys.iter().min().unwrap());
        assert_eq!(max_i64(&ys), *ys.iter().max().unwrap());
        assert_eq!(sum_u64(&[1, 2, 3, 4, 5]), 15);
    }

    #[test]
    fn empty_identities() {
        assert_eq!(sum_f64(&[]), 0.0);
        assert_eq!(min_f64(&[]), f64::INFINITY);
        assert_eq!(max_f64(&[]), f64::NEG_INFINITY);
        assert_eq!(min_i64(&[]), i64::MAX);
        assert_eq!(max_i64(&[]), i64::MIN);
        assert_eq!(count_gt_f64(&[], 0.0), 0);
    }

    #[test]
    fn count_gt_variants() {
        let xs = [0.5, 2.0, 2.0, 3.5, 0.1, 9.0, 1.0, 2.1, 0.0];
        assert_eq!(count_gt_f64(&xs, 1.9), 5);
        // Gathered: only positions 0, 3, 5 considered; position 99 ignored.
        assert_eq!(count_gt_f64_at(&xs, &[0, 3, 5, 99], 1.9), 2);
    }

    #[test]
    fn add_assign_over_common_prefix() {
        let mut acc = vec![1u64, 2, 3];
        add_assign_u64(&mut acc, &[10, 20]);
        assert_eq!(acc, vec![11, 22, 3]);
    }

    #[test]
    fn top_n_orders_and_breaks_ties_by_position() {
        let v = [3u64, 0, 7, 3, 7, 1];
        assert_eq!(top_n_desc(&v, 3), vec![(2, 7), (4, 7), (0, 3)]);
        assert_eq!(top_n_desc(&v, 0), vec![]);
        // n larger than the input returns everything sorted.
        assert_eq!(top_n_desc(&[5, 9], 10), vec![(1, 9), (0, 5)]);
    }

    #[test]
    fn temporal_folds() {
        let t0 = [1.0, 5.0, 2.0];
        let t1 = [4.0, 1.0, 2.0];
        let series: Vec<&[f64]> = vec![&t0, &t1];
        assert_eq!(
            rows_agg_f64(&series, 3, TemporalAgg::Sum),
            vec![5.0, 6.0, 4.0]
        );
        assert_eq!(
            rows_agg_f64(&series, 3, TemporalAgg::Min),
            vec![1.0, 1.0, 2.0]
        );
        assert_eq!(
            rows_agg_f64(&series, 3, TemporalAgg::Max),
            vec![4.0, 5.0, 2.0]
        );
        assert_eq!(rows_count_gt_f64(&series, 3, 1.5), vec![1, 1, 2]);

        let a = [1i64, -2];
        let b = [10i64, 2];
        let si: Vec<&[i64]> = vec![&a, &b];
        assert_eq!(rows_agg_i64(&si, 2, TemporalAgg::Sum), vec![11, 0]);
        assert_eq!(rows_agg_i64(&si, 2, TemporalAgg::Min), vec![1, -2]);
        assert_eq!(rows_agg_i64(&si, 2, TemporalAgg::Max), vec![10, 2]);

        // Empty window: identities at the requested shape.
        assert_eq!(rows_agg_f64(&[], 2, TemporalAgg::Sum), vec![0.0, 0.0]);
        assert_eq!(rows_agg_i64(&[], 1, TemporalAgg::Min), vec![i64::MAX]);
    }

    #[test]
    fn window_stitching_combines_partials() {
        let mut acc = rows_agg_f64(&[&[1.0, 9.0]], 2, TemporalAgg::Min);
        let next = rows_agg_f64(&[&[3.0, 2.0]], 2, TemporalAgg::Min);
        combine_rows_f64(&mut acc, &next, TemporalAgg::Min);
        assert_eq!(acc, vec![1.0, 2.0]);

        let mut sum = rows_agg_i64(&[&[1, 2]], 2, TemporalAgg::Sum);
        combine_rows_i64(&mut sum, &[10, 10], TemporalAgg::Sum);
        assert_eq!(sum, vec![11, 12]);
    }
}
