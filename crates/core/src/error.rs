//! Error types for the core data model.

use std::fmt;

/// Convenience alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while building templates or manipulating instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An external vertex id referenced by an edge or lookup does not exist.
    UnknownVertexId(u64),
    /// An external edge id referenced by a lookup does not exist.
    UnknownEdgeId(u64),
    /// The same external vertex id was added twice.
    DuplicateVertexId(u64),
    /// The same external edge id was added twice.
    DuplicateEdgeId(u64),
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// The same attribute name was defined twice in one schema.
    DuplicateAttribute(String),
    /// An attribute exists but has a different type than requested.
    AttributeTypeMismatch {
        /// Attribute name that was accessed.
        name: String,
        /// Type declared in the schema.
        expected: crate::AttrType,
        /// Type the caller asked for.
        got: crate::AttrType,
    },
    /// An instance's timestamp does not equal `t0 + i·δ` for its position.
    TimestampMismatch {
        /// Timestamp the collection expected for this position.
        expected: i64,
        /// Timestamp carried by the pushed instance.
        got: i64,
    },
    /// An instance was built against a different template (column counts or
    /// lengths disagree with the collection's template).
    TemplateMismatch(String),
    /// A sparse column delta does not fit the column it is applied to
    /// (type mismatch, row index out of range, or length disagreement).
    DeltaMismatch(String),
    /// The period `δ` must be strictly positive.
    InvalidPeriod(i64),
    /// Too many vertices/edges for the dense `u32` index space.
    CapacityExceeded(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownVertexId(id) => write!(f, "unknown vertex id {id}"),
            CoreError::UnknownEdgeId(id) => write!(f, "unknown edge id {id}"),
            CoreError::DuplicateVertexId(id) => write!(f, "duplicate vertex id {id}"),
            CoreError::DuplicateEdgeId(id) => write!(f, "duplicate edge id {id}"),
            CoreError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            CoreError::DuplicateAttribute(name) => write!(f, "duplicate attribute `{name}`"),
            CoreError::AttributeTypeMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "attribute `{name}` has type {expected:?}, accessed as {got:?}"
            ),
            CoreError::TimestampMismatch { expected, got } => {
                write!(f, "instance timestamp {got} != expected {expected}")
            }
            CoreError::TemplateMismatch(what) => write!(f, "template mismatch: {what}"),
            CoreError::DeltaMismatch(what) => write!(f, "column delta mismatch: {what}"),
            CoreError::InvalidPeriod(p) => write!(f, "period must be > 0, got {p}"),
            CoreError::CapacityExceeded(what) => {
                write!(f, "more than u32::MAX {what} in one template")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    #[test]
    fn display_messages_are_informative() {
        assert!(CoreError::UnknownVertexId(9).to_string().contains('9'));
        assert!(CoreError::UnknownAttribute("x".into())
            .to_string()
            .contains("`x`"));
        let e = CoreError::AttributeTypeMismatch {
            name: "lat".into(),
            expected: AttrType::Double,
            got: AttrType::Long,
        };
        let s = e.to_string();
        assert!(s.contains("lat") && s.contains("Double") && s.contains("Long"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::InvalidPeriod(0));
        assert!(e.to_string().contains("period"));
    }
}
