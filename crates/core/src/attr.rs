//! Typed attribute schemas and values.
//!
//! The paper's model gives every vertex of the template the same set of
//! typed attributes `A(V̂) = {id, α1, …, αm}` and every edge
//! `A(Ê) = {id, β1, …, βn}`. The `id` attribute is implicit here — it lives
//! on the template — so a [`Schema`] only describes the *time-variant*
//! attributes whose values are carried by graph instances.

use crate::error::{CoreError, Result};

/// The type of one attribute column.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Long,
    /// 64-bit float.
    Double,
    /// Boolean (used for e.g. the `isExists` topology-churn convention).
    Bool,
    /// UTF-8 string.
    Text,
    /// Variable-length list of longs (e.g. license plates seen at a vertex).
    LongList,
    /// Variable-length list of strings (e.g. tweets/hashtags per interval).
    TextList,
}

impl AttrType {
    /// Stable single-byte tag used by the GoFS codec.
    pub fn tag(self) -> u8 {
        match self {
            AttrType::Long => 0,
            AttrType::Double => 1,
            AttrType::Bool => 2,
            AttrType::Text => 3,
            AttrType::LongList => 4,
            AttrType::TextList => 5,
        }
    }

    /// Inverse of [`AttrType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => AttrType::Long,
            1 => AttrType::Double,
            2 => AttrType::Bool,
            3 => AttrType::Text,
            4 => AttrType::LongList,
            5 => AttrType::TextList,
            _ => return None,
        })
    }
}

/// A dynamically-typed attribute value; the row-oriented view of a column
/// cell. Used at API boundaries — hot paths use the typed column slices on
/// [`crate::GraphInstance`] instead.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// See [`AttrType::Long`].
    Long(i64),
    /// See [`AttrType::Double`].
    Double(f64),
    /// See [`AttrType::Bool`].
    Bool(bool),
    /// See [`AttrType::Text`].
    Text(String),
    /// See [`AttrType::LongList`].
    LongList(Vec<i64>),
    /// See [`AttrType::TextList`].
    TextList(Vec<String>),
}

impl AttrValue {
    /// The [`AttrType`] of this value.
    pub fn ty(&self) -> AttrType {
        match self {
            AttrValue::Long(_) => AttrType::Long,
            AttrValue::Double(_) => AttrType::Double,
            AttrValue::Bool(_) => AttrType::Bool,
            AttrValue::Text(_) => AttrType::Text,
            AttrValue::LongList(_) => AttrType::LongList,
            AttrValue::TextList(_) => AttrType::TextList,
        }
    }

    /// The zero/empty default for a type; instances are initialised with it.
    pub fn default_for(ty: AttrType) -> AttrValue {
        match ty {
            AttrType::Long => AttrValue::Long(0),
            AttrType::Double => AttrValue::Double(0.0),
            AttrType::Bool => AttrValue::Bool(false),
            AttrType::Text => AttrValue::Text(String::new()),
            AttrType::LongList => AttrValue::LongList(Vec::new()),
            AttrType::TextList => AttrValue::TextList(Vec::new()),
        }
    }
}

/// Definition of one attribute: a name and a type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name, unique within its schema.
    pub name: String,
    /// Column type.
    pub ty: AttrType,
}

/// An ordered set of [`AttrDef`]s shared by all vertices (or all edges) of a
/// template. Attribute positions are stable: instance columns are addressed
/// by the schema position.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<AttrDef>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an attribute. Returns its column position.
    ///
    /// Duplicate names are rejected at [`Schema::validate`] /
    /// template-finalize time rather than here, so builders can stay
    /// infallible in the common path; use [`Schema::try_add`] for an eager
    /// check.
    pub fn add(&mut self, name: impl Into<String>, ty: AttrType) -> usize {
        self.attrs.push(AttrDef {
            name: name.into(),
            ty,
        });
        self.attrs.len() - 1
    }

    /// Append an attribute, failing on duplicate names.
    pub fn try_add(&mut self, name: impl Into<String>, ty: AttrType) -> Result<usize> {
        let name = name.into();
        if self.index_of(&name).is_some() {
            return Err(CoreError::DuplicateAttribute(name));
        }
        Ok(self.add(name, ty))
    }

    /// Check schema invariants (unique names).
    pub fn validate(&self) -> Result<()> {
        for (i, a) in self.attrs.iter().enumerate() {
            if self.attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(CoreError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Column position of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Definition at column position `idx`.
    pub fn def(&self, idx: usize) -> Option<&AttrDef> {
        self.attrs.get(idx)
    }

    /// Iterate over attribute definitions in column order.
    pub fn iter(&self) -> impl Iterator<Item = &AttrDef> {
        self.attrs.iter()
    }

    /// Resolve `name` to `(position, type)`, erroring when absent.
    pub fn resolve(&self, name: &str) -> Result<(usize, AttrType)> {
        self.index_of(name)
            .map(|i| (i, self.attrs[i].ty))
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_string()))
    }

    /// Resolve `name` and check it has type `ty`.
    pub fn resolve_typed(&self, name: &str, ty: AttrType) -> Result<usize> {
        let (idx, actual) = self.resolve(name)?;
        if actual != ty {
            return Err(CoreError::AttributeTypeMismatch {
                name: name.to_string(),
                expected: actual,
                got: ty,
            });
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip_all_types() {
        for ty in [
            AttrType::Long,
            AttrType::Double,
            AttrType::Bool,
            AttrType::Text,
            AttrType::LongList,
            AttrType::TextList,
        ] {
            assert_eq!(AttrType::from_tag(ty.tag()), Some(ty));
        }
        assert_eq!(AttrType::from_tag(200), None);
    }

    #[test]
    fn default_values_match_types() {
        for ty in [
            AttrType::Long,
            AttrType::Double,
            AttrType::Bool,
            AttrType::Text,
            AttrType::LongList,
            AttrType::TextList,
        ] {
            assert_eq!(AttrValue::default_for(ty).ty(), ty);
        }
    }

    #[test]
    fn schema_add_and_lookup() {
        let mut s = Schema::new();
        let a = s.add("latency", AttrType::Double);
        let b = s.add("tweets", AttrType::TextList);
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.index_of("latency"), Some(0));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.resolve("tweets").unwrap(), (1, AttrType::TextList));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        s.validate().unwrap();
    }

    #[test]
    fn schema_rejects_duplicates() {
        let mut s = Schema::new();
        s.add("x", AttrType::Long);
        assert_eq!(
            s.try_add("x", AttrType::Double),
            Err(CoreError::DuplicateAttribute("x".into()))
        );
        s.add("x", AttrType::Double); // non-eager path
        assert!(s.validate().is_err());
    }

    #[test]
    fn resolve_typed_checks_type() {
        let mut s = Schema::new();
        s.add("latency", AttrType::Double);
        assert_eq!(s.resolve_typed("latency", AttrType::Double).unwrap(), 0);
        assert!(matches!(
            s.resolve_typed("latency", AttrType::Long),
            Err(CoreError::AttributeTypeMismatch { .. })
        ));
        assert!(matches!(
            s.resolve_typed("ghost", AttrType::Long),
            Err(CoreError::UnknownAttribute(_))
        ));
    }
}
