//! The time-series collection `Γ = ⟨Ĝ, G, t0, δ⟩`.

use crate::error::{CoreError, Result};
use crate::instance::GraphInstance;
use crate::template::GraphTemplate;
use std::sync::Arc;

/// An ordered, periodic series of [`GraphInstance`]s over one shared
/// [`GraphTemplate`].
///
/// Invariant: instance `i` has timestamp exactly `t0 + i·δ` (the paper's
/// periodicity assumption, §II.A), enforced at [`TimeSeriesCollection::push`].
#[derive(Clone, Debug)]
pub struct TimeSeriesCollection {
    template: Arc<GraphTemplate>,
    start_time: i64,
    period: i64,
    instances: Vec<GraphInstance>,
}

impl TimeSeriesCollection {
    /// An empty collection starting at `start_time` with period `period`.
    ///
    /// # Panics
    /// Panics if `period <= 0`; use [`TimeSeriesCollection::try_new`] for a
    /// fallible variant.
    pub fn new(template: Arc<GraphTemplate>, start_time: i64, period: i64) -> Self {
        Self::try_new(template, start_time, period).expect("period must be > 0")
    }

    /// Fallible constructor.
    pub fn try_new(template: Arc<GraphTemplate>, start_time: i64, period: i64) -> Result<Self> {
        if period <= 0 {
            return Err(CoreError::InvalidPeriod(period));
        }
        Ok(TimeSeriesCollection {
            template,
            start_time,
            period,
            instances: Vec::new(),
        })
    }

    /// The shared template `Ĝ`.
    pub fn template(&self) -> &Arc<GraphTemplate> {
        &self.template
    }

    /// `t0`: timestamp of the first instance.
    pub fn start_time(&self) -> i64 {
        self.start_time
    }

    /// `δ`: the constant period between successive instances.
    pub fn period(&self) -> i64 {
        self.period
    }

    /// Number of instances currently held.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when no instances have been pushed.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Timestamp the next pushed instance must carry.
    pub fn next_timestamp(&self) -> i64 {
        self.start_time + self.period * self.instances.len() as i64
    }

    /// A fresh default-valued instance stamped with
    /// [`TimeSeriesCollection::next_timestamp`], ready to fill and push.
    pub fn new_instance(&self) -> GraphInstance {
        GraphInstance::new(&self.template, self.next_timestamp())
    }

    /// Append an instance, validating its timestamp and template conformance.
    pub fn push(&mut self, instance: GraphInstance) -> Result<()> {
        let expected = self.next_timestamp();
        if instance.timestamp() != expected {
            return Err(CoreError::TimestampMismatch {
                expected,
                got: instance.timestamp(),
            });
        }
        instance.validate_against(&self.template)?;
        self.instances.push(instance);
        Ok(())
    }

    /// Instance at position `i` (timestep index).
    pub fn get(&self, i: usize) -> Option<&GraphInstance> {
        self.instances.get(i)
    }

    /// Mutable instance at position `i`.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut GraphInstance> {
        self.instances.get_mut(i)
    }

    /// The instance covering wall-clock time `t`, i.e. position
    /// `⌊(t − t0)/δ⌋`, when within range.
    pub fn at_time(&self, t: i64) -> Option<&GraphInstance> {
        if t < self.start_time {
            return None;
        }
        let i = ((t - self.start_time) / self.period) as usize;
        self.instances.get(i)
    }

    /// Iterate instances in time order.
    pub fn iter(&self) -> impl Iterator<Item = &GraphInstance> {
        self.instances.iter()
    }

    /// Consume the collection into its ordered instances.
    pub fn into_instances(self) -> Vec<GraphInstance> {
        self.instances
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrType;
    use crate::template::TemplateBuilder;

    fn template() -> Arc<GraphTemplate> {
        let mut b = TemplateBuilder::new("t", false);
        b.vertex_schema().add("x", AttrType::Long);
        b.add_vertex(1);
        b.add_vertex(2);
        b.add_edge(0, 1, 2).unwrap();
        Arc::new(b.finalize().unwrap())
    }

    #[test]
    fn push_enforces_periodic_timestamps() {
        let t = template();
        let mut c = TimeSeriesCollection::new(t.clone(), 100, 5);
        assert_eq!(c.next_timestamp(), 100);
        c.push(c.new_instance()).unwrap();
        assert_eq!(c.next_timestamp(), 105);
        c.push(c.new_instance()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0).unwrap().timestamp(), 100);
        assert_eq!(c.get(1).unwrap().timestamp(), 105);

        let bad = GraphInstance::new(&t, 999);
        assert_eq!(
            c.push(bad),
            Err(CoreError::TimestampMismatch {
                expected: 110,
                got: 999
            })
        );
    }

    #[test]
    fn invalid_period_rejected() {
        let t = template();
        assert!(TimeSeriesCollection::try_new(t.clone(), 0, 0).is_err());
        assert!(TimeSeriesCollection::try_new(t, 0, -5).is_err());
    }

    #[test]
    #[should_panic(expected = "period must be > 0")]
    fn new_panics_on_bad_period() {
        let _ = TimeSeriesCollection::new(template(), 0, 0);
    }

    #[test]
    fn at_time_maps_into_period_buckets() {
        let t = template();
        let mut c = TimeSeriesCollection::new(t, 100, 5);
        for _ in 0..3 {
            c.push(c.new_instance()).unwrap();
        }
        assert_eq!(c.at_time(100).unwrap().timestamp(), 100);
        assert_eq!(c.at_time(104).unwrap().timestamp(), 100);
        assert_eq!(c.at_time(105).unwrap().timestamp(), 105);
        assert_eq!(c.at_time(114).unwrap().timestamp(), 110);
        assert!(c.at_time(115).is_none());
        assert!(c.at_time(99).is_none());
    }

    #[test]
    fn push_rejects_foreign_template() {
        let t = template();
        let mut other_b = TemplateBuilder::new("other", false);
        other_b.vertex_schema().add("y", AttrType::Double);
        other_b.add_vertex(1);
        let other = other_b.finalize().unwrap();

        let mut c = TimeSeriesCollection::new(t, 0, 1);
        let foreign = GraphInstance::new(&other, 0);
        assert!(c.push(foreign).is_err());
    }

    #[test]
    fn iter_and_into_instances_preserve_order() {
        let t = template();
        let mut c = TimeSeriesCollection::new(t, 0, 10);
        for _ in 0..4 {
            c.push(c.new_instance()).unwrap();
        }
        let stamps: Vec<i64> = c.iter().map(|g| g.timestamp()).collect();
        assert_eq!(stamps, vec![0, 10, 20, 30]);
        let owned = c.into_instances();
        assert_eq!(owned.len(), 4);
    }

    #[test]
    fn mutate_through_get_mut() {
        let t = template();
        let mut c = TimeSeriesCollection::new(t, 0, 1);
        c.push(c.new_instance()).unwrap();
        c.get_mut(0).unwrap().vertex_i64_mut("x").unwrap()[0] = 77;
        assert_eq!(c.get(0).unwrap().vertex_i64("x").unwrap()[0], 77);
    }
}
