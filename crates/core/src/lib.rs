//! # tempograph-core — time-series graph data model
//!
//! This crate implements the data model from *"Distributed Programming over
//! Time-series Graphs"* (IPDPS 2015), §II.A:
//!
//! A collection of time-series graphs is `Γ = ⟨Ĝ, G, t0, δ⟩` where
//!
//! * `Ĝ` — the [`GraphTemplate`]: the time-invariant topology plus the
//!   *schema* (typed attribute names) for vertices and edges;
//! * `G` — an ordered set of [`GraphInstance`]s capturing the time-variant
//!   attribute *values* for every vertex and edge of the template;
//! * `t0` — the timestamp of the first instance; and
//! * `δ` — the constant period between successive instances.
//!
//! Every instance `gᵗ` has exactly `|V̂|` vertex value rows and `|Ê|` edge
//! value rows: topology never changes across instances. Slow topology churn
//! is modelled with an `isExists` boolean attribute (see
//! [`GraphTemplate::IS_EXISTS`]).
//!
//! Instances store attribute values **columnar** — one dense, typed column
//! per attribute, indexed by the template's dense vertex/edge index — which
//! keeps scans cache-friendly and serialisation trivial.
//!
//! ```
//! use tempograph_core::{TemplateBuilder, AttrType, TimeSeriesCollection};
//!
//! let mut b = TemplateBuilder::new("toy", false);
//! b.vertex_schema().add("load", AttrType::Double);
//! b.edge_schema().add("latency", AttrType::Double);
//! b.add_vertex(10); b.add_vertex(20);
//! b.add_edge(1, 10, 20).unwrap();
//! let template = b.finalize().unwrap();
//!
//! let mut coll = TimeSeriesCollection::new(template.into(), 0, 300);
//! let mut g0 = coll.new_instance();
//! g0.edge_f64_mut("latency").unwrap()[0] = 12.5;
//! coll.push(g0).unwrap();
//! assert_eq!(coll.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod attr;
pub mod collection;
pub mod delta;
pub mod error;
pub mod ids;
pub mod instance;
pub mod kernels;
pub mod template;

pub use attr::{AttrDef, AttrType, AttrValue, Schema};
pub use collection::TimeSeriesCollection;
pub use error::{CoreError, Result};
pub use ids::{EdgeIdx, VertexIdx};
pub use instance::{Column, GraphInstance};
pub use template::{GraphTemplate, Neighbor, TemplateBuilder};
