//! Dense index newtypes for vertices and edges.
//!
//! The template maps external 64-bit ids (as found in raw datasets) to dense
//! `u32` indices. All hot paths — adjacency traversal, columnar attribute
//! access, message routing — use the dense indices; external ids only appear
//! at the API boundary.

use std::fmt;

/// Dense index of a vertex within a [`crate::GraphTemplate`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexIdx(pub u32);

/// Dense index of an edge within a [`crate::GraphTemplate`].
///
/// For undirected templates each *physical* edge has a single `EdgeIdx`
/// shared by both traversal directions, so edge attributes (e.g. road
/// latency) are stored once per road segment.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeIdx(pub u32);

impl VertexIdx {
    /// Index as a `usize`, for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeIdx {
    /// Index as a `usize`, for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexIdx {
    fn from(v: u32) -> Self {
        VertexIdx(v)
    }
}

impl From<u32> for EdgeIdx {
    fn from(v: u32) -> Self {
        EdgeIdx(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_idx_roundtrip() {
        let v = VertexIdx(42);
        assert_eq!(v.idx(), 42);
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(format!("{v}"), "42");
        assert_eq!(VertexIdx::from(42u32), v);
    }

    #[test]
    fn edge_idx_roundtrip() {
        let e = EdgeIdx(7);
        assert_eq!(e.idx(), 7);
        assert_eq!(format!("{e:?}"), "e7");
        assert_eq!(EdgeIdx::from(7u32), e);
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(VertexIdx(1) < VertexIdx(2));
        assert!(EdgeIdx(0) < EdgeIdx(100));
    }
}
