//! P01 clean: the hot path surfaces typed errors instead of panicking.
#![forbid(unsafe_code)]

fn decode_frame(buf: &mut Bytes) -> Result<Frame, WireError> {
    let len = try_len(buf)?;
    if len > MAX {
        return Err(WireError::Eof {
            context: "frame length",
            needed: len,
            remaining: buf.remaining(),
        });
    }
    read(buf, len)
}

#[cfg(test)]
mod tests {
    // Tests may unwrap freely; the rule only guards production paths.
    #[test]
    fn round_trip() {
        let frame = decode_frame(&mut encoded()).unwrap();
        assert_eq!(frame.len, 3);
    }
}
