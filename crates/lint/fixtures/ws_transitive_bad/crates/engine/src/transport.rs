//! Fixture transport: a `Transport`-shaped entry point that indexes a
//! per-peer state vector — the P01 indexing sub-check, rooted at `send`.

pub struct Mesh {
    seqs: Vec<u64>,
}

impl Mesh {
    pub fn send(&mut self, dst: usize) -> u64 {
        self.seqs[dst] += 1;
        self.seqs[dst]
    }
}
