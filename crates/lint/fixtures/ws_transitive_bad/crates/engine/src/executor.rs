//! Fixture executor: superstep-loop roots whose violations all live one
//! or more call hops away — the cases the per-file pass cannot see.

use tempograph_util::step as advance;

pub struct Worker<P: Provider> {
    provider: P,
    sink: TraceSink,
}

/// Trait the worker fetches instances through; the concrete impl lives in
/// the util crate and is never named here (dispatch-expansion case).
pub trait Provider {
    fn fetch(&mut self, t: usize) -> u64;
}

impl<P: Provider> Worker<P> {
    pub fn run_timestep_loop(&mut self) {
        // Use-alias case: `advance` is really `tempograph_util::step`,
        // which panics two hops down.
        advance(1);
        // Trait-dispatch case: resolves through the bodyless `Provider`
        // declaration to `DiskProvider::fetch` and its `.expect(…)`.
        let _v = self.provider.fetch(0);
        // H01 case: unguarded allocation in the trace crate.
        self.sink.record(7);
        self.sink.record_guarded(8);
        // cfg(test)-masked callee: must resolve to nothing.
        debug_probe();
        // Two-hop D02 case via a same-file helper.
        stamp();
    }
}

fn stamp() {
    tempograph_util::wall_clock();
}

#[cfg(test)]
fn debug_probe() {
    panic!("test-only helper");
}
