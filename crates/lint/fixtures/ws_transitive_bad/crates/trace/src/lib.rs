#![forbid(unsafe_code)]
//! Fixture trace sink: one unguarded allocating record path (H01 fires)
//! and one guard-protected path (the guard is the closure boundary).

pub struct TraceSink {
    on: bool,
    buf: Vec<u64>,
}

impl TraceSink {
    pub fn record(&mut self, v: u64) {
        self.buf.push(v);
    }

    pub fn record_guarded(&mut self, v: u64) {
        if !self.on {
            return;
        }
        self.buf.push(v);
    }
}
