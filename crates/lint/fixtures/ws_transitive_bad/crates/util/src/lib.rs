#![forbid(unsafe_code)]
//! Fixture helpers the executor reaches transitively.

/// Two-hop panic case: root → `step` → `apply` → `.unwrap()`.
pub fn step(n: u64) {
    apply(n);
}

fn apply(n: u64) {
    let v: Option<u64> = Some(n);
    let _ = v.unwrap();
}

/// D02 case, two hops from the root.
pub fn wall_clock() -> u64 {
    let _t = std::time::Instant::now();
    0
}

pub struct DiskProvider;

impl Provider for DiskProvider {
    fn fetch(&mut self, t: usize) -> u64 {
        lookup(t).expect("timestep present")
    }
}

fn lookup(t: usize) -> Option<u64> {
    Some(t as u64)
}
