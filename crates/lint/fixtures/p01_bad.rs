//! P01 violation: panics in the worker hot path.
#![forbid(unsafe_code)]

fn decode_frame(buf: &mut Bytes) -> Frame {
    let len = try_len(buf).unwrap();
    if len > MAX {
        panic!("frame too large");
    }
    read(buf, len).expect("short frame")
}
