//! D01 violation: iterating a HashMap on a determinism-critical path.
#![forbid(unsafe_code)]

use std::collections::HashMap;

fn counters_in_arbitrary_order() -> Vec<(String, u64)> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    counts.insert("msgs".to_string(), 7);
    let mut out = Vec::new();
    // Hash iteration order leaks straight into the output.
    for (name, value) in &counts {
        out.push((name.clone(), *value));
    }
    out
}
