//! W01 clean: every tag is explicit; unknown tags are typed corruption.
#![forbid(unsafe_code)]

fn decode(buf: &mut Bytes) -> Result<Msg, WireError> {
    match get_u8(buf, "Msg tag")? {
        0 => Ok(Msg::Relax),
        1 => Ok(Msg::Series),
        2 => Ok(Msg::Halt),
        tag => Err(WireError::BadTag {
            context: "Msg",
            tag,
        }),
    }
}

fn merge_arms_elsewhere_are_fine(x: u8) -> u8 {
    // Wildcards outside decode bodies are not wire-format hazards.
    match x {
        0 => 1,
        _ => 2,
    }
}
