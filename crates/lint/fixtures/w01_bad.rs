//! W01 violation: a wildcard arm in a wire-format decode match.
#![forbid(unsafe_code)]

fn decode(buf: &mut Bytes) -> Result<Msg, WireError> {
    match get_u8(buf, "Msg tag")? {
        0 => Ok(Msg::Relax),
        1 => Ok(Msg::Series),
        // A new variant added to the encoder silently decodes as Halt.
        _ => Ok(Msg::Halt),
    }
}
