//! D02 violation: raw clock reads outside the trace crate.
#![forbid(unsafe_code)]

fn time_a_phase() -> u64 {
    let started = std::time::Instant::now();
    expensive();
    started.elapsed().as_nanos() as u64
}

fn wall_clock() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
