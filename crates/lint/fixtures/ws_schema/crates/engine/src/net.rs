//! Fixture wire structs for the W02 schema-lock tests. Mirrors the real
//! frame family's shape: a versioned enum with explicit discriminants and
//! the structs the golden under `schemas/` locks.

pub const FRAME_VERSION: u32 = 1;

pub enum FrameKind {
    Hello = 1,
    Data = 2,
}

pub struct Frame {
    pub kind: FrameKind,
    pub seq: u64,
    pub payload: Vec<u8>,
}

pub struct HelloMsg {
    pub partition: u16,
}

pub struct StartMsg {
    pub epoch: u32,
}

pub struct AbortMsg {
    pub detail: String,
}
