//! Fixture wire structs for the W02 schema-lock tests. Mirrors the real
//! frame family's shape: a versioned enum with explicit discriminants and
//! the structs the golden under `schemas/` locks.

pub const FRAME_VERSION: u32 = 1;

pub enum FrameKind {
    Hello = 1,
    Data = 2,
}

pub struct Frame {
    pub kind: FrameKind,
    pub seq: u64,
    pub payload: Vec<u8>,
}

pub struct HelloMsg {
    pub partition: u16,
}

pub struct StartMsg {
    pub epoch: u32,
}

pub struct AbortMsg {
    pub detail: String,
}

pub struct TraceEventWire {
    pub kind: u8,
    pub name: String,
}

pub struct HistogramWire {
    pub buckets: Vec<u64>,
    pub count: u64,
}

pub struct MetricsShardWire {
    pub cache_hits: u64,
    pub bytes_read: u64,
}

pub struct AttrRowWire {
    pub subgraph: u32,
    pub compute_ns: u64,
}

pub struct TelemetryMsg {
    pub timestep: u32,
    pub final_flush: bool,
    pub events: Vec<TraceEventWire>,
}

pub struct WorkerStatusWire {
    pub partition: u16,
    pub epoch: u32,
}

pub struct StatusReplyMsg {
    pub workers: Vec<WorkerStatusWire>,
}
