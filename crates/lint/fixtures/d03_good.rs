//! D03 clean: every RNG is seeded, so runs are reproducible.
#![forbid(unsafe_code)]

use rand::{rngs::StdRng, SeedableRng};

fn shuffle_partitions(parts: &mut Vec<u32>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    parts.shuffle(&mut rng);
}
