//! A01 clean: acquire/release edges on the latch.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static FIRED: AtomicBool = AtomicBool::new(false);

fn fire_once() -> bool {
    !FIRED.swap(true, Ordering::AcqRel)
}

fn reset() {
    FIRED.store(false, Ordering::Release);
}
