//! F01 violation: a crate root without `#![forbid(unsafe_code)]`.

pub fn entirely_safe_but_unpledged() -> u32 {
    41 + 1
}
