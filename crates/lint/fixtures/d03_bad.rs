//! D03 violation: unseeded randomness.
#![forbid(unsafe_code)]

fn shuffle_partitions(parts: &mut Vec<u32>) {
    let mut rng = rand::thread_rng();
    parts.shuffle(&mut rng);
}
