#![forbid(unsafe_code)]
//! Fixture helpers: fallible where the bad twin panicked.

pub fn step(n: u64) -> Result<u64, String> {
    n.checked_add(1).ok_or_else(|| "overflow".to_string())
}
