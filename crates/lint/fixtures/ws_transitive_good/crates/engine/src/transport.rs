//! Fixture transport: the typed-error indexing shape `ws_transitive_bad`
//! should have used.

pub struct Mesh {
    seqs: Vec<u64>,
}

impl Mesh {
    pub fn send(&mut self, dst: usize) -> Result<u64, String> {
        let s = self
            .seqs
            .get_mut(dst)
            .ok_or_else(|| "no mesh state for that peer".to_string())?;
        *s += 1;
        Ok(*s)
    }
}
