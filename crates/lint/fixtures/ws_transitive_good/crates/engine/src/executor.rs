//! Fixture executor: the same shape as `ws_transitive_bad` with every
//! hot-path callee clean — typed errors and guarded instrumentation.

pub struct Worker {
    sink: TraceSink,
}

impl Worker {
    pub fn run_timestep_loop(&mut self) -> Result<(), String> {
        let v = tempograph_util::step(1)?;
        self.sink.record(v);
        Ok(())
    }
}
