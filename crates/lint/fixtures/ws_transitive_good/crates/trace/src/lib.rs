#![forbid(unsafe_code)]
//! Fixture trace sink: the disabled-guard idiom H01 honours — every
//! allocation sits behind a leading early-return.

pub struct TraceSink {
    on: bool,
    buf: Vec<u64>,
}

impl TraceSink {
    pub fn record(&mut self, v: u64) {
        if !self.on {
            return;
        }
        self.buf.push(v);
    }
}
