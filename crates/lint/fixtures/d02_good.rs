//! D02 clean: timing goes through the trace crate's Clock stopwatch.
#![forbid(unsafe_code)]

use tempograph_trace::Clock;

fn time_a_phase() -> u64 {
    let started = Clock::start();
    expensive();
    started.elapsed_ns()
}
