//! D01 clean: BTreeMap iteration, and HashMap only with an explicit sort.
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

fn counters_in_sorted_order() -> Vec<(String, u64)> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    counts.insert("msgs".to_string(), 7);
    let mut out = Vec::new();
    for (name, value) in &counts {
        out.push((name.clone(), *value));
    }
    out
}

fn hash_map_is_fine_when_sorted(scratch: HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut out: Vec<(u32, u64)> = scratch.into_iter().collect();
    out.sort_unstable();
    out
}

fn lookups_never_observe_order(index: &HashMap<u32, u64>) -> Option<u64> {
    index.get(&3).copied()
}
