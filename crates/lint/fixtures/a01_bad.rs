//! A01 violation: Relaxed ordering on a sync-critical atomic.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static FIRED: AtomicBool = AtomicBool::new(false);

fn fire_once() -> bool {
    // Relaxed gives no happens-before edge to the worker that observes
    // the latch — the whole point of the flag.
    !FIRED.swap(true, Ordering::Relaxed)
}
