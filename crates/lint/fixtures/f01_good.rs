//! F01 clean: the crate root pledges safety.
#![forbid(unsafe_code)]

pub fn entirely_safe_and_pledged() -> u32 {
    41 + 1
}
