//! Workspace file discovery.
//!
//! The lint surface is first-party library and binary source only:
//! `src/**/*.rs` and `crates/*/src/**/*.rs` under the workspace root.
//! `tests/`, `benches/`, `examples/`, `vendor/`, and the lint fixture
//! corpus are deliberately out of scope — they may panic, time, and
//! allocate however they like.

use std::path::{Path, PathBuf};

/// Collect every in-scope `.rs` file under `root`, workspace-relative with
/// forward slashes, sorted for deterministic report order.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut kids: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("{}: {e}", crates.display()))?
            .filter_map(|r| r.ok().map(|d| d.path()))
            .collect();
        kids.sort();
        for kid in kids {
            let src = kid.join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    let mut files = Vec::new();
    for dir in dirs {
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut kids: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|r| r.ok().map(|d| d.path()))
        .collect();
    kids.sort();
    for kid in kids {
        if kid.is_dir() {
            collect_rs(&kid, out)?;
        } else if kid.extension().is_some_and(|e| e == "rs") {
            out.push(kid);
        }
    }
    Ok(())
}

/// Workspace-relative display path with forward slashes.
pub fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}
