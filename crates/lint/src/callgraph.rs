//! Conservative name-resolution call graph over the parsed workspace.
//!
//! Resolution is purely syntactic — no types, no trait solving — and errs
//! toward over-approximation: a method call `x.send(…)` adds edges to
//! *every* workspace method named `send`, and a qualified call
//! `Transport::barrier(…)` to every method of that name on that owner.
//! Over-approximation keeps the reachability rules sound-for-the-workspace
//! (a real call can't be missed because we couldn't type `x`), at the cost
//! of occasional chains through a same-named method — which is what the
//! allowlist's chain-specific reasons are for. The one deliberate
//! under-approximation: calls into `std`/external crates resolve to
//! nothing, because their bodies aren't in the workspace to analyze.

use crate::parser::{FileAst, FnItem};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Stable id of a function: (file index, fn index within that file).
pub type FnId = (usize, usize);

/// The workspace call graph.
pub struct CallGraph {
    /// Parsed files, indexable by `FnId.0`.
    pub files: Vec<FileAst>,
    /// Outgoing call edges per function.
    edges: BTreeMap<FnId, Vec<FnId>>,
}

/// How a call site was written; drives resolution.
enum CallKind {
    /// `recv.name(…)` — resolves to any workspace method `name`.
    Method,
    /// `Owner::name(…)` — resolves by (owner, name); `Self` is the
    /// enclosing impl owner; aliases already applied.
    Qualified(String),
    /// `name(…)` — resolves to free fns named `name`.
    Bare,
}

impl CallGraph {
    /// Build the graph for a set of parsed files.
    pub fn build(files: Vec<FileAst>) -> CallGraph {
        // Idents each file mentions anywhere — the receiver-plausibility
        // filter for cross-owner method edges (see below).
        let mentions: Vec<BTreeSet<&str>> = files
            .iter()
            .map(|f| {
                f.toks
                    .iter()
                    .map(|t| t.text.as_str())
                    .filter(|t| {
                        t.chars()
                            .next()
                            .is_some_and(|c| c.is_alphabetic() || c == '_')
                    })
                    .collect()
            })
            .collect();

        // Indexes over all non-test fns.
        let mut methods: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut qualified: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        // `impl Trait for Type` methods, keyed by (trait, method name) —
        // dispatch expansion for calls that resolve to a bodyless trait
        // declaration.
        let mut trait_impls: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                if f.test_only {
                    continue;
                }
                let id = (fi, gi);
                match &f.owner {
                    Some(owner) => {
                        methods.entry(&f.name).or_default().push(id);
                        qualified.entry((owner, &f.name)).or_default().push(id);
                    }
                    None => free.entry(&f.name).or_default().push(id),
                }
                if let Some(tr) = &f.trait_impl {
                    trait_impls.entry((tr, &f.name)).or_default().push(id);
                }
            }
        }

        let mut edges: BTreeMap<FnId, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            // A private fn is only callable from inside its own crate
            // (same-file approximates the module tree closely enough for
            // this workspace's one-level layout; same-crate is safer).
            let caller_crate = crate_of(&file.path);
            let visible = |&(tfi, tgi): &FnId| {
                files[tfi].fns[tgi].is_pub || crate_of(&files[tfi].path) == caller_crate
            };
            for (gi, f) in file.fns.iter().enumerate() {
                if f.test_only {
                    continue;
                }
                let Some((bs, be)) = f.body else { continue };
                let mut out: BTreeSet<FnId> = BTreeSet::new();
                for (name, kind) in call_sites(file, f, bs, be) {
                    match &kind {
                        CallKind::Method => {
                            // Cross-owner method edges require the callee's
                            // owner type to be *mentioned* somewhere in the
                            // calling file. Name-wide matching on ubiquitous
                            // std-colliding names (`push`, `get`, `expect`,
                            // `partition`, …) otherwise links every container
                            // call to every workspace method of that name.
                            // Type-blind but proximity-aware: fields, params,
                            // and locals all name their types in this
                            // codebase, so a real receiver's type appears in
                            // the file. Same-file edges always pass.
                            if let Some(ts) = methods.get(name.as_str()) {
                                out.extend(ts.iter().copied().filter(visible).filter(
                                    |&(tfi, tgi)| {
                                        tfi == fi
                                            || files[tfi].fns[tgi]
                                                .owner
                                                .as_deref()
                                                .is_some_and(|o| mentions[fi].contains(o))
                                    },
                                ));
                            }
                        }
                        CallKind::Qualified(owner) => {
                            if let Some(ts) = qualified.get(&(owner.as_str(), name.as_str())) {
                                out.extend(ts.iter().copied().filter(visible));
                            } else if owner.chars().next().is_some_and(|c| c.is_lowercase()) {
                                // `module::helper(…)` — a free fn behind a
                                // module path.
                                if let Some(ts) = free.get(name.as_str()) {
                                    out.extend(ts.iter().copied().filter(visible));
                                }
                            }
                            // Unknown uppercase owner (std / external): no
                            // edge.
                        }
                        CallKind::Bare => {
                            if let Some(ts) = free.get(name.as_str()) {
                                out.extend(ts.iter().copied().filter(visible));
                            }
                        }
                    }
                }
                // Trait dispatch: a call resolved to a bodyless trait
                // declaration `T::m` dispatches at runtime to any
                // `impl T for _`'s `m` — add them all. The mention filter
                // deliberately does not apply: the concrete type is often
                // never named at the call site (generics, trait objects).
                let mut dispatched: Vec<FnId> = Vec::new();
                for &(tfi, tgi) in &out {
                    let t = &files[tfi].fns[tgi];
                    if t.body.is_none() {
                        if let Some(tr) = &t.owner {
                            if let Some(impls) = trait_impls.get(&(tr.as_str(), t.name.as_str())) {
                                dispatched.extend(impls.iter().copied());
                            }
                        }
                    }
                }
                out.extend(dispatched);
                edges.insert((fi, gi), out.into_iter().collect());
            }
        }
        CallGraph { files, edges }
    }

    /// The [`FnItem`] for an id.
    pub fn item(&self, id: FnId) -> &FnItem {
        &self.files[id.0].fns[id.1]
    }

    /// All non-test fns in `file_suffix` (workspace-relative path suffix
    /// match) whose name passes `pred`.
    pub fn roots_in(&self, file_suffix: &str, pred: impl Fn(&FnItem) -> bool) -> Vec<FnId> {
        let mut out = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            if !file.path.ends_with(file_suffix) {
                continue;
            }
            for (gi, f) in file.fns.iter().enumerate() {
                if !f.test_only && pred(f) {
                    out.push((fi, gi));
                }
            }
        }
        out
    }

    /// BFS closure from `roots`. `stop` prunes traversal *below* a node:
    /// the node itself is still visited (so rules may inspect it), but its
    /// callees are not — used by H01 to treat guard-protected fns as
    /// boundaries. Returns each reachable fn with its BFS parent, for
    /// chain reconstruction via [`CallGraph::chain`].
    pub fn closure(
        &self,
        roots: &[FnId],
        stop: impl Fn(FnId, &FnItem) -> bool,
    ) -> BTreeMap<FnId, Option<FnId>> {
        let mut parent: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            if stop(id, self.item(id)) {
                continue;
            }
            if let Some(outs) = self.edges.get(&id) {
                for &next in outs {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                        e.insert(Some(id));
                        queue.push_back(next);
                    }
                }
            }
        }
        parent
    }

    /// Render the root→`id` call chain recorded by [`CallGraph::closure`],
    /// e.g. `run_bsp → absorb_outbox → InProcess::send`.
    pub fn chain(&self, parents: &BTreeMap<FnId, Option<FnId>>, id: FnId) -> String {
        let mut names = vec![self.item(id).display()];
        let mut cur = id;
        while let Some(Some(p)) = parents.get(&cur) {
            names.push(self.item(*p).display());
            cur = *p;
        }
        names.reverse();
        names.join(" → ")
    }
}

/// Extract call sites from a body extent. Yields `(callee name, kind)`.
fn call_sites(file: &FileAst, f: &FnItem, bs: usize, be: usize) -> Vec<(String, CallKind)> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = bs;
    while i + 1 < be {
        let t = &toks[i].text;
        let next = &toks[i + 1].text;
        let callee_pos =
            next == "(" || (next == "::" && toks.get(i + 2).is_some_and(|t| t.text == "<"));
        if !callee_pos || !is_ident(t) || is_keyword(t) {
            i += 1;
            continue;
        }
        // Turbofish `name::<T>(…)` — confirm the `(` follows the generics.
        if next == "::" {
            let close = angle_close(toks, i + 2, be);
            if toks.get(close + 1).map(|t| t.text.as_str()) != Some("(") {
                i += 1;
                continue;
            }
        }
        let prev = if i > bs {
            Some(toks[i - 1].text.as_str())
        } else {
            None
        };
        match prev {
            Some(".") => out.push((t.clone(), CallKind::Method)),
            Some("::") if i >= 2 => {
                let owner_tok = &toks[i - 2].text;
                if is_ident(owner_tok) {
                    let mut owner = owner_tok.clone();
                    if owner == "Self" {
                        match &f.owner {
                            Some(o) => owner = o.clone(),
                            None => {
                                i += 1;
                                continue;
                            }
                        }
                    }
                    // `use x as y` rename: `y::f()` is really `x::f()`.
                    if let Some(orig) = file.aliases.get(&owner) {
                        owner = orig.clone();
                    }
                    out.push((t.clone(), CallKind::Qualified(owner)));
                }
            }
            Some("fn") => {} // nested fn definition, not a call
            _ => {
                let name = file.aliases.get(t).cloned().unwrap_or_else(|| t.clone());
                out.push((name, CallKind::Bare));
            }
        }
        i += 1;
    }
    out
}

/// The crate a workspace path belongs to: everything before `/src/`.
fn crate_of(path: &str) -> &str {
    path.rfind("/src/").map(|i| &path[..i]).unwrap_or(path)
}

fn angle_close(toks: &[crate::lexer::Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i + 1; // toks[i] is `::`, toks[i+1] is `<`
    while j < end {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            ";" | "{" => return j,
            _ => {}
        }
        j += 1;
    }
    end.saturating_sub(1)
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "else"
            | "let"
            | "fn"
            | "move"
            | "in"
            | "as"
            | "mut"
            | "ref"
            | "break"
            | "continue"
            | "unsafe"
            | "await"
            | "impl"
            | "dyn"
            | "where"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "const"
            | "static"
            | "type"
            | "crate"
            | "self"
            | "super"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        CallGraph::build(files.iter().map(|(p, s)| parser::parse(p, s)).collect())
    }

    fn reachable_names(g: &CallGraph, roots: &[FnId]) -> Vec<String> {
        g.closure(roots, |_, _| false)
            .keys()
            .map(|&id| g.item(id).display())
            .collect()
    }

    #[test]
    fn two_hop_bare_calls_are_reachable() {
        let g = graph(&[(
            "a.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}",
        )]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        let names = reachable_names(&g, &roots);
        assert_eq!(names, vec!["root", "mid", "leaf"], "island excluded");
    }

    #[test]
    fn method_calls_resolve_by_name_across_files() {
        let g = graph(&[
            ("a/src/a.rs", "fn root(t: &mut Tcp) { t.send(0); }"),
            (
                "b/src/b.rs",
                "impl Tcp { pub fn send(&mut self) { self.flush(); } fn flush(&mut self) {} }",
            ),
        ]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        let names = reachable_names(&g, &roots);
        assert!(names.contains(&"Tcp::send".to_string()));
        assert!(
            names.contains(&"Tcp::flush".to_string()),
            "private, but same crate"
        );
    }

    #[test]
    fn unmentioned_owner_types_get_no_method_edge() {
        // `v.push(…)` on a plain Vec must not link to every workspace
        // method named `push` — only owners the calling file names.
        let g = graph(&[
            ("a/src/a.rs", "fn root(v: &mut Vec<u32>) { v.push(1); }"),
            (
                "b/src/b.rs",
                "impl Ring { pub fn push(&mut self) { boom(); } }\npub fn boom() { panic!(\"x\") }",
            ),
        ]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        let names = reachable_names(&g, &roots);
        assert_eq!(names, vec!["root"], "no edge to Ring::push");
    }

    #[test]
    fn private_methods_are_invisible_across_crates() {
        // a.rs mentions Sink (passes the mention filter), but Sink::push
        // is private to crate b — no edge.
        let g = graph(&[
            (
                "a/src/a.rs",
                "fn root(s: &mut Sink, v: &mut Vec<u32>) { v.push(1); }",
            ),
            (
                "b/src/b.rs",
                "impl Sink { fn push(&mut self) { panic!(\"x\") } }",
            ),
        ]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        assert_eq!(reachable_names(&g, &roots), vec!["root"]);
    }

    #[test]
    fn bodyless_trait_decls_dispatch_to_their_impls() {
        // The executor sees only the trait; the concrete impl's owner is
        // never mentioned in the calling file. Dispatch must still reach
        // the impl body through the bodyless declaration.
        let g = graph(&[
            ("a/src/a.rs", "fn root<P: Provider>(p: &P) { p.fetch(0); }"),
            (
                "b/src/b.rs",
                "pub trait Provider { fn fetch(&self, t: u32); }\n\
                 impl Provider for MemoryProvider { fn fetch(&self, t: u32) { self.lookup(t); } }\n\
                 impl MemoryProvider { fn lookup(&self, t: u32) {} }",
            ),
        ]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        let names = reachable_names(&g, &roots);
        assert!(
            names.contains(&"MemoryProvider::fetch".to_string()),
            "{names:?}"
        );
        assert!(
            names.contains(&"MemoryProvider::lookup".to_string()),
            "{names:?}"
        );
    }

    #[test]
    fn qualified_calls_resolve_by_owner() {
        let g = graph(&[(
            "a.rs",
            "fn root() { Foo::go(); }\n\
             impl Foo { fn go() {} }\n\
             impl Bar { fn go() { never(); } }\n\
             fn never() {}",
        )]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        let names = reachable_names(&g, &roots);
        assert!(names.contains(&"Foo::go".to_string()));
        assert!(
            !names.contains(&"never".to_string()),
            "Bar::go not reachable"
        );
    }

    #[test]
    fn use_alias_is_resolved_for_bare_calls() {
        let g = graph(&[
            ("a.rs", "use crate::b::boom as tick;\nfn root() { tick(); }"),
            ("b.rs", "pub fn boom() { panic!(\"x\") }"),
        ]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        assert!(reachable_names(&g, &roots).contains(&"boom".to_string()));
    }

    #[test]
    fn cfg_test_callees_are_invisible() {
        let g = graph(&[(
            "a.rs",
            "fn root() { probe(); }\n#[cfg(test)]\nfn probe() { panic!(\"t\") }",
        )]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        let names = reachable_names(&g, &roots);
        assert_eq!(names, vec!["root"]);
    }

    #[test]
    fn stop_predicate_prunes_below_guarded_fns() {
        let g = graph(&[(
            "a.rs",
            "fn root(s: S) { s.record(1); }\n\
             impl S { fn record(&mut self, v: u64) { if !self.on { return; } self.push(v); }\n\
                      fn push(&mut self, v: u64) { heap(); } }\n\
             fn heap() {}",
        )]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        let all = reachable_names(&g, &roots);
        assert!(all.contains(&"heap".to_string()));
        let pruned: Vec<String> = g
            .closure(&roots, |_, f| f.guarded)
            .keys()
            .map(|&id| g.item(id).display())
            .collect();
        assert!(
            pruned.contains(&"S::record".to_string()),
            "guard node itself visited"
        );
        assert!(
            !pruned.contains(&"heap".to_string()),
            "nothing below the guard"
        );
    }

    #[test]
    fn chains_render_root_to_leaf() {
        let g = graph(&[(
            "a.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}",
        )]);
        let roots = g.roots_in("a.rs", |f| f.name == "root");
        let parents = g.closure(&roots, |_, _| false);
        let leaf = g.roots_in("a.rs", |f| f.name == "leaf")[0];
        assert_eq!(g.chain(&parents, leaf), "root → mid → leaf");
    }
}
