//! Item/extent parsing on top of [`crate::lexer`].
//!
//! Turns a file's token stream into the item-level facts the call-graph
//! and schema passes need: every function with its body extent and owner
//! (enclosing `impl`/`trait` type), `use … as …` renames, inline-module
//! nesting, `#[cfg(test)]` masking, and whether a body opens with the
//! repo's disabled-guard idiom (`if <cond> { return … }` as the first
//! statement — the zero-alloc escape hatch rule H01 honours).
//!
//! This is deliberately *not* a full Rust parser. It tracks exactly the
//! bracket structure needed to find item extents; everything it cannot
//! classify it skips. The consequences are conservative for the call
//! graph (a function we fail to index simply cannot be resolved as a
//! callee) and documented in DESIGN.md §5.

use crate::lexer::{self, Tok};
use std::collections::BTreeMap;

/// One parsed function (free fn, inherent/trait-impl method, or trait
/// default method) with its body token extent.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl`/`trait` type head (`TraceSink`, `Transport`, …);
    /// `None` for free functions.
    pub owner: Option<String>,
    /// The trait being implemented, for fns inside `impl Trait for Type`.
    pub trait_impl: Option<String>,
    /// Callable outside its own crate: written `pub`, or declared in a
    /// trait / a trait impl (trait methods are public via the trait).
    pub is_pub: bool,
    /// Inline-module path within the file (e.g. `["tests"]`).
    pub module: Vec<String>,
    /// Token range of the `{ … }` body (exclusive end); `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` item (directly or via an enclosing mod).
    pub test_only: bool,
    /// Body opens with a leading early-return guard — the instrumentation
    /// crates' "disabled ⇒ return before touching anything" idiom.
    pub guarded: bool,
}

impl FnItem {
    /// `Owner::name` or `name`, for call-chain rendering.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything the workspace passes need to know about one file.
#[derive(Clone, Debug)]
pub struct FileAst {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The file's source text (finding reports quote the offending line).
    pub src: String,
    /// Full token stream ([`lexer::lex_full`]: numbers kept).
    pub toks: Vec<Tok>,
    /// Every function found, in source order.
    pub fns: Vec<FnItem>,
    /// `use path::X as Y;` renames: alias → original final segment.
    pub aliases: BTreeMap<String, String>,
}

/// Parse one file.
pub fn parse(path: &str, src: &str) -> FileAst {
    let toks = lexer::lex_full(src);
    let mut ast = FileAst {
        path: path.to_string(),
        src: src.to_string(),
        toks: Vec::new(),
        fns: Vec::new(),
        aliases: BTreeMap::new(),
    };
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let end = texts.len();
    let mut cx = Ctx {
        owner: None,
        trait_impl: None,
        in_trait: false,
        module: Vec::new(),
        test: false,
    };
    parse_items(&texts, &toks, 0, end, &mut cx, &mut ast);
    ast.toks = toks;
    ast
}

/// Item-walk context: enclosing impl/trait owner, module path, test mask.
struct Ctx {
    owner: Option<String>,
    trait_impl: Option<String>,
    in_trait: bool,
    module: Vec<String>,
    test: bool,
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Walk `texts[i..end]` as an item sequence. Recurses into `mod`, `impl`,
/// and `trait` bodies; records `fn` items without descending into their
/// bodies (closures and nested fns are attributed to the enclosing fn).
fn parse_items(
    texts: &[&str],
    toks: &[Tok],
    mut i: usize,
    end: usize,
    cx: &mut Ctx,
    out: &mut FileAst,
) {
    let mut pending_test = false;
    let mut pending_pub = false;
    while i < end {
        match texts[i] {
            // Attributes: skip; note #[cfg(test)] for the next item.
            "#" if texts.get(i + 1) == Some(&"[") => {
                let close = matching(texts, i + 1, "[", "]", end);
                if texts[i + 2..close]
                    .windows(3)
                    .any(|w| w == ["cfg", "(", "test"])
                {
                    pending_test = true;
                }
                i = close + 1;
            }
            "pub" => {
                pending_pub = true;
                i += 1;
                if texts.get(i) == Some(&"(") {
                    i = matching(texts, i, "(", ")", end) + 1;
                }
            }
            "use" => {
                i = parse_use(texts, i, end, out);
                pending_pub = false;
            }
            "mod" if texts.get(i + 1).is_some_and(|t| is_ident(t)) => {
                let name = texts[i + 1].to_string();
                let mut j = i + 2;
                if texts.get(j) == Some(&"{") {
                    let close = matching(texts, j, "{", "}", end);
                    cx.module.push(name);
                    let was_test = cx.test;
                    cx.test |= pending_test;
                    parse_items(texts, toks, j + 1, close, cx, out);
                    cx.test = was_test;
                    cx.module.pop();
                    j = close;
                }
                i = j + 1;
                pending_test = false;
                pending_pub = false;
            }
            "impl" | "trait" => {
                let kw = texts[i];
                let mut j = i + 1;
                if texts.get(j) == Some(&"<") {
                    j = matching_angle(texts, j, end) + 1;
                }
                // Type/trait path: collect segments up to `for`, `where`,
                // `{`, or `:` (supertrait bounds).
                let mut head = head_of_path(texts, &mut j, end);
                let mut trait_name = None;
                if kw == "impl" && texts.get(j) == Some(&"for") {
                    j += 1;
                    trait_name = head;
                    head = head_of_path(texts, &mut j, end);
                }
                // Skip bounds/where clause to the body.
                while j < end && texts[j] != "{" && texts[j] != ";" {
                    j += 1;
                }
                if texts.get(j) == Some(&"{") {
                    let close = matching(texts, j, "{", "}", end);
                    let was_owner = cx.owner.take();
                    let was_trait_impl = cx.trait_impl.take();
                    let was_in_trait = cx.in_trait;
                    let was_test = cx.test;
                    cx.owner = head;
                    cx.trait_impl = trait_name;
                    cx.in_trait = kw == "trait";
                    cx.test |= pending_test;
                    parse_items(texts, toks, j + 1, close, cx, out);
                    cx.owner = was_owner;
                    cx.trait_impl = was_trait_impl;
                    cx.in_trait = was_in_trait;
                    cx.test = was_test;
                    j = close;
                }
                i = j + 1;
                pending_test = false;
                pending_pub = false;
            }
            "fn" if texts.get(i + 1).is_some_and(|t| is_ident(t)) => {
                let name = texts[i + 1].to_string();
                let line = toks[i].line;
                let mut j = i + 2;
                if texts.get(j) == Some(&"<") {
                    j = matching_angle(texts, j, end) + 1;
                }
                if texts.get(j) == Some(&"(") {
                    j = matching(texts, j, "(", ")", end) + 1;
                }
                // Return type / where clause: scan to the body or `;`.
                while j < end && texts[j] != "{" && texts[j] != ";" {
                    if texts[j] == "(" {
                        j = matching(texts, j, "(", ")", end);
                    }
                    j += 1;
                }
                let body = if texts.get(j) == Some(&"{") {
                    let close = matching(texts, j, "{", "}", end);
                    let b = Some((j, close + 1));
                    j = close;
                    b
                } else {
                    None
                };
                let guarded = body.is_some_and(|(s, e)| body_is_guarded(texts, s, e));
                out.fns.push(FnItem {
                    name,
                    owner: cx.owner.clone(),
                    trait_impl: cx.trait_impl.clone(),
                    is_pub: pending_pub || cx.in_trait || cx.trait_impl.is_some(),
                    module: cx.module.clone(),
                    body,
                    line,
                    test_only: cx.test || pending_test,
                    guarded,
                });
                i = j + 1;
                pending_test = false;
                pending_pub = false;
            }
            // Items we skip whole: type defs, consts, statics, macros.
            "struct" | "enum" | "union" | "type" | "const" | "static" | "macro_rules"
            | "extern" => {
                i = item_end_from(texts, i + 1, end);
                pending_test = false;
                pending_pub = false;
            }
            _ => {
                // Stray tokens between items (`pub`, `unsafe`, `async`,
                // doc-attribute leftovers, …): advance.
                i += 1;
            }
        }
    }
}

/// `use` item: record `as` renames (both `use a::B as C;` and group form
/// `use a::{B as C, D as E};`). Plain imports keep their name and need no
/// entry. Returns the index past the terminating `;`.
fn parse_use(texts: &[&str], start: usize, end: usize, out: &mut FileAst) -> usize {
    let mut j = start + 1;
    while j < end && texts[j] != ";" {
        if texts[j] == "as"
            && j >= 1
            && is_ident(texts[j - 1])
            && texts.get(j + 1).is_some_and(|t| is_ident(t))
        {
            out.aliases
                .insert(texts[j + 1].to_string(), texts[j - 1].to_string());
            j += 2;
        } else {
            j += 1;
        }
    }
    j.min(end) + 1
}

/// Read a type/trait path at `*j`, returning its head ident: the last
/// path segment before generic arguments (`gofs::SliceData<'a>` →
/// `SliceData`, `&mut Foo` → `Foo`). Leaves `*j` on the first token past
/// the path.
fn head_of_path(texts: &[&str], j: &mut usize, end: usize) -> Option<String> {
    let mut head = None;
    while *j < end {
        match texts[*j] {
            "&" | "mut" | "dyn" => *j += 1,
            "<" => {
                *j = matching_angle(texts, *j, end) + 1;
            }
            "::" => *j += 1,
            t if is_ident(t) && t != "for" && t != "where" => {
                head = Some(t.to_string());
                *j += 1;
            }
            _ => break,
        }
    }
    head
}

/// Index of the token matching `open` at `i` (depth-balanced); `end` if
/// unbalanced.
fn matching(texts: &[&str], i: usize, open: &str, close: &str, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        if texts[j] == open {
            depth += 1;
        } else if texts[j] == close {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// Matching `>` for the `<` at `i`. Generic positions only (callers ensure
/// `<` opens a parameter list, not a comparison).
fn matching_angle(texts: &[&str], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        match texts[j] {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            // A parenthesised group may contain comparisons; skip it whole.
            "(" => j = matching(texts, j, "(", ")", end),
            ";" | "{" => return j, // malformed; bail at a statement edge
            _ => {}
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// First `;` at depth 0 from `start`, or the matching close of the first
/// `{` — one past it either way.
fn item_end_from(texts: &[&str], start: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        match texts[j] {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Does the body starting at `{` (token `s`) open with an early-return
/// guard? Recognised forms, as the *first statement*:
///
/// * `if <cond> { return … }`  (optionally `if … { return } else { … }`)
/// * `let <pat> = <expr> else { return … };`
///
/// The instrumentation crates gate every allocation behind one of these
/// (`if !self.on() { return; }`), so rule H01 treats a guarded fn as a
/// closure boundary: everything past the guard runs only when the
/// subsystem is enabled.
fn body_is_guarded(texts: &[&str], s: usize, e: usize) -> bool {
    let mut j = s + 1;
    if texts.get(j) == Some(&"if") {
        // Find the condition's `{` (conditions cannot contain braces —
        // struct literals are not allowed in `if` conditions).
        while j < e && texts[j] != "{" {
            j += 1;
        }
        return texts.get(j + 1) == Some(&"return");
    }
    if texts.get(j) == Some(&"let") {
        // `let … else { return … };` — scan to `else` before the first `;`.
        while j < e && texts[j] != ";" {
            if texts[j] == "else" && texts.get(j + 1) == Some(&"{") {
                return texts.get(j + 2) == Some(&"return");
            }
            j += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<FnItem> {
        parse("test.rs", src).fns
    }

    #[test]
    fn free_fns_and_methods_are_indexed() {
        let src = "fn alpha() { body(); }\n\
                   impl Foo { fn beta(&self) { x(); } }\n\
                   impl Bar for Baz { fn gamma(&self) {} }\n\
                   trait Qux { fn delta(&self) { y(); } fn decl(&self); }";
        let fs = fns(src);
        let names: Vec<(String, Option<String>)> = fs
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("alpha".into(), None),
                ("beta".into(), Some("Foo".into())),
                ("gamma".into(), Some("Baz".into())),
                ("delta".into(), Some("Qux".into())),
                ("decl".into(), Some("Qux".into())),
            ]
        );
        assert!(fs[4].body.is_none(), "trait decl has no body");
    }

    #[test]
    fn generic_impls_resolve_their_head_type() {
        let fs = fns("impl<T: WireMsg> WireMsg for Vec<T> { fn encode(&self) {} }");
        assert_eq!(fs[0].owner.as_deref(), Some("Vec"));
        let fs = fns("impl<'a> Transport for InProcess<'a> { fn send(&mut self) {} }");
        assert_eq!(fs[0].owner.as_deref(), Some("InProcess"));
    }

    #[test]
    fn cfg_test_masks_fns_and_mods() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\nfn probe() {}\n\
                   #[cfg(test)]\nmod tests { fn inner() {} }";
        let fs = fns(src);
        assert!(!fs[0].test_only);
        assert!(fs[1].test_only);
        assert!(fs[2].test_only, "fns in a cfg(test) mod are masked");
        assert_eq!(fs[2].module, vec!["tests".to_string()]);
    }

    #[test]
    fn use_aliases_are_recorded() {
        let ast = parse(
            "t.rs",
            "use crate::util::boom as tick;\nuse a::{B as C, Plain};\nfn f() {}",
        );
        assert_eq!(ast.aliases.get("tick").map(String::as_str), Some("boom"));
        assert_eq!(ast.aliases.get("C").map(String::as_str), Some("B"));
        assert!(!ast.aliases.contains_key("Plain"));
    }

    #[test]
    fn guard_idioms_are_recognised() {
        let guarded = fns("fn f(&mut self) { if !self.on() { return; } self.x.push(1); }");
        assert!(guarded[0].guarded);
        let let_else =
            fns("fn f(&mut self) { let Some(s) = self.s.as_mut() else { return; }; s.go(); }");
        assert!(let_else[0].guarded);
        let open = fns("fn f(&mut self) { self.x.push(1); }");
        assert!(!open[0].guarded);
        let late = fns("fn f(&mut self) { self.x.push(1); if done { return; } }");
        assert!(!late[0].guarded);
    }

    #[test]
    fn visibility_and_trait_impls_are_tracked() {
        let fs = fns("pub fn api() {}\nfn helper() {}\n\
             impl Sink { pub fn record(&self) {} fn push(&self) {} }\n\
             impl Transport for Tcp { fn send(&mut self) {} }\n\
             trait Transport { fn barrier(&mut self) {} }");
        assert!(fs[0].is_pub, "pub free fn");
        assert!(!fs[1].is_pub, "private free fn");
        assert!(fs[2].is_pub, "pub inherent method");
        assert!(!fs[3].is_pub, "private inherent method");
        assert!(fs[4].is_pub, "trait-impl method is public via the trait");
        assert_eq!(fs[4].trait_impl.as_deref(), Some("Transport"));
        assert_eq!(fs[4].owner.as_deref(), Some("Tcp"));
        assert!(fs[5].is_pub, "trait decl method");
        assert!(fs[5].trait_impl.is_none());
    }

    #[test]
    fn nested_fns_do_not_split_the_parent_extent() {
        let fs = fns("fn outer() { fn inner() { x(); } inner(); tail(); }");
        // Both are indexed, but outer's body spans the whole block.
        assert_eq!(fs.len(), 1, "nested fns belong to the parent extent");
        assert_eq!(fs[0].name, "outer");
    }

    #[test]
    fn fn_with_return_type_and_where_clause() {
        let fs = fns("fn f<T>(x: T) -> Result<(), E> where T: Clone { body(); }");
        assert_eq!(fs[0].name, "f");
        assert!(fs[0].body.is_some());
    }
}
