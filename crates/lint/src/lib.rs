//! # tempograph-lint — workspace invariant checker
//!
//! A from-scratch, dependency-free static analyzer that enforces the
//! repo-specific invariants the compiler can't:
//!
//! * **D01** — no `HashMap`/`HashSet` iteration on determinism-critical
//!   paths (use `BTreeMap` or sort explicitly);
//! * **D02** — no `Instant::now`/`SystemTime::now` outside the trace
//!   crate's `Clock` abstraction;
//! * **D03** — no unseeded randomness;
//! * **P01** — no `unwrap`/`expect`/`panic!` in the engine worker hot path
//!   (superstep loop, message decode) — typed errors only;
//! * **A01** — no `Ordering::Relaxed` on sync-critical atomics;
//! * **W01** — wire-format `decode` matches may not use `_` wildcard arms;
//! * **F01** — every crate root carries `#![forbid(unsafe_code)]`.
//!
//! Justified exceptions live in the committed `lint-allow.toml`; stale
//! entries are an error, so suppressions cannot outlive the code they
//! excuse. Run with `cargo run -p tempograph-lint` or `./ci.sh --lint`.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use allowlist::{apply, parse, AllowEntry};
pub use rules::{analyze, analyze_all_rules, Finding};

use std::path::Path;

/// Outcome of a full workspace lint run.
pub struct Report {
    /// Findings that survived the allowlist, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Allowlist entries that suppressed nothing (stale).
    pub stale: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files: usize,
}

/// Lint the workspace rooted at `root`, applying `root/lint-allow.toml`
/// when present. Errors on I/O or allowlist syntax problems.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let files = walk::workspace_files(root)?;
    let mut findings = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let rel = walk::rel_path(root, file);
        findings.extend(rules::analyze(&rel, &src));
    }
    let allow_path = root.join("lint-allow.toml");
    let entries = if allow_path.is_file() {
        let src = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        allowlist::parse(&src)?
    } else {
        Vec::new()
    };
    let (mut kept, used) = allowlist::apply(findings, &entries);
    kept.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(Report {
        findings: kept,
        stale,
        files: files.len(),
    })
}
