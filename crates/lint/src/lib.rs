//! # tempograph-lint — workspace invariant checker
//!
//! A from-scratch, dependency-free static analyzer that enforces the
//! repo-specific invariants the compiler can't:
//!
//! * **D01** — no `HashMap`/`HashSet` iteration on determinism-critical
//!   paths (use `BTreeMap` or sort explicitly);
//! * **D02** — no `Instant::now`/`SystemTime::now` outside the trace
//!   crate's `Clock` abstraction;
//! * **D03** — no unseeded randomness;
//! * **P01** — no `unwrap`/`expect`/`panic!` in the engine worker hot path
//!   (superstep loop, message decode) — typed errors only;
//! * **A01** — no `Ordering::Relaxed` on sync-critical atomics;
//! * **W01** — wire-format `decode` matches may not use `_` wildcard arms;
//! * **F01** — every crate root carries `#![forbid(unsafe_code)]`.
//!
//! Since v2 the analyzer is workspace-transitive: an item/extent parser
//! ([`parser`]) and a conservative name-resolution call graph
//! ([`callgraph`]) let P01 and D02 — plus the new **H01** (no heap
//! allocation in instrumentation code on the disabled path) — hold over
//! the entire call closure rooted at the executor superstep loop, the
//! `Transport` entry points, and the codec entry points, with findings
//! reported as root→violation call chains. A second pass, **W02**
//! ([`schema`]), locks the field names/types/order of every wire-format
//! type against golden fingerprints in `schemas/` — layout drift without
//! a version bump exits 2.
//!
//! Justified exceptions live in the committed `lint-allow.toml`; stale
//! entries are an error, so suppressions cannot outlive the code they
//! excuse. Run with `cargo run -p tempograph-lint` or `./ci.sh --lint`.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod schema;
pub mod walk;

pub use allowlist::{apply, parse, AllowEntry};
pub use rules::{analyze, analyze_all_rules, Finding};

use std::path::Path;

/// Outcome of a full workspace lint run.
pub struct Report {
    /// Findings that survived the allowlist, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Allowlist entries that suppressed nothing (stale).
    pub stale: Vec<AllowEntry>,
    /// Wire-schema drift diagnostics (W02); non-empty ⇒ exit 2.
    pub drift: Vec<String>,
    /// Number of files scanned.
    pub files: usize,
    /// Number of schema groups checked.
    pub schemas: usize,
}

/// Parse every workspace file into the item-level AST the call-graph and
/// schema passes consume.
pub fn parse_workspace(root: &Path) -> Result<Vec<parser::FileAst>, String> {
    let files = walk::workspace_files(root)?;
    let mut asts = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        asts.push(parser::parse(&walk::rel_path(root, file), &src));
    }
    Ok(asts)
}

/// Lint the workspace rooted at `root`, applying `root/lint-allow.toml`
/// when present. Errors on I/O or allowlist syntax problems.
///
/// Runs three layers: the transitive call-graph pass (P01/D02/H01 over
/// the hot-path closure, findings with root→violation chains), the
/// per-file token pass (D01/D02/D03/P01/A01/W01/F01), and the W02
/// wire-schema lock against `schemas/*.schema`. Where the transitive and
/// per-file passes flag the same (rule, path, line), the transitive
/// finding wins — it carries the call chain.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let asts = parse_workspace(root)?;
    let file_count = asts.len();

    // Schema lock first — it borrows the ASTs before the graph takes them.
    let schema_report = schema::check(root, &asts);

    // Transitive pass.
    let graph = callgraph::CallGraph::build(asts);
    let mut findings = rules::analyze_transitive(&graph);
    let seen: std::collections::BTreeSet<(&'static str, String, u32)> = findings
        .iter()
        .map(|f| (f.rule, f.path.clone(), f.line))
        .collect();

    // Per-file pass, deduplicated against the transitive findings.
    for ast in &graph.files {
        findings.extend(
            rules::analyze(&ast.path, &ast.src)
                .into_iter()
                .filter(|f| !seen.contains(&(f.rule, f.path.clone(), f.line))),
        );
    }

    let allow_path = root.join("lint-allow.toml");
    let entries = if allow_path.is_file() {
        let src = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        allowlist::parse(&src)?
    } else {
        Vec::new()
    };
    let (mut kept, used) = allowlist::apply(findings, &entries);
    kept.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(Report {
        findings: kept,
        stale,
        drift: schema_report.drift,
        files: file_count,
        schemas: schema_report.checked,
    })
}
