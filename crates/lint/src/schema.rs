//! W02 — wire-schema locking.
//!
//! The byte layouts of the TGFR frame, the message envelope/batch, worker
//! checkpoints, and ledger run records are load-bearing: PR 7/8 made them
//! durable and cross-process, so a reordered field is silent data
//! corruption for every reader built from an older commit. This pass
//! extracts field names/types/order (and enum variants with their explicit
//! discriminants) for every wire-format type into a canonical textual
//! fingerprint, compared byte-for-byte against committed golden files
//! under `schemas/`.
//!
//! Workflow: an *intentional* layout change bumps the governing version
//! constant (`FRAME_VERSION` for the frame family, gofs `FORMAT_VERSION`
//! for framed records) and regenerates goldens with
//! `tempograph-lint --write-schemas`. The writer refuses to overwrite a
//! golden whose shape changed while the recorded version value did not —
//! so drift without a version bump always exits 2, in CI and locally.

use crate::lexer;
use crate::parser::FileAst;
use std::path::Path;

/// One family of wire types sharing a golden file and a version constant.
pub struct SchemaGroup {
    /// Golden file stem: `schemas/<name>.schema`.
    pub name: &'static str,
    /// Path suffixes of the files declaring this group's types.
    pub files: &'static [&'static str],
    /// Type names to fingerprint, in golden-file order.
    pub types: &'static [&'static str],
    /// `(file suffix, const name)` of the governing version constant.
    pub version: (&'static str, &'static str),
}

/// Every locked wire format in the workspace. A group whose files are all
/// absent under the lint root is skipped, so fixture mini-workspaces lock
/// only the formats they mirror.
pub const GROUPS: &[SchemaGroup] = &[
    SchemaGroup {
        name: "wire",
        files: &["crates/engine/src/wire.rs"],
        types: &["Envelope"],
        version: ("crates/engine/src/net.rs", "FRAME_VERSION"),
    },
    SchemaGroup {
        name: "batch",
        files: &["crates/engine/src/batch.rs"],
        types: &["MessageBatch"],
        version: ("crates/engine/src/net.rs", "FRAME_VERSION"),
    },
    SchemaGroup {
        name: "net",
        files: &["crates/engine/src/net.rs"],
        types: &[
            "FrameKind",
            "Frame",
            "HelloMsg",
            "StartMsg",
            "AbortMsg",
            "TraceEventWire",
            "HistogramWire",
            "MetricsShardWire",
            "AttrRowWire",
            "TelemetryMsg",
            "WorkerStatusWire",
            "StatusReplyMsg",
        ],
        version: ("crates/engine/src/net.rs", "FRAME_VERSION"),
    },
    SchemaGroup {
        name: "sync",
        files: &["crates/engine/src/sync.rs"],
        types: &["Contribution", "Aggregate"],
        version: ("crates/engine/src/net.rs", "FRAME_VERSION"),
    },
    SchemaGroup {
        name: "checkpoint",
        files: &["crates/engine/src/checkpoint.rs"],
        types: &["SubgraphCheckpoint", "WorkerCheckpoint", "Manifest"],
        version: ("crates/gofs/src/codec.rs", "FORMAT_VERSION"),
    },
    SchemaGroup {
        name: "ledger",
        files: &["crates/ledger/src/record.rs"],
        types: &[
            "ConfigFingerprint",
            "RunAggregates",
            "WorkerTiming",
            "AttributionEntry",
            "RunRecord",
        ],
        version: ("crates/gofs/src/codec.rs", "FORMAT_VERSION"),
    },
];

/// Outcome of the schema check.
pub struct SchemaReport {
    /// Human-readable drift diagnostics; non-empty ⇒ exit 2.
    pub drift: Vec<String>,
    /// Number of groups actually checked (present in this workspace).
    pub checked: usize,
}

/// Render the current fingerprints for every group present in `files`.
/// Returns `(group name, canonical content)` pairs.
pub fn render(files: &[FileAst]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for group in GROUPS {
        let present: Vec<&FileAst> = group
            .files
            .iter()
            .filter_map(|suf| files.iter().find(|f| f.path.ends_with(suf)))
            .collect();
        if present.is_empty() {
            continue;
        }
        let mut body = String::new();
        body.push_str("# tempograph-lint wire-schema fingerprint. Do not edit by hand;\n");
        body.push_str("# regenerate with `cargo run -p tempograph-lint -- --write-schemas`\n");
        body.push_str("# after bumping the governing version constant.\n");
        body.push_str(&format!("group {}\n", group.name));
        body.push_str(&format!("{}\n", version_line(files, group)));
        for ty in group.types {
            match find_type(&present, ty) {
                Some((file, text)) => {
                    body.push_str(&format!("{} @ {}\n", text.0, file));
                    for line in &text.1 {
                        body.push_str(&format!("  {line}\n"));
                    }
                }
                None => {
                    body.push_str(&format!(
                        "type {ty} NOT FOUND — renamed or moved without updating schema groups\n"
                    ));
                }
            }
        }
        out.push((group.name.to_string(), body));
    }
    out
}

/// Compare current fingerprints against `root/schemas/*.schema`.
pub fn check(root: &Path, files: &[FileAst]) -> SchemaReport {
    let rendered = render(files);
    let mut drift = Vec::new();
    for (name, current) in &rendered {
        let golden_path = root.join("schemas").join(format!("{name}.schema"));
        match std::fs::read_to_string(&golden_path) {
            Ok(golden) => {
                if golden != *current {
                    let detail = first_diff(&golden, current);
                    drift.push(format!(
                        "schemas/{name}.schema: wire-schema drift — {detail}\n        \
                         if intentional: bump the governing version constant, then \
                         `cargo run -p tempograph-lint -- --write-schemas`"
                    ));
                }
            }
            Err(_) => drift.push(format!(
                "schemas/{name}.schema: golden file missing — run \
                 `cargo run -p tempograph-lint -- --write-schemas` and commit it"
            )),
        }
    }
    SchemaReport {
        drift,
        checked: rendered.len(),
    }
}

/// Regenerate goldens. Refuses any group whose type shapes changed while
/// the recorded version value did not — the whole point of the lock.
/// Returns the relative paths written.
pub fn write(root: &Path, files: &[FileAst]) -> Result<Vec<String>, String> {
    let rendered = render(files);
    let dir = root.join("schemas");
    let mut written = Vec::new();
    for (name, current) in &rendered {
        let golden_path = dir.join(format!("{name}.schema"));
        if let Ok(golden) = std::fs::read_to_string(&golden_path) {
            if golden == *current {
                continue; // up to date
            }
            let old_version = version_value_of(&golden);
            let new_version = version_value_of(current);
            let shape_changed = strip_version(&golden) != strip_version(current);
            if shape_changed && old_version == new_version {
                return Err(format!(
                    "schemas/{name}.schema: refusing to regenerate — type shapes changed but \
                     the governing version constant is still {}; bump it first",
                    new_version.unwrap_or_else(|| "?".into())
                ));
            }
        }
        std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        std::fs::write(&golden_path, current)
            .map_err(|e| format!("{}: {e}", golden_path.display()))?;
        written.push(format!("schemas/{name}.schema"));
    }
    Ok(written)
}

/// `version FRAME_VERSION = 1 @ crates/engine/src/net.rs`
fn version_line(files: &[FileAst], group: &SchemaGroup) -> String {
    let (suffix, konst) = group.version;
    let value = files
        .iter()
        .find(|f| f.path.ends_with(suffix))
        .and_then(|f| const_value(f, konst));
    match value {
        Some(v) => format!("version {konst} = {v} @ {suffix}"),
        None => format!("version {konst} = ? @ {suffix} (constant not found)"),
    }
}

/// Value tokens of `const NAME … = <value> ;` in a file, joined.
fn const_value(file: &FileAst, name: &str) -> Option<String> {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if toks[i].text == "const" && toks.get(i + 1).is_some_and(|t| t.text == name) {
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "=" && toks[j].text != ";" {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.text == "=") {
                let start = j + 1;
                let mut end = start;
                while end < toks.len() && toks[end].text != ";" {
                    end += 1;
                }
                return Some(join_tokens(
                    toks[start..end].iter().map(|t| t.text.as_str()),
                ));
            }
        }
    }
    None
}

fn version_value_of(content: &str) -> Option<String> {
    content
        .lines()
        .find(|l| l.starts_with("version "))
        .map(|l| l.to_string())
}

fn strip_version(content: &str) -> String {
    content
        .lines()
        .filter(|l| !l.starts_with("version ") && !l.starts_with('#'))
        .collect::<Vec<_>>()
        .join("\n")
}

fn first_diff(golden: &str, current: &str) -> String {
    for (n, (g, c)) in golden.lines().zip(current.lines()).enumerate() {
        if g != c {
            return format!("golden line {}: `{}` → now `{}`", n + 1, g, c);
        }
    }
    let (gl, cl) = (golden.lines().count(), current.lines().count());
    format!("golden has {gl} lines, current has {cl}")
}

/// Locate `struct T` / `enum T` in the group's files and fingerprint it.
/// Returns `(file path, (header line, body lines))`.
fn find_type<'a>(files: &[&'a FileAst], name: &str) -> Option<(&'a str, (String, Vec<String>))> {
    for file in files {
        let toks = &file.toks;
        let mask = lexer::test_mask(toks);
        for i in 0..toks.len() {
            if mask[i] {
                continue;
            }
            let kw = toks[i].text.as_str();
            if (kw == "struct" || kw == "enum") && toks.get(i + 1).is_some_and(|t| t.text == name) {
                let fp = if kw == "struct" {
                    fingerprint_struct(toks, i + 2, name)
                } else {
                    fingerprint_enum(toks, i + 2, name)
                };
                return Some((file.path.as_str(), fp));
            }
        }
    }
    None
}

fn texts_of(toks: &[lexer::Tok]) -> Vec<&str> {
    toks.iter().map(|t| t.text.as_str()).collect()
}

fn fingerprint_struct(toks: &[lexer::Tok], mut j: usize, name: &str) -> (String, Vec<String>) {
    let texts = texts_of(toks);
    let end = texts.len();
    if texts.get(j) == Some(&"<") {
        j = close_angle(&texts, j, end) + 1;
    }
    // `where` clauses sit between generics and the body.
    while j < end && !matches!(texts[j], "{" | "(" | ";") {
        j += 1;
    }
    match texts.get(j) {
        Some(&"{") => {
            let close = close_delim(&texts, j, "{", "}", end);
            let mut fields = Vec::new();
            let mut k = j + 1;
            while k < close {
                k = skip_field_prefix(&texts, k, close);
                if k >= close {
                    break;
                }
                if is_ident(texts[k]) && texts.get(k + 1) == Some(&":") {
                    let fname = texts[k];
                    let (ty, next) = take_until_comma(&texts, k + 2, close);
                    fields.push(format!("{fname}: {ty}"));
                    k = next;
                } else {
                    k += 1;
                }
            }
            (format!("struct {name}"), fields)
        }
        Some(&"(") => {
            let close = close_delim(&texts, j, "(", ")", end);
            let mut fields = Vec::new();
            let mut k = j + 1;
            let mut idx = 0usize;
            while k < close {
                k = skip_field_prefix(&texts, k, close);
                if k >= close {
                    break;
                }
                let (ty, next) = take_until_comma(&texts, k, close);
                if !ty.is_empty() {
                    fields.push(format!("{idx}: {ty}"));
                    idx += 1;
                }
                k = next;
            }
            (format!("struct {name} (tuple)"), fields)
        }
        _ => (format!("struct {name} (unit)"), Vec::new()),
    }
}

fn fingerprint_enum(toks: &[lexer::Tok], mut j: usize, name: &str) -> (String, Vec<String>) {
    let texts = texts_of(toks);
    let end = texts.len();
    if texts.get(j) == Some(&"<") {
        j = close_angle(&texts, j, end) + 1;
    }
    while j < end && texts[j] != "{" {
        j += 1;
    }
    let close = close_delim(&texts, j, "{", "}", end);
    let mut variants = Vec::new();
    let mut k = j + 1;
    while k < close {
        k = skip_field_prefix(&texts, k, close);
        if k >= close || !is_ident(texts[k]) {
            k += 1;
            continue;
        }
        let vname = texts[k];
        let mut line = vname.to_string();
        k += 1;
        match texts.get(k) {
            Some(&"(") => {
                let c = close_delim(&texts, k, "(", ")", close);
                line.push_str(&format!(
                    "({})",
                    join_tokens(texts[k + 1..c].iter().copied())
                ));
                k = c + 1;
            }
            Some(&"{") => {
                let c = close_delim(&texts, k, "{", "}", close);
                line.push_str(&format!(
                    " {{ {} }}",
                    join_tokens(texts[k + 1..c].iter().copied())
                ));
                k = c + 1;
            }
            _ => {}
        }
        if texts.get(k) == Some(&"=") {
            let (v, next) = take_until_comma(&texts, k + 1, close);
            line.push_str(&format!(" = {v}"));
            k = next;
            variants.push(line);
            continue;
        }
        // Skip to the separating comma.
        while k < close && texts[k] != "," {
            k += 1;
        }
        k += 1;
        variants.push(line);
    }
    (format!("enum {name}"), variants)
}

/// Skip visibility and attributes before a field/variant.
fn skip_field_prefix(texts: &[&str], mut k: usize, end: usize) -> usize {
    loop {
        match texts.get(k.min(end)) {
            Some(&"pub") => {
                k += 1;
                if texts.get(k) == Some(&"(") {
                    k = close_delim(texts, k, "(", ")", end) + 1;
                }
            }
            Some(&"#") if texts.get(k + 1) == Some(&"[") => {
                k = close_delim(texts, k + 1, "[", "]", end) + 1;
            }
            Some(&",") => k += 1,
            _ => return k,
        }
    }
}

/// Collect tokens up to a depth-0 comma (or `end`), returning the joined
/// text and the index past the comma.
fn take_until_comma(texts: &[&str], start: usize, end: usize) -> (String, usize) {
    let mut depth = 0i32;
    let mut k = start;
    while k < end {
        match texts[k] {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            "," if depth == 0 => break,
            _ => {}
        }
        k += 1;
    }
    (join_tokens(texts[start..k.min(end)].iter().copied()), k + 1)
}

/// Join tokens compactly: a space only between two word-like tokens.
fn join_tokens<'a>(toks: impl Iterator<Item = &'a str>) -> String {
    let mut out = String::new();
    let mut prev_word = false;
    for t in toks {
        let word = is_ident(t) || t.chars().next().is_some_and(|c| c.is_ascii_digit());
        if word && prev_word {
            out.push(' ');
        }
        out.push_str(t);
        prev_word = word;
    }
    out
}

fn close_delim(texts: &[&str], i: usize, open: &str, close: &str, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        if texts[j] == open {
            depth += 1;
        } else if texts[j] == close {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end.saturating_sub(1)
}

fn close_angle(texts: &[&str], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        match texts[j] {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            "(" | "{" | ";" => return j,
            _ => {}
        }
        j += 1;
    }
    end.saturating_sub(1)
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn fp(src: &str, name: &str) -> (String, Vec<String>) {
        let ast = parser::parse("x.rs", src);
        let files = [&ast];
        find_type(&files, name).expect("type present").1
    }

    #[test]
    fn struct_fields_in_declaration_order() {
        let (hdr, fields) = fp(
            "#[derive(Debug)]\npub struct Envelope<M: WireMsg> {\n\
               pub from: SubgraphId,\n pub to: SubgraphId,\n pub seq: u32,\n pub payload: M,\n}",
            "Envelope",
        );
        assert_eq!(hdr, "struct Envelope");
        assert_eq!(
            fields,
            vec![
                "from: SubgraphId",
                "to: SubgraphId",
                "seq: u32",
                "payload: M"
            ]
        );
    }

    #[test]
    fn generic_field_types_are_canonicalised() {
        let (_, fields) = fp(
            "pub struct R { pub timings: Vec<WorkerTiming>, pub extra: Option<Box<u64>> }",
            "R",
        );
        assert_eq!(
            fields,
            vec!["timings: Vec<WorkerTiming>", "extra: Option<Box<u64>>"]
        );
    }

    #[test]
    fn enum_variants_keep_explicit_discriminants() {
        let (hdr, variants) = fp(
            "pub enum FrameKind { Hello = 1, Data(u32) = 2, Done { code: u8 } = 3, Plain }",
            "FrameKind",
        );
        assert_eq!(hdr, "enum FrameKind");
        assert_eq!(
            variants,
            vec![
                "Hello = 1",
                "Data(u32) = 2",
                "Done { code:u8 } = 3",
                "Plain"
            ]
        );
    }

    #[test]
    fn reordering_fields_changes_the_fingerprint() {
        let a = fp("struct S { a: u32, b: u64 }", "S");
        let b = fp("struct S { b: u64, a: u32 }", "S");
        assert_ne!(a, b);
    }

    #[test]
    fn renaming_a_type_reports_not_found_in_render() {
        let ast = parser::parse(
            "crates/engine/src/wire.rs",
            "pub struct Envelop2 { a: u32 }",
        );
        let rendered = render(&[ast]);
        let wire = &rendered.iter().find(|(n, _)| n == "wire").unwrap().1;
        assert!(wire.contains("type Envelope NOT FOUND"), "{wire}");
    }

    #[test]
    fn absent_groups_are_skipped() {
        let ast = parser::parse(
            "crates/engine/src/wire.rs",
            "pub struct Envelope { a: u32 }",
        );
        let rendered = render(&[ast]);
        assert_eq!(rendered.len(), 1, "only the wire group is present");
    }
}
