//! `tempograph-lint` — lint the workspace (or explicit files).
//!
//! ```text
//! tempograph-lint                 # lint the whole workspace
//! tempograph-lint --root DIR      # lint a different workspace root
//! tempograph-lint --write-schemas # regenerate schemas/*.schema goldens
//!                                 # (refuses without a version bump)
//! tempograph-lint path/to/file.rs # lint specific files (fixtures get
//!                                 # every rule applied)
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` configuration error (bad
//! allowlist syntax, stale allowlist entry, wire-schema drift, I/O
//! failure).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use tempograph_lint::{lint_workspace, parse_workspace, rules, schema, Finding};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut write_schemas = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return config_error("--root needs a directory"),
            },
            "--write-schemas" => write_schemas = true,
            "--help" | "-h" => {
                println!("usage: tempograph-lint [--root DIR] [--write-schemas] [FILES…]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return config_error(&format!("unknown flag `{other}`"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    if !files.is_empty() {
        return lint_files(&files);
    }

    // Default root: the workspace containing this crate.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    if write_schemas {
        let asts = match parse_workspace(&root) {
            Ok(a) => a,
            Err(e) => return config_error(&e),
        };
        return match schema::write(&root, &asts) {
            Ok(written) if written.is_empty() => {
                println!("tempograph-lint: schema goldens already up to date");
                ExitCode::SUCCESS
            }
            Ok(written) => {
                for w in &written {
                    println!("wrote {w}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => config_error(&e),
        };
    }

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => return config_error(&e),
    };
    for f in &report.findings {
        print_finding(f);
    }
    for e in &report.stale {
        eprintln!(
            "error: stale allowlist entry lint-allow.toml:{} ({} {}) — it suppresses nothing; \
             remove it",
            e.line, e.rule, e.path
        );
    }
    for d in &report.drift {
        eprintln!("error: [W02] {d}");
    }
    if !report.stale.is_empty() || !report.drift.is_empty() {
        return ExitCode::from(2);
    }
    if report.findings.is_empty() {
        println!(
            "tempograph-lint: {} files clean, {} wire schemas locked",
            report.files, report.schemas
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tempograph-lint: {} finding(s) in {} files",
            report.findings.len(),
            report.files
        );
        ExitCode::FAILURE
    }
}

/// Explicit file mode: no allowlist, and fixture files get every rule.
fn lint_files(files: &[PathBuf]) -> ExitCode {
    let mut findings = Vec::new();
    for file in files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => return config_error(&format!("{}: {e}", file.display())),
        };
        let rel = file.to_string_lossy().replace('\\', "/");
        if rel.contains("fixtures") {
            findings.extend(rules::analyze_all_rules(&rel, &src));
        } else {
            findings.extend(rules::analyze(&rel, &src));
        }
    }
    for f in &findings {
        print_finding(f);
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_finding(f: &Finding) {
    println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.msg);
    if !f.line_text.is_empty() {
        println!("    {}", f.line_text);
    }
}

fn config_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}
