//! The `lint-allow.toml` allowlist: committed, justified suppressions.
//!
//! The format is a strict subset of TOML — `[[allow]]` tables of
//! `key = "value"` pairs — parsed by hand so the linter stays
//! dependency-free:
//!
//! ```toml
//! [[allow]]
//! rule = "P01"
//! path = "crates/engine/src/executor.rs"
//! contains = "injected_panic_message"
//! reason = "deterministic fault injection for recovery tests"
//! ```
//!
//! An entry suppresses a finding when the rule matches, the finding's path
//! ends with `path`, and (if given) `contains` is a substring of the
//! offending source line. Every entry must carry a non-empty `reason`, and
//! an entry that suppresses nothing is **stale** — the binary reports it
//! and exits nonzero, so the allowlist can only shrink alongside the code
//! it excuses.

use crate::rules::Finding;

/// One parsed `[[allow]]` entry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    /// Substring of the offending source line; empty = match any line.
    pub contains: String,
    pub reason: String,
    /// 1-based line of the `[[allow]]` header (for stale-entry reports).
    pub line: u32,
}

impl AllowEntry {
    fn matches(&self, f: &Finding) -> bool {
        f.rule == self.rule
            && f.path.ends_with(&self.path)
            && (self.contains.is_empty() || f.line_text.contains(&self.contains))
    }
}

/// Parse the allowlist. Errors (with line numbers) on anything outside the
/// supported subset, on unknown keys, and on entries without a reason.
pub fn parse(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    for (n, raw) in src.lines().enumerate() {
        let n = n as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(AllowEntry {
                line: n,
                ..AllowEntry::default()
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint-allow.toml:{n}: expected `[[allow]]` or `key = \"value\"`"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("lint-allow.toml:{n}: value must be a double-quoted string"))?;
        let Some(entry) = entries.last_mut() else {
            return Err(format!(
                "lint-allow.toml:{n}: `{key}` outside an [[allow]] table"
            ));
        };
        match key {
            "rule" => entry.rule = value.to_string(),
            "path" => entry.path = value.to_string(),
            "contains" => entry.contains = value.to_string(),
            "reason" => entry.reason = value.to_string(),
            other => return Err(format!("lint-allow.toml:{n}: unknown key `{other}`")),
        }
    }
    for e in &entries {
        if e.rule.is_empty() || e.path.is_empty() {
            return Err(format!(
                "lint-allow.toml:{}: entry needs both `rule` and `path`",
                e.line
            ));
        }
        if e.reason.is_empty() {
            return Err(format!(
                "lint-allow.toml:{}: entry needs a non-empty `reason`",
                e.line
            ));
        }
    }
    Ok(entries)
}

/// Split findings into kept (unsuppressed) ones, and report which entries
/// matched at least one finding. `used[i]` corresponds to `entries[i]`.
pub fn apply(findings: Vec<Finding>, entries: &[AllowEntry]) -> (Vec<Finding>, Vec<bool>) {
    let mut used = vec![false; entries.len()];
    let kept = findings
        .into_iter()
        .filter(|f| {
            let mut suppressed = false;
            for (i, e) in entries.iter().enumerate() {
                if e.matches(f) {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    (kept, used)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line_text: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 10,
            msg: String::new(),
            line_text: line_text.to_string(),
        }
    }

    const SAMPLE: &str = r#"
# comment
[[allow]]
rule = "P01"
path = "crates/engine/src/executor.rs"
contains = "injected_panic_message"
reason = "fault injection"
"#;

    #[test]
    fn parses_and_suppresses() {
        let entries = parse(SAMPLE).unwrap();
        assert_eq!(entries.len(), 1);
        let hit = finding(
            "P01",
            "crates/engine/src/executor.rs",
            "panic!(\"{}\", injected_panic_message(p, t, ss));",
        );
        let miss = finding("P01", "crates/engine/src/executor.rs", "x.unwrap();");
        let (kept, used) = apply(vec![hit, miss.clone()], &entries);
        assert_eq!(kept, vec![miss]);
        assert_eq!(used, vec![true]);
    }

    #[test]
    fn stale_entry_is_reported_unused() {
        let entries = parse(SAMPLE).unwrap();
        let unrelated = finding("D01", "crates/gofs/src/loader.rs", "for x in &m {");
        let (kept, used) = apply(vec![unrelated.clone()], &entries);
        assert_eq!(kept, vec![unrelated]);
        assert_eq!(used, vec![false], "entry matched nothing — stale");
    }

    #[test]
    fn reason_is_mandatory() {
        let src = "[[allow]]\nrule = \"A01\"\npath = \"x.rs\"\n";
        assert!(parse(src).unwrap_err().contains("reason"));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let src = "[[allow]]\nrule = \"A01\"\npath = \"x.rs\"\nreason = \"r\"\nwhatever = \"y\"\n";
        assert!(parse(src).unwrap_err().contains("unknown key"));
    }
}
