//! The lint rules.
//!
//! | rule | invariant |
//! |------|-----------|
//! | D01  | no `HashMap`/`HashSet` iteration on determinism-critical paths without an explicit sort |
//! | D02  | no `Instant::now`/`SystemTime::now` outside the trace crate's `Clock` abstraction |
//! | D03  | no unseeded randomness (`thread_rng`, `from_entropy`, `OsRng`, `rand::random`) |
//! | P01  | no `unwrap`/`expect`/`panic!` in the engine worker hot path (superstep loop, message decode) |
//! | A01  | no `Ordering::Relaxed` on sync-critical atomics |
//! | W01  | wire-format `decode` matches may not use `_` wildcard arms |
//! | F01  | every crate root carries `#![forbid(unsafe_code)]` |
//!
//! Rules run over the token stream from [`crate::lexer`], with
//! `#[cfg(test)]` items masked out. Scoping is path-based (see
//! [`analyze`]); fixture self-tests use [`analyze_all_rules`], which treats
//! the whole file as in scope for every rule.
//!
//! On top of the per-file pass, [`analyze_transitive`] re-expresses P01 and
//! D02 — and adds **H01** (no heap allocation in instrumentation code on
//! the disabled path) — as reachability properties over the workspace call
//! graph, rooted at the executor superstep loop, the `Transport`
//! entry points, and the wire/frame/checkpoint/ledger codecs. Transitive
//! findings carry a root→violation call chain in their message.

use crate::callgraph::{CallGraph, FnId};
use crate::lexer::{self, Tok};
use crate::parser::FnItem;

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID, e.g. `"D01"`.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of the violation.
    pub msg: String,
    /// The source line text (allowlist `contains` matches against this).
    pub line_text: String,
}

/// Hash collection type names whose iteration order is nondeterministic.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
/// Methods that observe a collection's iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];
/// Calls that impose a deterministic order on iterated elements: an
/// iteration immediately followed (within a short window) by one of these
/// is considered sorted and therefore fine.
const SORT_CALLS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];
/// Order-insensitive reductions: consuming an unordered iterator with one
/// of these is deterministic regardless of visit order.
const ORDER_FREE: &[&str] = &["count", "sum", "any", "all", "len", "min", "max"];

/// Hot-path function names in the executor for rule P01: the worker's
/// timestep/superstep loop, compute phase, and the message decode/route
/// path. Checkpoint I/O and driver-side assembly are deliberately outside —
/// they may fail loudly.
const HOT_FNS: &[&str] = &[
    "run_timestep_loop",
    "run_bsp",
    "compute_phase_parallel",
    "run_merge",
    "route",
    "drain",
    "deliver_staged",
];

/// Files whose `fn decode` bodies are wire/storage codecs (rule W01).
const CODEC_FILES: &[&str] = &[
    "crates/engine/src/wire.rs",
    "crates/engine/src/batch.rs",
    "crates/engine/src/checkpoint.rs",
    "crates/engine/src/net.rs",
    "crates/engine/src/transport.rs",
    "crates/gofs/src/codec.rs",
    "crates/gofs/src/slice.rs",
    "crates/gofs/src/store.rs",
    "crates/ledger/src/record.rs",
    "crates/algos/src/community.rs",
    "crates/algos/src/tdsp.rs",
    "crates/algos/src/meme.rs",
];

/// What parts of a file each rule applies to.
struct Scope {
    /// D01/D03/A01 apply (everywhere except fixtures in normal mode).
    core: bool,
    /// D02 applies (everywhere outside `crates/trace/src`).
    d02: bool,
    /// P01: `None` = not in scope, `Some(None)` = whole file,
    /// `Some(Some(fns))` = only those function bodies.
    p01: Option<Option<&'static [&'static str]>>,
    /// W01 applies to `fn decode` bodies in this file.
    w01: bool,
    /// F01 applies (crate roots).
    f01: bool,
}

fn scope_for(path: &str) -> Scope {
    let p01 = if path.ends_with("crates/engine/src/wire.rs")
        || path.ends_with("crates/engine/src/batch.rs")
    {
        Some(None)
    } else if path.ends_with("crates/engine/src/executor.rs") {
        Some(Some(HOT_FNS))
    } else {
        None
    };
    Scope {
        core: true,
        d02: !path.contains("crates/trace/src"),
        p01,
        w01: CODEC_FILES.iter().any(|f| path.ends_with(f)),
        f01: path.ends_with("src/lib.rs"),
    }
}

fn scope_all() -> Scope {
    Scope {
        core: true,
        d02: true,
        p01: Some(None),
        w01: true,
        f01: true,
    }
}

/// Analyze one file with path-based rule scoping (the workspace walk).
pub fn analyze(path: &str, src: &str) -> Vec<Finding> {
    run(path, src, scope_for(path))
}

/// Analyze with every rule in scope over the whole file (fixture corpus
/// and rule self-tests).
pub fn analyze_all_rules(path: &str, src: &str) -> Vec<Finding> {
    run(path, src, scope_all())
}

fn run(path: &str, src: &str, scope: Scope) -> Vec<Finding> {
    let toks = lexer::lex(src);
    let mask = lexer::test_mask(&toks);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let push = |rule: &'static str, line: u32, msg: String, out: &mut Vec<Finding>| {
        out.push(Finding {
            rule,
            path: path.to_string(),
            line,
            msg,
            line_text: lines
                .get(line.saturating_sub(1) as usize)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
    };

    if scope.core {
        d01(&toks, &texts, &mask, &mut out, path, &lines);
        d03(&toks, &texts, &mask, &mut out, path, &lines);
        a01(&toks, &texts, &mask, &mut out, path, &lines);
    }
    if scope.d02 {
        for i in 0..texts.len() {
            if mask[i] {
                continue;
            }
            if (texts[i] == "Instant" || texts[i] == "SystemTime")
                && texts.get(i + 1) == Some(&"::")
                && texts.get(i + 2) == Some(&"now")
                && texts.get(i + 3) == Some(&"(")
            {
                push(
                    "D02",
                    toks[i].line,
                    format!(
                        "`{}::now()` outside the trace crate — use `tempograph_trace::Clock`",
                        texts[i]
                    ),
                    &mut out,
                );
            }
        }
    }
    if let Some(fns) = scope.p01 {
        let ranges: Vec<(usize, usize)> = match fns {
            None => vec![(0, toks.len())],
            Some(names) => names
                .iter()
                .flat_map(|n| lexer::fn_extents(&toks, n))
                .collect(),
        };
        for (s, e) in ranges {
            for i in s..e.min(texts.len()) {
                if mask[i] {
                    continue;
                }
                let hit = if (texts[i] == "unwrap" || texts[i] == "expect")
                    && i > 0
                    && texts[i - 1] == "."
                    && texts.get(i + 1) == Some(&"(")
                {
                    Some(format!("`.{}()` in the engine worker hot path", texts[i]))
                } else if (texts[i] == "panic" || texts[i] == "todo" || texts[i] == "unimplemented")
                    && texts.get(i + 1) == Some(&"!")
                {
                    Some(format!("`{}!` in the engine worker hot path", texts[i]))
                } else {
                    None
                };
                if let Some(what) = hit {
                    push(
                        "P01",
                        toks[i].line,
                        format!("{what} — return a typed `EngineError` instead"),
                        &mut out,
                    );
                }
            }
        }
    }
    if scope.w01 {
        for (s, e) in lexer::fn_extents(&toks, "decode") {
            for i in s..e.min(texts.len()) {
                if mask[i] {
                    continue;
                }
                if texts[i] == "_" && texts.get(i + 1) == Some(&"=>") {
                    push(
                        "W01",
                        toks[i].line,
                        "wildcard `_` arm in a wire-format `decode` match — bind the tag and \
                         return a typed error so new variants cannot be silently swallowed"
                            .to_string(),
                        &mut out,
                    );
                }
            }
        }
    }
    if scope.f01 {
        let has = texts.windows(6).any(|w| {
            w[0] == "!" && w[1] == "[" && w[2] == "forbid" && w[3] == "(" && w[4] == "unsafe_code"
        });
        if !has {
            push(
                "F01",
                1,
                "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
                &mut out,
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Transitive reachability rules (workspace call-graph pass)
// ---------------------------------------------------------------------------

/// Executor fns that root the hot-path closure: the timestep/superstep
/// drivers. Everything they transitively call runs once per superstep per
/// subgraph and must be panic-free, clock-free, and (for instrumentation)
/// allocation-free when disabled.
pub const HOT_ROOTS_EXECUTOR: &[&str] = &[
    "run_timestep_loop",
    "run_bsp",
    "run_merge",
    "run_temporally_parallel",
];

/// `Transport` entry points — every impl (and the trait's default
/// `barrier`) roots its own closure. `telemetry` is the per-round
/// observability flush: it runs on the barrier path whenever any
/// instrumentation is armed, so its closure obeys the same rules.
pub const HOT_ROOTS_TRANSPORT: &[&str] = &["send", "exchange", "arrive", "barrier", "telemetry"];

/// Codec entry-point names: any fn with one of these names in a
/// [`CODEC_FILES`] file roots the wire/frame/checkpoint/ledger closure.
pub const HOT_ROOTS_CODEC: &[&str] = &[
    "encode",
    "decode",
    "encode_into",
    "decode_from",
    "read_frame",
    "write_frame",
];

/// Files where slice/array indexing panics on wire- or state-derived
/// indices (the P01 indexing sub-check). The executor is deliberately NOT
/// here: its dense per-partition arrays are sized once at init and indexed
/// by partition/subgraph ids that are structurally in-range — flagging
/// every `self.inbox[i]` would bury the signal. gofs columnar reads are
/// directory-vetted at decode (PR 6) and carry their own bounds checks.
const INDEX_CHECK_FILES: &[&str] = &[
    "crates/engine/src/wire.rs",
    "crates/engine/src/batch.rs",
    "crates/engine/src/net.rs",
    "crates/engine/src/transport.rs",
    "crates/engine/src/checkpoint.rs",
    "crates/engine/src/sync.rs",
    "crates/ledger/src/record.rs",
];

/// Instrumentation crates rule H01 polices: code here that is reachable
/// from a hot root *without an intervening disabled-guard* must not
/// allocate — when tracing/metrics/the ledger are off, the hot path must
/// be zero-alloc (backed dynamically by the counting-allocator smoke
/// tests; H01 is the static side of that contract).
const H01_FILES: &[&str] = &[
    "crates/trace/src/",
    "crates/metrics/src/",
    "crates/ledger/src/",
];

/// Allocating calls/macros H01 looks for (token-pattern, rendered name).
const ALLOC_PATTERNS: &[(&[&str], &str)] = &[
    (&["Box", "::", "new", "("], "Box::new"),
    (&["String", "::", "from", "("], "String::from"),
    (&["format", "!"], "format!"),
    (&["vec", "!"], "vec!"),
    (&[".", "to_string", "("], ".to_string()"),
    (&[".", "to_owned", "("], ".to_owned()"),
    (&[".", "to_vec", "("], ".to_vec()"),
    (&[".", "push", "("], ".push()"),
    (&[".", "extend", "("], ".extend()"),
    (&[".", "reserve", "("], ".reserve()"),
    (&["::", "with_capacity", "("], "::with_capacity()"),
];

/// Is this fn outside the transitive analysis boundary? `crates/algos`
/// holds `SubgraphProgram` user code — its compute panics are recovered by
/// the checkpoint/retry machinery, so traversal stops there, EXCEPT for
/// codec entry points (algo message types cross the wire and their
/// decode runs on the worker hot path).
fn outside_boundary(path: &str, f: &FnItem) -> bool {
    path.contains("crates/algos/") && !HOT_ROOTS_CODEC.contains(&f.name.as_str())
}

/// The superstep-loop root set: executor drivers plus `Transport` entry
/// points. This is the per-superstep steady-state path — also the root
/// set for H01 (allocations here happen every superstep).
pub fn loop_roots(graph: &CallGraph) -> Vec<FnId> {
    let mut roots = graph.roots_in("crates/engine/src/executor.rs", |f| {
        HOT_ROOTS_EXECUTOR.contains(&f.name.as_str())
    });
    roots.extend(graph.roots_in("crates/engine/src/transport.rs", |f| {
        HOT_ROOTS_TRANSPORT.contains(&f.name.as_str())
    }));
    roots.sort_unstable();
    roots.dedup();
    roots
}

/// Collect the full hot-path root set for a workspace call graph: the
/// superstep loop plus every codec entry point. P01/D02 run over this
/// closure; H01 runs over [`loop_roots`] only, because decode
/// reconstructs owned records — it is inherently allocating and runs in
/// tooling and crash recovery, not the per-superstep loop.
pub fn hot_roots(graph: &CallGraph) -> Vec<FnId> {
    let mut roots = loop_roots(graph);
    for file in CODEC_FILES {
        roots.extend(graph.roots_in(file, |f| HOT_ROOTS_CODEC.contains(&f.name.as_str())));
    }
    roots.sort_unstable();
    roots.dedup();
    roots
}

/// Run the transitive P01/D02/H01 passes over a workspace call graph.
/// Findings carry the root→violation chain in `msg`.
pub fn analyze_transitive(graph: &CallGraph) -> Vec<Finding> {
    let roots = hot_roots(graph);
    let mut out = Vec::new();

    // P01 + D02 share one closure: full traversal, stopping only at the
    // algos program boundary.
    let reach = graph.closure(&roots, |id, f| outside_boundary(&graph.files[id.0].path, f));
    for (&id, parent) in &reach {
        let file = &graph.files[id.0];
        let f = &file.fns[id.1];
        if outside_boundary(&file.path, f) && parent.is_some() {
            // Boundary fn reached from inside the closure (not a root):
            // traversal stopped here and its body is out of scope.
            continue;
        }
        let Some((bs, be)) = f.body else { continue };
        let chain = graph.chain(&reach, id);
        scan_p01_body(file, bs, be, &chain, &mut out);
        scan_d02_body(file, bs, be, &chain, &mut out);
    }

    // H01: superstep-loop roots only, and guarded fns are boundaries —
    // the guard proves everything past it runs only when the subsystem
    // is enabled.
    let h01_roots = loop_roots(graph);
    let h01_reach = graph.closure(&h01_roots, |id, f| {
        f.guarded || outside_boundary(&graph.files[id.0].path, f)
    });
    for &id in h01_reach.keys() {
        let file = &graph.files[id.0];
        let f = &file.fns[id.1];
        if f.guarded || outside_boundary(&file.path, f) {
            continue;
        }
        if !H01_FILES.iter().any(|p| file.path.contains(p)) {
            continue;
        }
        let Some((bs, be)) = f.body else { continue };
        let chain = graph.chain(&h01_reach, id);
        scan_h01_body(file, bs, be, &chain, &mut out);
    }

    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out.dedup_by(|a, b| (a.rule, &a.path, a.line) == (b.rule, &b.path, b.line));
    out
}

fn transitive_finding(
    rule: &'static str,
    file: &crate::parser::FileAst,
    line: u32,
    msg: String,
) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line,
        msg,
        line_text: file
            .src
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
    }
}

fn scan_p01_body(
    file: &crate::parser::FileAst,
    bs: usize,
    be: usize,
    chain: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let check_index = INDEX_CHECK_FILES.iter().any(|p| file.path.ends_with(p));
    let mut i = bs;
    while i < be.min(toks.len()) {
        let t = toks[i].text.as_str();
        let next = |k: usize| toks.get(i + k).map(|t| t.text.as_str());
        let prev = |k: usize| i.checked_sub(k).map(|j| toks[j].text.as_str());
        let hit =
            if (t == "unwrap" || t == "expect") && prev(1) == Some(".") && next(1) == Some("(") {
                Some(format!("`.{t}()`"))
            } else if (t == "panic" || t == "todo" || t == "unimplemented") && next(1) == Some("!")
            {
                Some(format!("`{t}!`"))
            } else if check_index && t == "[" && can_panic_index(toks, i, be) {
                Some("slice indexing on a non-literal index".to_string())
            } else {
                None
            };
        if let Some(what) = hit {
            out.push(transitive_finding(
                "P01",
                file,
                toks[i].line,
                format!(
                    "{what} reachable from a hot-path root — return a typed error instead\n        \
                     via {chain}"
                ),
            ));
            // One finding per line per cause is enough; skip to line end.
            let line = toks[i].line;
            while i < be.min(toks.len()) && toks[i].line == line {
                i += 1;
            }
            continue;
        }
        i += 1;
    }
}

/// Is `toks[i] == "["` an indexing expression that can panic? True when
/// the bracket follows a value (ident, `)`, or `]`) and its contents name
/// at least one identifier — `buf[pos]`, `&frame[a..b]`. Literal-only
/// indices (`hdr[0]`) address fixed layouts and are exempt, as are
/// attribute/array-type/slice-pattern brackets (no value before them).
fn can_panic_index(toks: &[Tok], i: usize, be: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|j| toks[j].text.as_str()) else {
        return false;
    };
    let value_before = prev == ")"
        || prev == "]"
        || (prev
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
            && !matches!(
                prev,
                "mut" | "ref" | "return" | "in" | "as" | "dyn" | "else" | "match"
            ));
    if !value_before {
        return false;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < be.min(toks.len()) {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            s if depth >= 1
                && s.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
                && !matches!(s, "as" | "usize" | "u8" | "u16" | "u32" | "u64" | "mut") =>
            {
                return true;
            }
            _ => {}
        }
        j += 1;
    }
    false
}

fn scan_d02_body(
    file: &crate::parser::FileAst,
    bs: usize,
    be: usize,
    chain: &str,
    out: &mut Vec<Finding>,
) {
    if file.path.contains("crates/trace/src") {
        return; // the Clock abstraction itself
    }
    let toks = &file.toks;
    for i in bs..be.min(toks.len()) {
        let t = toks[i].text.as_str();
        if (t == "Instant" || t == "SystemTime")
            && toks.get(i + 1).is_some_and(|t| t.text == "::")
            && toks.get(i + 2).is_some_and(|t| t.text == "now")
            && toks.get(i + 3).is_some_and(|t| t.text == "(")
        {
            out.push(transitive_finding(
                "D02",
                file,
                toks[i].line,
                format!(
                    "`{t}::now()` reachable from a hot-path root — use `tempograph_trace::Clock`\n        \
                     via {chain}"
                ),
            ));
        }
    }
}

fn scan_h01_body(
    file: &crate::parser::FileAst,
    bs: usize,
    be: usize,
    chain: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &file.toks;
    let mut i = bs;
    'outer: while i < be.min(toks.len()) {
        for (pat, name) in ALLOC_PATTERNS {
            if pat
                .iter()
                .enumerate()
                .all(|(k, want)| toks.get(i + k).is_some_and(|t| t.text == *want))
            {
                out.push(transitive_finding(
                    "H01",
                    file,
                    toks[i].line,
                    format!(
                        "`{name}` allocates in instrumentation code reachable from a hot-path \
                         root with no disabled-guard — hoist behind `if !self.on() {{ return }}` \
                         or preallocate\n        via {chain}"
                    ),
                ));
                let line = toks[i].line;
                while i < be.min(toks.len()) && toks[i].line == line {
                    i += 1;
                }
                continue 'outer;
            }
        }
        i += 1;
    }
}

/// Collect identifiers bound with a hash-collection type in this file:
/// `x: HashMap<…>` (lets, fields, params) and `x = HashMap::new()`-style
/// constructor bindings, with optional `std::collections::` paths.
fn hash_idents(texts: &[&str], mask: &[bool]) -> Vec<String> {
    let is_ident = |s: &str| {
        s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
            && s != "_"
    };
    let mut names: Vec<String> = Vec::new();
    for i in 0..texts.len() {
        if mask[i] || !HASH_TYPES.contains(&texts[i]) {
            continue;
        }
        // Walk back over a `seg::seg::` path prefix to the head of the type
        // expression.
        let mut j = i;
        while j >= 2 && texts[j - 1] == "::" && is_ident(texts[j - 2]) {
            j -= 2;
        }
        // `name : [&|mut]* Type` — let bindings, struct fields, fn params.
        let mut k = j;
        while k >= 1 && (texts[k - 1] == "&" || texts[k - 1] == "mut") {
            k -= 1;
        }
        if k >= 2 && texts[k - 1] == ":" && is_ident(texts[k - 2]) {
            names.push(texts[k - 2].to_string());
            continue;
        }
        // `name = Type::new()` / `with_capacity` / `default`.
        if texts.get(i + 1) == Some(&"::")
            && matches!(
                texts.get(i + 2),
                Some(&"new") | Some(&"with_capacity") | Some(&"default")
            )
            && j >= 2
            && texts[j - 1] == "="
            && is_ident(texts[j - 2])
        {
            names.push(texts[j - 2].to_string());
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

fn d01(
    toks: &[Tok],
    texts: &[&str],
    mask: &[bool],
    out: &mut Vec<Finding>,
    path: &str,
    lines: &[&str],
) {
    let tracked = hash_idents(texts, mask);
    if tracked.is_empty() {
        return;
    }
    let tracked = |name: &str| tracked.iter().any(|t| t == name);
    // An iteration is fine if a sort or an order-free reduction appears
    // shortly after — "collect then sort" is the sanctioned idiom.
    let escapes = |from: usize| {
        texts[from..texts.len().min(from + 48)]
            .iter()
            .any(|t| SORT_CALLS.contains(t) || ORDER_FREE.contains(t))
    };
    let mut hit = |i: usize, what: String| {
        out.push(Finding {
            rule: "D01",
            path: path.to_string(),
            line: toks[i].line,
            msg: format!(
                "{what} iterates a hash collection on a determinism-critical path — \
                 use BTreeMap/BTreeSet or sort explicitly"
            ),
            line_text: lines
                .get(toks[i].line.saturating_sub(1) as usize)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
    };
    for i in 0..texts.len() {
        if mask[i] {
            continue;
        }
        // `name.iter()` / `.keys()` / `.drain()` / …
        if texts[i] == "."
            && i > 0
            && tracked(texts[i - 1])
            && texts.get(i + 1).is_some_and(|m| ITER_METHODS.contains(m))
            && texts.get(i + 2) == Some(&"(")
            && !escapes(i + 3)
        {
            // Anchor on the receiver ident: multi-line method chains put
            // the `.` on its own line, which reads poorly in reports.
            hit(i - 1, format!("`{}.{}()`", texts[i - 1], texts[i + 1]));
        }
        // `for pat in [&][mut] name {`
        if texts[i] == "in" {
            let mut j = i + 1;
            while matches!(texts.get(j), Some(&"&") | Some(&"mut")) {
                j += 1;
            }
            if texts.get(j).is_some_and(|n| tracked(n)) && texts.get(j + 1) == Some(&"{") {
                hit(i, format!("`for … in {}`", texts[j]));
            }
        }
    }
}

fn d03(
    toks: &[Tok],
    texts: &[&str],
    mask: &[bool],
    out: &mut Vec<Finding>,
    path: &str,
    lines: &[&str],
) {
    for i in 0..texts.len() {
        if mask[i] {
            continue;
        }
        let what = if matches!(
            texts[i],
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom"
        ) {
            Some(texts[i])
        } else if texts[i] == "random" && i >= 2 && texts[i - 1] == "::" && texts[i - 2] == "rand" {
            Some("rand::random")
        } else {
            None
        };
        if let Some(w) = what {
            out.push(Finding {
                rule: "D03",
                path: path.to_string(),
                line: toks[i].line,
                msg: format!("`{w}` draws unseeded randomness — use a seeded RNG"),
                line_text: lines
                    .get(toks[i].line.saturating_sub(1) as usize)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }
}

fn a01(
    toks: &[Tok],
    texts: &[&str],
    mask: &[bool],
    out: &mut Vec<Finding>,
    path: &str,
    lines: &[&str],
) {
    for i in 0..texts.len() {
        if mask[i] {
            continue;
        }
        if texts[i] == "Ordering"
            && texts.get(i + 1) == Some(&"::")
            && texts.get(i + 2) == Some(&"Relaxed")
        {
            out.push(Finding {
                rule: "A01",
                path: path.to_string(),
                line: toks[i].line,
                msg: "`Ordering::Relaxed` on a sync-critical atomic — use Acquire/Release \
                      (or allowlist a justified counter)"
                    .to_string(),
                line_text: lines
                    .get(toks[i].line.saturating_sub(1) as usize)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        let mut r: Vec<_> = analyze_all_rules("fixture.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        r.sort_unstable();
        r.dedup();
        r
    }

    const FORBID: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn d01_iteration_flagged_sorted_allowed() {
        let bad = format!(
            "{FORBID}fn f() {{ let m: std::collections::HashMap<u32, u32> = Default::default(); \
             for (k, v) in &m {{ use_it(k, v); }} }}"
        );
        assert_eq!(rules_of(&bad), ["D01"]);
        let sorted = format!(
            "{FORBID}fn f() {{ let m: HashMap<u32, u32> = Default::default(); \
             let mut v: Vec<_> = m.into_iter().collect(); v.sort_unstable(); }}"
        );
        assert_eq!(rules_of(&sorted), Vec::<&str>::new());
        let btree = format!(
            "{FORBID}fn f() {{ let m: BTreeMap<u32, u32> = Default::default(); \
             for (k, v) in &m {{ use_it(k, v); }} }}"
        );
        assert_eq!(rules_of(&btree), Vec::<&str>::new());
    }

    #[test]
    fn d01_lookup_only_is_fine() {
        let src = format!(
            "{FORBID}fn f() {{ let m: HashMap<u32, u32> = Default::default(); \
             let x = m.get(&1); m.insert(2, 3); }}"
        );
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }

    #[test]
    fn d02_clock_calls() {
        let bad = format!("{FORBID}fn f() {{ let t = std::time::Instant::now(); }}");
        assert_eq!(rules_of(&bad), ["D02"]);
        let good = format!("{FORBID}fn f() {{ let t = Clock::start(); }}");
        assert_eq!(rules_of(&good), Vec::<&str>::new());
    }

    #[test]
    fn d02_exempt_in_trace_crate() {
        let src = "#![forbid(unsafe_code)]\nfn f() { let t = Instant::now(); }";
        let findings = analyze("crates/trace/src/clock.rs", src);
        assert!(findings.iter().all(|f| f.rule != "D02"), "{findings:?}");
    }

    #[test]
    fn d03_unseeded_randomness() {
        let bad = format!("{FORBID}fn f() {{ let mut rng = rand::thread_rng(); }}");
        assert_eq!(rules_of(&bad), ["D03"]);
        let good = format!("{FORBID}fn f() {{ let mut rng = StdRng::seed_from_u64(42); }}");
        assert_eq!(rules_of(&good), Vec::<&str>::new());
    }

    #[test]
    fn p01_panics_in_hot_path() {
        let bad = format!("{FORBID}fn f() {{ let x = maybe().unwrap(); panic!(\"no\"); }}");
        assert_eq!(rules_of(&bad), ["P01"]);
    }

    #[test]
    fn p01_scoped_to_hot_fns_in_executor() {
        let src = "#![forbid(unsafe_code)]\n\
                   fn run_bsp() { x.unwrap(); }\n\
                   fn cold_path() { y.unwrap(); }";
        let findings = analyze("crates/engine/src/executor.rs", src);
        let p01: Vec<_> = findings.iter().filter(|f| f.rule == "P01").collect();
        assert_eq!(p01.len(), 1);
        assert_eq!(p01[0].line, 2);
    }

    #[test]
    fn p01_ignores_test_mod() {
        let src = format!(
            "{FORBID}fn live() -> Result<(), E> {{ fallible()?; Ok(()) }}\n\
             #[cfg(test)]\nmod tests {{ fn t() {{ x.unwrap(); }} }}"
        );
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }

    #[test]
    fn w01_wildcard_decode_arm() {
        let bad = format!(
            "{FORBID}fn decode(buf: &mut Bytes) -> Result<Self, WireError> {{ \
             match get_u8(buf)? {{ 0 => Ok(Self::A), _ => Ok(Self::B) }} }}"
        );
        assert_eq!(rules_of(&bad), ["W01"]);
        let good = format!(
            "{FORBID}fn decode(buf: &mut Bytes) -> Result<Self, WireError> {{ \
             match get_u8(buf)? {{ 0 => Ok(Self::A), tag => Err(err(tag)) }} }}"
        );
        assert_eq!(rules_of(&good), Vec::<&str>::new());
    }

    #[test]
    fn w01_only_inside_decode() {
        let src = format!("{FORBID}fn merge(x: u8) -> u8 {{ match x {{ 0 => 1, _ => 2 }} }}");
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }

    #[test]
    fn a01_relaxed_ordering() {
        let bad = format!("{FORBID}fn f() {{ FLAG.store(true, Ordering::Relaxed); }}");
        assert_eq!(rules_of(&bad), ["A01"]);
        let good = format!("{FORBID}fn f() {{ FLAG.store(true, Ordering::Release); }}");
        assert_eq!(rules_of(&good), Vec::<&str>::new());
    }

    #[test]
    fn f01_forbid_attribute() {
        assert_eq!(rules_of("fn f() {}"), ["F01"]);
        assert_eq!(
            rules_of("#![forbid(unsafe_code)]\nfn f() {}"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn strings_never_trigger_rules() {
        let src = format!(
            "{FORBID}fn f() {{ let s = \"Instant::now() Ordering::Relaxed thread_rng\"; }}"
        );
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }
}
