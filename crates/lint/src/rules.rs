//! The lint rules.
//!
//! | rule | invariant |
//! |------|-----------|
//! | D01  | no `HashMap`/`HashSet` iteration on determinism-critical paths without an explicit sort |
//! | D02  | no `Instant::now`/`SystemTime::now` outside the trace crate's `Clock` abstraction |
//! | D03  | no unseeded randomness (`thread_rng`, `from_entropy`, `OsRng`, `rand::random`) |
//! | P01  | no `unwrap`/`expect`/`panic!` in the engine worker hot path (superstep loop, message decode) |
//! | A01  | no `Ordering::Relaxed` on sync-critical atomics |
//! | W01  | wire-format `decode` matches may not use `_` wildcard arms |
//! | F01  | every crate root carries `#![forbid(unsafe_code)]` |
//!
//! Rules run over the token stream from [`crate::lexer`], with
//! `#[cfg(test)]` items masked out. Scoping is path-based (see
//! [`analyze`]); fixture self-tests use [`analyze_all_rules`], which treats
//! the whole file as in scope for every rule.

use crate::lexer::{self, Tok};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID, e.g. `"D01"`.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of the violation.
    pub msg: String,
    /// The source line text (allowlist `contains` matches against this).
    pub line_text: String,
}

/// Hash collection type names whose iteration order is nondeterministic.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
/// Methods that observe a collection's iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];
/// Calls that impose a deterministic order on iterated elements: an
/// iteration immediately followed (within a short window) by one of these
/// is considered sorted and therefore fine.
const SORT_CALLS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];
/// Order-insensitive reductions: consuming an unordered iterator with one
/// of these is deterministic regardless of visit order.
const ORDER_FREE: &[&str] = &["count", "sum", "any", "all", "len", "min", "max"];

/// Hot-path function names in the executor for rule P01: the worker's
/// timestep/superstep loop, compute phase, and the message decode/route
/// path. Checkpoint I/O and driver-side assembly are deliberately outside —
/// they may fail loudly.
const HOT_FNS: &[&str] = &[
    "run_timestep_loop",
    "run_bsp",
    "compute_phase_parallel",
    "run_merge",
    "route",
    "drain",
    "deliver_staged",
];

/// Files whose `fn decode` bodies are wire/storage codecs (rule W01).
const CODEC_FILES: &[&str] = &[
    "crates/engine/src/wire.rs",
    "crates/engine/src/batch.rs",
    "crates/engine/src/checkpoint.rs",
    "crates/engine/src/net.rs",
    "crates/engine/src/transport.rs",
    "crates/gofs/src/codec.rs",
    "crates/gofs/src/slice.rs",
    "crates/gofs/src/store.rs",
    "crates/ledger/src/record.rs",
    "crates/algos/src/community.rs",
    "crates/algos/src/tdsp.rs",
    "crates/algos/src/meme.rs",
];

/// What parts of a file each rule applies to.
struct Scope {
    /// D01/D03/A01 apply (everywhere except fixtures in normal mode).
    core: bool,
    /// D02 applies (everywhere outside `crates/trace/src`).
    d02: bool,
    /// P01: `None` = not in scope, `Some(None)` = whole file,
    /// `Some(Some(fns))` = only those function bodies.
    p01: Option<Option<&'static [&'static str]>>,
    /// W01 applies to `fn decode` bodies in this file.
    w01: bool,
    /// F01 applies (crate roots).
    f01: bool,
}

fn scope_for(path: &str) -> Scope {
    let p01 = if path.ends_with("crates/engine/src/wire.rs")
        || path.ends_with("crates/engine/src/batch.rs")
    {
        Some(None)
    } else if path.ends_with("crates/engine/src/executor.rs") {
        Some(Some(HOT_FNS))
    } else {
        None
    };
    Scope {
        core: true,
        d02: !path.contains("crates/trace/src"),
        p01,
        w01: CODEC_FILES.iter().any(|f| path.ends_with(f)),
        f01: path.ends_with("src/lib.rs"),
    }
}

fn scope_all() -> Scope {
    Scope {
        core: true,
        d02: true,
        p01: Some(None),
        w01: true,
        f01: true,
    }
}

/// Analyze one file with path-based rule scoping (the workspace walk).
pub fn analyze(path: &str, src: &str) -> Vec<Finding> {
    run(path, src, scope_for(path))
}

/// Analyze with every rule in scope over the whole file (fixture corpus
/// and rule self-tests).
pub fn analyze_all_rules(path: &str, src: &str) -> Vec<Finding> {
    run(path, src, scope_all())
}

fn run(path: &str, src: &str, scope: Scope) -> Vec<Finding> {
    let toks = lexer::lex(src);
    let mask = lexer::test_mask(&toks);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    let push = |rule: &'static str, line: u32, msg: String, out: &mut Vec<Finding>| {
        out.push(Finding {
            rule,
            path: path.to_string(),
            line,
            msg,
            line_text: lines
                .get(line.saturating_sub(1) as usize)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
    };

    if scope.core {
        d01(&toks, &texts, &mask, &mut out, path, &lines);
        d03(&toks, &texts, &mask, &mut out, path, &lines);
        a01(&toks, &texts, &mask, &mut out, path, &lines);
    }
    if scope.d02 {
        for i in 0..texts.len() {
            if mask[i] {
                continue;
            }
            if (texts[i] == "Instant" || texts[i] == "SystemTime")
                && texts.get(i + 1) == Some(&"::")
                && texts.get(i + 2) == Some(&"now")
                && texts.get(i + 3) == Some(&"(")
            {
                push(
                    "D02",
                    toks[i].line,
                    format!(
                        "`{}::now()` outside the trace crate — use `tempograph_trace::Clock`",
                        texts[i]
                    ),
                    &mut out,
                );
            }
        }
    }
    if let Some(fns) = scope.p01 {
        let ranges: Vec<(usize, usize)> = match fns {
            None => vec![(0, toks.len())],
            Some(names) => names
                .iter()
                .flat_map(|n| lexer::fn_extents(&toks, n))
                .collect(),
        };
        for (s, e) in ranges {
            for i in s..e.min(texts.len()) {
                if mask[i] {
                    continue;
                }
                let hit = if (texts[i] == "unwrap" || texts[i] == "expect")
                    && i > 0
                    && texts[i - 1] == "."
                    && texts.get(i + 1) == Some(&"(")
                {
                    Some(format!("`.{}()` in the engine worker hot path", texts[i]))
                } else if (texts[i] == "panic" || texts[i] == "todo" || texts[i] == "unimplemented")
                    && texts.get(i + 1) == Some(&"!")
                {
                    Some(format!("`{}!` in the engine worker hot path", texts[i]))
                } else {
                    None
                };
                if let Some(what) = hit {
                    push(
                        "P01",
                        toks[i].line,
                        format!("{what} — return a typed `EngineError` instead"),
                        &mut out,
                    );
                }
            }
        }
    }
    if scope.w01 {
        for (s, e) in lexer::fn_extents(&toks, "decode") {
            for i in s..e.min(texts.len()) {
                if mask[i] {
                    continue;
                }
                if texts[i] == "_" && texts.get(i + 1) == Some(&"=>") {
                    push(
                        "W01",
                        toks[i].line,
                        "wildcard `_` arm in a wire-format `decode` match — bind the tag and \
                         return a typed error so new variants cannot be silently swallowed"
                            .to_string(),
                        &mut out,
                    );
                }
            }
        }
    }
    if scope.f01 {
        let has = texts.windows(6).any(|w| {
            w[0] == "!" && w[1] == "[" && w[2] == "forbid" && w[3] == "(" && w[4] == "unsafe_code"
        });
        if !has {
            push(
                "F01",
                1,
                "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
                &mut out,
            );
        }
    }
    out
}

/// Collect identifiers bound with a hash-collection type in this file:
/// `x: HashMap<…>` (lets, fields, params) and `x = HashMap::new()`-style
/// constructor bindings, with optional `std::collections::` paths.
fn hash_idents(texts: &[&str], mask: &[bool]) -> Vec<String> {
    let is_ident = |s: &str| {
        s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
            && s != "_"
    };
    let mut names: Vec<String> = Vec::new();
    for i in 0..texts.len() {
        if mask[i] || !HASH_TYPES.contains(&texts[i]) {
            continue;
        }
        // Walk back over a `seg::seg::` path prefix to the head of the type
        // expression.
        let mut j = i;
        while j >= 2 && texts[j - 1] == "::" && is_ident(texts[j - 2]) {
            j -= 2;
        }
        // `name : [&|mut]* Type` — let bindings, struct fields, fn params.
        let mut k = j;
        while k >= 1 && (texts[k - 1] == "&" || texts[k - 1] == "mut") {
            k -= 1;
        }
        if k >= 2 && texts[k - 1] == ":" && is_ident(texts[k - 2]) {
            names.push(texts[k - 2].to_string());
            continue;
        }
        // `name = Type::new()` / `with_capacity` / `default`.
        if texts.get(i + 1) == Some(&"::")
            && matches!(
                texts.get(i + 2),
                Some(&"new") | Some(&"with_capacity") | Some(&"default")
            )
            && j >= 2
            && texts[j - 1] == "="
            && is_ident(texts[j - 2])
        {
            names.push(texts[j - 2].to_string());
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

fn d01(
    toks: &[Tok],
    texts: &[&str],
    mask: &[bool],
    out: &mut Vec<Finding>,
    path: &str,
    lines: &[&str],
) {
    let tracked = hash_idents(texts, mask);
    if tracked.is_empty() {
        return;
    }
    let tracked = |name: &str| tracked.iter().any(|t| t == name);
    // An iteration is fine if a sort or an order-free reduction appears
    // shortly after — "collect then sort" is the sanctioned idiom.
    let escapes = |from: usize| {
        texts[from..texts.len().min(from + 48)]
            .iter()
            .any(|t| SORT_CALLS.contains(t) || ORDER_FREE.contains(t))
    };
    let mut hit = |i: usize, what: String| {
        out.push(Finding {
            rule: "D01",
            path: path.to_string(),
            line: toks[i].line,
            msg: format!(
                "{what} iterates a hash collection on a determinism-critical path — \
                 use BTreeMap/BTreeSet or sort explicitly"
            ),
            line_text: lines
                .get(toks[i].line.saturating_sub(1) as usize)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
    };
    for i in 0..texts.len() {
        if mask[i] {
            continue;
        }
        // `name.iter()` / `.keys()` / `.drain()` / …
        if texts[i] == "."
            && i > 0
            && tracked(texts[i - 1])
            && texts.get(i + 1).is_some_and(|m| ITER_METHODS.contains(m))
            && texts.get(i + 2) == Some(&"(")
            && !escapes(i + 3)
        {
            // Anchor on the receiver ident: multi-line method chains put
            // the `.` on its own line, which reads poorly in reports.
            hit(i - 1, format!("`{}.{}()`", texts[i - 1], texts[i + 1]));
        }
        // `for pat in [&][mut] name {`
        if texts[i] == "in" {
            let mut j = i + 1;
            while matches!(texts.get(j), Some(&"&") | Some(&"mut")) {
                j += 1;
            }
            if texts.get(j).is_some_and(|n| tracked(n)) && texts.get(j + 1) == Some(&"{") {
                hit(i, format!("`for … in {}`", texts[j]));
            }
        }
    }
}

fn d03(
    toks: &[Tok],
    texts: &[&str],
    mask: &[bool],
    out: &mut Vec<Finding>,
    path: &str,
    lines: &[&str],
) {
    for i in 0..texts.len() {
        if mask[i] {
            continue;
        }
        let what = if matches!(
            texts[i],
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom"
        ) {
            Some(texts[i])
        } else if texts[i] == "random" && i >= 2 && texts[i - 1] == "::" && texts[i - 2] == "rand" {
            Some("rand::random")
        } else {
            None
        };
        if let Some(w) = what {
            out.push(Finding {
                rule: "D03",
                path: path.to_string(),
                line: toks[i].line,
                msg: format!("`{w}` draws unseeded randomness — use a seeded RNG"),
                line_text: lines
                    .get(toks[i].line.saturating_sub(1) as usize)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }
}

fn a01(
    toks: &[Tok],
    texts: &[&str],
    mask: &[bool],
    out: &mut Vec<Finding>,
    path: &str,
    lines: &[&str],
) {
    for i in 0..texts.len() {
        if mask[i] {
            continue;
        }
        if texts[i] == "Ordering"
            && texts.get(i + 1) == Some(&"::")
            && texts.get(i + 2) == Some(&"Relaxed")
        {
            out.push(Finding {
                rule: "A01",
                path: path.to_string(),
                line: toks[i].line,
                msg: "`Ordering::Relaxed` on a sync-critical atomic — use Acquire/Release \
                      (or allowlist a justified counter)"
                    .to_string(),
                line_text: lines
                    .get(toks[i].line.saturating_sub(1) as usize)
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        let mut r: Vec<_> = analyze_all_rules("fixture.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        r.sort_unstable();
        r.dedup();
        r
    }

    const FORBID: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn d01_iteration_flagged_sorted_allowed() {
        let bad = format!(
            "{FORBID}fn f() {{ let m: std::collections::HashMap<u32, u32> = Default::default(); \
             for (k, v) in &m {{ use_it(k, v); }} }}"
        );
        assert_eq!(rules_of(&bad), ["D01"]);
        let sorted = format!(
            "{FORBID}fn f() {{ let m: HashMap<u32, u32> = Default::default(); \
             let mut v: Vec<_> = m.into_iter().collect(); v.sort_unstable(); }}"
        );
        assert_eq!(rules_of(&sorted), Vec::<&str>::new());
        let btree = format!(
            "{FORBID}fn f() {{ let m: BTreeMap<u32, u32> = Default::default(); \
             for (k, v) in &m {{ use_it(k, v); }} }}"
        );
        assert_eq!(rules_of(&btree), Vec::<&str>::new());
    }

    #[test]
    fn d01_lookup_only_is_fine() {
        let src = format!(
            "{FORBID}fn f() {{ let m: HashMap<u32, u32> = Default::default(); \
             let x = m.get(&1); m.insert(2, 3); }}"
        );
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }

    #[test]
    fn d02_clock_calls() {
        let bad = format!("{FORBID}fn f() {{ let t = std::time::Instant::now(); }}");
        assert_eq!(rules_of(&bad), ["D02"]);
        let good = format!("{FORBID}fn f() {{ let t = Clock::start(); }}");
        assert_eq!(rules_of(&good), Vec::<&str>::new());
    }

    #[test]
    fn d02_exempt_in_trace_crate() {
        let src = "#![forbid(unsafe_code)]\nfn f() { let t = Instant::now(); }";
        let findings = analyze("crates/trace/src/clock.rs", src);
        assert!(findings.iter().all(|f| f.rule != "D02"), "{findings:?}");
    }

    #[test]
    fn d03_unseeded_randomness() {
        let bad = format!("{FORBID}fn f() {{ let mut rng = rand::thread_rng(); }}");
        assert_eq!(rules_of(&bad), ["D03"]);
        let good = format!("{FORBID}fn f() {{ let mut rng = StdRng::seed_from_u64(42); }}");
        assert_eq!(rules_of(&good), Vec::<&str>::new());
    }

    #[test]
    fn p01_panics_in_hot_path() {
        let bad = format!("{FORBID}fn f() {{ let x = maybe().unwrap(); panic!(\"no\"); }}");
        assert_eq!(rules_of(&bad), ["P01"]);
    }

    #[test]
    fn p01_scoped_to_hot_fns_in_executor() {
        let src = "#![forbid(unsafe_code)]\n\
                   fn run_bsp() { x.unwrap(); }\n\
                   fn cold_path() { y.unwrap(); }";
        let findings = analyze("crates/engine/src/executor.rs", src);
        let p01: Vec<_> = findings.iter().filter(|f| f.rule == "P01").collect();
        assert_eq!(p01.len(), 1);
        assert_eq!(p01[0].line, 2);
    }

    #[test]
    fn p01_ignores_test_mod() {
        let src = format!(
            "{FORBID}fn live() -> Result<(), E> {{ fallible()?; Ok(()) }}\n\
             #[cfg(test)]\nmod tests {{ fn t() {{ x.unwrap(); }} }}"
        );
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }

    #[test]
    fn w01_wildcard_decode_arm() {
        let bad = format!(
            "{FORBID}fn decode(buf: &mut Bytes) -> Result<Self, WireError> {{ \
             match get_u8(buf)? {{ 0 => Ok(Self::A), _ => Ok(Self::B) }} }}"
        );
        assert_eq!(rules_of(&bad), ["W01"]);
        let good = format!(
            "{FORBID}fn decode(buf: &mut Bytes) -> Result<Self, WireError> {{ \
             match get_u8(buf)? {{ 0 => Ok(Self::A), tag => Err(err(tag)) }} }}"
        );
        assert_eq!(rules_of(&good), Vec::<&str>::new());
    }

    #[test]
    fn w01_only_inside_decode() {
        let src = format!("{FORBID}fn merge(x: u8) -> u8 {{ match x {{ 0 => 1, _ => 2 }} }}");
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }

    #[test]
    fn a01_relaxed_ordering() {
        let bad = format!("{FORBID}fn f() {{ FLAG.store(true, Ordering::Relaxed); }}");
        assert_eq!(rules_of(&bad), ["A01"]);
        let good = format!("{FORBID}fn f() {{ FLAG.store(true, Ordering::Release); }}");
        assert_eq!(rules_of(&good), Vec::<&str>::new());
    }

    #[test]
    fn f01_forbid_attribute() {
        assert_eq!(rules_of("fn f() {}"), ["F01"]);
        assert_eq!(
            rules_of("#![forbid(unsafe_code)]\nfn f() {}"),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn strings_never_trigger_rules() {
        let src = format!(
            "{FORBID}fn f() {{ let s = \"Instant::now() Ordering::Relaxed thread_rng\"; }}"
        );
        assert_eq!(rules_of(&src), Vec::<&str>::new());
    }
}
