//! A minimal Rust lexer for lint analysis.
//!
//! Produces a flat token stream with line numbers, with comments, string
//! literals, char literals, and numeric literals stripped — so rules match
//! against *code*, never against text inside a string or doc comment. The
//! digraphs `::`, `=>`, and `->` are merged into single tokens; every other
//! piece of punctuation is a single-character token.
//!
//! This is deliberately not a full parser: rules are token-pattern
//! heuristics, and the repo accepts rare false positives (suppressed via
//! `lint-allow.toml`) in exchange for a dependency-free analyzer that works
//! in offline builds.

/// One lexed token: its text and the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    pub text: String,
    pub line: u32,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If `b[i..]` starts a raw (byte) string — `r"…"`, `r#"…"#`, `br##"…"##` —
/// skip it and return the index past the closing delimiter.
fn try_raw_string(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let end = j + 1;
            if b[end..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
                return Some(end + hashes);
            }
        }
        j += 1;
    }
    Some(j)
}

/// Skip a `'…'` char literal starting at the opening quote.
fn skip_char_literal(b: &[u8], mut i: usize) -> usize {
    debug_assert_eq!(b[i], b'\'');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Lex `src` into tokens. Never fails: unknown bytes become single-char
/// punctuation tokens, and unterminated literals consume to end of input.
pub fn lex(src: &str) -> Vec<Tok> {
    lex_impl(src, false)
}

/// [`lex`], but numeric literals are kept as tokens (their source text,
/// suffix and all). The item parser and the schema extractor need them —
/// enum discriminants and version constants are part of a wire format.
pub fn lex_full(src: &str) -> Vec<Tok> {
    lex_impl(src, true)
}

fn lex_impl(src: &str, emit_numbers: bool) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == b'"' {
            i = skip_string(b, i, &mut line);
        } else if (c == b'r' || c == b'b') && {
            let mut l2 = line;
            if let Some(j) = try_raw_string(b, i, &mut l2) {
                line = l2;
                i = j;
                true
            } else {
                false
            }
        } {
            // Raw (byte) string consumed by the guard above.
        } else if c == b'b' && b.get(i + 1) == Some(&b'"') {
            i = skip_string(b, i + 1, &mut line);
        } else if c == b'b' && b.get(i + 1) == Some(&b'\'') {
            i = skip_char_literal(b, i + 1);
        } else if c == b'\'' {
            // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
            let next = b.get(i + 1).copied();
            if next == Some(b'\\') {
                i = skip_char_literal(b, i);
            } else if next.is_some_and(is_ident_start) && b.get(i + 2) != Some(&b'\'') {
                // Lifetime: skip the quote and the identifier.
                i += 2;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
            } else {
                i = skip_char_literal(b, i);
            }
        } else if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            toks.push(Tok {
                text: src[start..i].to_string(),
                line,
            });
        } else if c.is_ascii_digit() {
            // Numeric literal (decimal, hex, float, suffixed). Emitted only
            // in full mode: no *rule* matches on numbers, but the parser and
            // schema extractor need them. Consume `.` only when followed by
            // a digit, so ranges (`0..n`) and method calls (`1.max(x)`)
            // survive as separate tokens.
            let start = i;
            i += 1;
            loop {
                if i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                } else if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 2;
                } else {
                    break;
                }
            }
            if emit_numbers {
                toks.push(Tok {
                    text: src[start..i].to_string(),
                    line,
                });
            }
        } else {
            // Punctuation; merge the digraphs rules care about.
            let two = b.get(i + 1).map(|&n| (c, n));
            let text = match two {
                Some((b':', b':')) => "::",
                Some((b'=', b'>')) => "=>",
                Some((b'-', b'>')) => "->",
                _ => {
                    toks.push(Tok {
                        text: (c as char).to_string(),
                        line,
                    });
                    i += 1;
                    continue;
                }
            };
            toks.push(Tok {
                text: text.to_string(),
                line,
            });
            i += 2;
        }
    }
    toks
}

/// Mark tokens covered by `#[cfg(test)]` items (and everything nested in
/// them) so rules skip test-only code. Returns one flag per token.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < texts.len() {
        // `# [ cfg ( test ) ]`
        if texts[i] == "#"
            && texts.get(i + 1) == Some(&"[")
            && texts.get(i + 2) == Some(&"cfg")
            && texts.get(i + 3) == Some(&"(")
            && texts.get(i + 4) == Some(&"test")
            && texts.get(i + 5) == Some(&")")
            && texts.get(i + 6) == Some(&"]")
        {
            let mut j = i + 7;
            // Skip any further attributes on the same item.
            while texts.get(j) == Some(&"#") && texts.get(j + 1) == Some(&"[") {
                let mut depth = 0i32;
                while j < texts.len() {
                    match texts[j] {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // The item extends to the first `;` at brace depth 0, or to the
            // matching `}` of its first `{`.
            let end = item_end(&texts, j);
            for flag in mask.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    mask
}

/// Index one past the end of the item starting at `start`: the first `;`
/// outside braces, or the matching close of the first `{`.
fn item_end(texts: &[&str], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < texts.len() {
        match texts[j] {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    texts.len()
}

/// The extent (token range, exclusive end) of the body of `fn <name>`,
/// for every function with that name in the stream.
pub fn fn_extents(toks: &[Tok], name: &str) -> Vec<(usize, usize)> {
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    let mut out = Vec::new();
    for i in 0..texts.len() {
        if texts[i] == "fn" && texts.get(i + 1) == Some(&name) {
            // First `{` after the signature opens the body.
            let mut j = i + 2;
            while j < texts.len() && texts[j] != "{" && texts[j] != ";" {
                j += 1;
            }
            if texts.get(j) == Some(&"{") {
                out.push((j, item_end(&texts, j)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let t = texts(
            r##"let x = "HashMap"; // HashMap
            /* HashMap */ let y = r#"HashMap"#; let c = 'H';"##,
        );
        assert!(!t.contains(&"HashMap".to_string()), "{t:?}");
        assert!(t.contains(&"let".to_string()));
    }

    #[test]
    fn digraphs_merge() {
        let t = texts("a::b, _ => x -> y");
        assert_eq!(t, ["a", "::", "b", ",", "_", "=>", "x", "->", "y"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If `'a` were lexed as an unterminated char literal the rest of
        // the line would be swallowed.
        let t = texts("fn f<'a>(x: &'a str) { x.iter() }");
        assert!(t.contains(&"iter".to_string()));
    }

    #[test]
    fn ranges_survive_number_lexing() {
        let t = texts("for i in 0..10 { }");
        assert_eq!(t, ["for", "i", "in", ".", ".", "{", "}"]);
    }

    #[test]
    fn full_lex_keeps_numbers() {
        let t: Vec<String> = lex_full("const V: u16 = 2; x[0x1f]; 1.5f64")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(
            t,
            ["const", "V", ":", "u16", "=", "2", ";", "x", "[", "0x1f", "]", ";", "1.5f64"]
        );
    }

    #[test]
    fn line_numbers_track_comments_and_strings() {
        let toks = lex("// one\n/* two\nthree */\nlet x = \"a\nb\";\nfin");
        let fin = toks.iter().find(|t| t.text == "fin").unwrap();
        assert_eq!(fin.line, 6);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }\nfn tail() {}";
        let toks = lex(src);
        let mask = test_mask(&toks);
        let live = toks.iter().position(|t| t.text == "a").unwrap();
        let dead = toks.iter().position(|t| t.text == "b").unwrap();
        let tail = toks.iter().position(|t| t.text == "tail").unwrap();
        assert!(!mask[live]);
        assert!(mask[dead]);
        assert!(!mask[tail]);
    }

    #[test]
    fn fn_extent_covers_body_only() {
        let src = "fn alpha() { x.unwrap(); }\nfn beta() { y.unwrap(); }";
        let toks = lex(src);
        let ext = fn_extents(&toks, "beta");
        assert_eq!(ext.len(), 1);
        let (s, e) = ext[0];
        let body: Vec<&str> = toks[s..e].iter().map(|t| t.text.as_str()).collect();
        assert!(body.contains(&"y"));
        assert!(!body.contains(&"x"));
    }
}
