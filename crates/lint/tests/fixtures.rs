//! Self-test corpus: every rule has a bad fixture that fires exactly that
//! rule and a good fixture that fires nothing; plus allowlist suppression,
//! stale-entry detection, and a full clean-workspace run.
//!
//! The `ws_*` fixture directories are mini-workspaces for the v2 passes:
//! `ws_transitive_{bad,good}` exercise the call-graph rules (indirect
//! panics, trait dispatch, use-aliases, cfg(test) masking, H01 guards,
//! indexing) end to end through [`lint_workspace`], and `ws_schema` locks
//! a miniature frame family for the W02 drift tests and the binary
//! exit-code matrix.

use std::path::{Path, PathBuf};
use std::process::Command;
use tempograph_lint::{
    allowlist, analyze_all_rules, lint_workspace, parse_workspace, schema, Finding,
};

const RULES: &[&str] = &["D01", "D02", "D03", "P01", "A01", "W01", "F01"];

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    (format!("crates/lint/fixtures/{name}"), src)
}

fn findings_for(name: &str) -> Vec<Finding> {
    let (path, src) = fixture(name);
    analyze_all_rules(&path, &src)
}

#[test]
fn every_bad_fixture_fires_exactly_its_rule() {
    for rule in RULES {
        let name = format!("{}_bad.rs", rule.to_lowercase());
        let findings = findings_for(&name);
        assert!(
            !findings.is_empty(),
            "{name} must produce at least one finding"
        );
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{name} fired {} at line {} — bad fixtures must isolate their rule: {}",
                f.rule, f.line, f.msg
            );
        }
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for rule in RULES {
        let name = format!("{}_good.rs", rule.to_lowercase());
        let findings = findings_for(&name);
        assert!(
            findings.is_empty(),
            "{name} must be clean, got: {findings:#?}"
        );
    }
}

#[test]
fn bad_fixture_findings_carry_source_lines() {
    for f in findings_for("p01_bad.rs") {
        assert!(
            !f.line_text.is_empty(),
            "finding at line {} lost its source text",
            f.line
        );
    }
}

#[test]
fn allowlist_suppresses_matching_findings() {
    let findings = findings_for("p01_bad.rs");
    let n = findings.len();
    assert!(n >= 3, "p01_bad should have unwrap + panic + expect");
    let allow = r#"
[[allow]]
rule = "P01"
path = "crates/lint/fixtures/p01_bad.rs"
contains = "unwrap"
reason = "exercising suppression in a test"
"#;
    let entries = allowlist::parse(allow).expect("allowlist parses");
    let (kept, used) = allowlist::apply(findings, &entries);
    assert_eq!(
        kept.len(),
        n - 1,
        "exactly the unwrap finding is suppressed"
    );
    assert!(kept.iter().all(|f| !f.line_text.contains("unwrap()")));
    assert_eq!(used, vec![true]);
}

#[test]
fn stale_allowlist_entry_is_detected() {
    let findings = findings_for("p01_bad.rs");
    let allow = r#"
[[allow]]
rule = "P01"
path = "crates/lint/fixtures/p01_bad.rs"
contains = "this substring appears nowhere"
reason = "stale on purpose"
"#;
    let entries = allowlist::parse(allow).expect("allowlist parses");
    let n = findings.len();
    let (kept, used) = allowlist::apply(findings, &entries);
    assert_eq!(kept.len(), n, "nothing suppressed");
    assert_eq!(used, vec![false], "the entry must be reported stale");
}

// ---- v2: transitive call-graph fixtures -----------------------------------

fn ws_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Copy a `ws_*` fixture into a fresh temp dir (`tag` keeps concurrent
/// tests apart) so drift tests can mutate it freely.
fn temp_copy(name: &str, tag: &str) -> PathBuf {
    fn copy_dir(src: &Path, dst: &Path) {
        std::fs::create_dir_all(dst).expect("create temp fixture dir");
        for e in std::fs::read_dir(src).expect("read fixture dir") {
            let e = e.expect("fixture dir entry");
            let to = dst.join(e.file_name());
            if e.path().is_dir() {
                copy_dir(&e.path(), &to);
            } else {
                std::fs::copy(e.path(), &to).expect("copy fixture file");
            }
        }
    }
    let dst = std::env::temp_dir().join(format!(
        "tempograph-lint-{name}-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dst);
    copy_dir(&ws_root(name), &dst);
    dst
}

#[test]
fn transitive_bad_workspace_reports_chained_findings() {
    let report = lint_workspace(&ws_root("ws_transitive_bad")).expect("lint runs");
    assert!(report.drift.is_empty(), "no wire formats in this fixture");
    let has = |rule: &str, path_frag: &str, msg_frag: &str| {
        report
            .findings
            .iter()
            .any(|f| f.rule == rule && f.path.contains(path_frag) && f.msg.contains(msg_frag))
    };
    // Two-hop bare-call panic, with the full chain in the message.
    assert!(
        has("P01", "util/src/lib.rs", "run_timestep_loop → step → apply"),
        "{:#?}",
        report.findings
    );
    // Trait dispatch through the bodyless `Provider` declaration.
    assert!(
        has("P01", "util/src/lib.rs", "DiskProvider::fetch"),
        "{:#?}",
        report.findings
    );
    // Use-alias: `advance(…)` resolved to `step`; covered by the chain
    // above naming `step`, not the alias.
    assert!(!report.findings.iter().any(|f| f.msg.contains("advance")));
    // Two-hop clock read.
    assert!(
        has("D02", "util/src/lib.rs", "stamp → wall_clock"),
        "{:#?}",
        report.findings
    );
    // Unguarded instrumentation allocation.
    assert!(
        has("H01", "trace/src/lib.rs", "TraceSink::record"),
        "{:#?}",
        report.findings
    );
    // Indexing rooted directly at a Transport entry point.
    assert!(
        has("P01", "engine/src/transport.rs", "Mesh::send"),
        "{:#?}",
        report.findings
    );
    // The cfg(test)-masked callee and the guarded record path contribute
    // nothing.
    assert!(!report
        .findings
        .iter()
        .any(|f| f.msg.contains("debug_probe")));
    assert!(!report
        .findings
        .iter()
        .any(|f| f.msg.contains("record_guarded")));
    // Every transitive finding explains itself with a chain.
    for f in report.findings.iter().filter(|f| f.rule != "F01") {
        assert!(f.msg.contains("via "), "chainless finding: {f:#?}");
    }
}

#[test]
fn transitive_good_workspace_is_clean() {
    let report = lint_workspace(&ws_root("ws_transitive_good")).expect("lint runs");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert!(report.drift.is_empty());
    assert!(report.stale.is_empty());
}

// ---- v2: wire-schema locking ----------------------------------------------

/// Swap the `seq` and `payload` fields of the fixture `Frame` struct —
/// the canonical "silent wire corruption" edit W02 exists to catch.
fn reorder_frame_fields(root: &Path) {
    let net = root.join("crates/engine/src/net.rs");
    let src = std::fs::read_to_string(&net).expect("fixture net.rs");
    assert!(src.contains("pub seq: u64,\n    pub payload: Vec<u8>,"));
    let mutated = src.replace(
        "pub seq: u64,\n    pub payload: Vec<u8>,",
        "pub payload: Vec<u8>,\n    pub seq: u64,",
    );
    std::fs::write(&net, mutated).expect("write mutated net.rs");
}

#[test]
fn schema_fixture_is_locked_and_field_reorder_is_drift() {
    // Committed golden matches the fixture source.
    let report = lint_workspace(&ws_root("ws_schema")).expect("lint runs");
    assert!(report.drift.is_empty(), "{:#?}", report.drift);
    assert_eq!(report.schemas, 1, "the net group is locked");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);

    // Reordering two wire fields is drift.
    let tmp = temp_copy("ws_schema", "drift");
    reorder_frame_fields(&tmp);
    let report = lint_workspace(&tmp).expect("lint runs");
    assert!(
        report.drift.iter().any(|d| d.contains("net.schema")),
        "{:#?}",
        report.drift
    );
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn schema_regeneration_requires_a_version_bump() {
    let tmp = temp_copy("ws_schema", "bump");
    reorder_frame_fields(&tmp);

    // Shape changed, version unchanged: the writer refuses.
    let asts = parse_workspace(&tmp).expect("parse fixture workspace");
    let err = schema::write(&tmp, &asts).expect_err("refuses without a bump");
    assert!(err.contains("bump"), "{err}");

    // Bump the governing constant: regeneration succeeds and the
    // workspace locks clean again.
    let net = tmp.join("crates/engine/src/net.rs");
    let src = std::fs::read_to_string(&net).expect("fixture net.rs");
    std::fs::write(
        &net,
        src.replace("FRAME_VERSION: u32 = 1", "FRAME_VERSION: u32 = 2"),
    )
    .expect("write bumped net.rs");
    let asts = parse_workspace(&tmp).expect("parse fixture workspace");
    let written = schema::write(&tmp, &asts).expect("write succeeds after bump");
    assert_eq!(written, vec!["schemas/net.schema".to_string()]);
    let report = lint_workspace(&tmp).expect("lint runs");
    assert!(report.drift.is_empty(), "{:#?}", report.drift);
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn binary_exit_codes_cover_clean_findings_and_drift() {
    let bin = env!("CARGO_BIN_EXE_tempograph-lint");
    let run = |root: &Path| {
        Command::new(bin)
            .arg("--root")
            .arg(root)
            .output()
            .expect("run tempograph-lint")
            .status
            .code()
    };
    assert_eq!(run(&ws_root("ws_transitive_good")), Some(0), "clean → 0");
    assert_eq!(run(&ws_root("ws_transitive_bad")), Some(1), "findings → 1");
    let tmp = temp_copy("ws_schema", "exit2");
    reorder_frame_fields(&tmp);
    assert_eq!(run(&tmp), Some(2), "schema drift → 2");
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn workspace_is_clean_under_committed_allowlist() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root resolves");
    assert!(
        Path::new(&root).join("lint-allow.toml").is_file(),
        "committed allowlist present"
    );
    let report = lint_workspace(&root).expect("lint run succeeds");
    assert!(report.files > 50, "walk found the workspace sources");
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean: {:#?}",
        report.findings
    );
    assert!(
        report.stale.is_empty(),
        "no stale allowlist entries: {:#?}",
        report.stale
    );
    assert!(
        report.drift.is_empty(),
        "wire schemas match their goldens: {:#?}",
        report.drift
    );
    assert!(report.schemas >= 6, "all schema groups are present");
}
