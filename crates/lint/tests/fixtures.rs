//! Self-test corpus: every rule has a bad fixture that fires exactly that
//! rule and a good fixture that fires nothing; plus allowlist suppression,
//! stale-entry detection, and a full clean-workspace run.

use std::path::{Path, PathBuf};
use tempograph_lint::{allowlist, analyze_all_rules, lint_workspace, Finding};

const RULES: &[&str] = &["D01", "D02", "D03", "P01", "A01", "W01", "F01"];

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    (format!("crates/lint/fixtures/{name}"), src)
}

fn findings_for(name: &str) -> Vec<Finding> {
    let (path, src) = fixture(name);
    analyze_all_rules(&path, &src)
}

#[test]
fn every_bad_fixture_fires_exactly_its_rule() {
    for rule in RULES {
        let name = format!("{}_bad.rs", rule.to_lowercase());
        let findings = findings_for(&name);
        assert!(
            !findings.is_empty(),
            "{name} must produce at least one finding"
        );
        for f in &findings {
            assert_eq!(
                f.rule, *rule,
                "{name} fired {} at line {} — bad fixtures must isolate their rule: {}",
                f.rule, f.line, f.msg
            );
        }
    }
}

#[test]
fn every_good_fixture_is_clean() {
    for rule in RULES {
        let name = format!("{}_good.rs", rule.to_lowercase());
        let findings = findings_for(&name);
        assert!(
            findings.is_empty(),
            "{name} must be clean, got: {findings:#?}"
        );
    }
}

#[test]
fn bad_fixture_findings_carry_source_lines() {
    for f in findings_for("p01_bad.rs") {
        assert!(
            !f.line_text.is_empty(),
            "finding at line {} lost its source text",
            f.line
        );
    }
}

#[test]
fn allowlist_suppresses_matching_findings() {
    let findings = findings_for("p01_bad.rs");
    let n = findings.len();
    assert!(n >= 3, "p01_bad should have unwrap + panic + expect");
    let allow = r#"
[[allow]]
rule = "P01"
path = "crates/lint/fixtures/p01_bad.rs"
contains = "unwrap"
reason = "exercising suppression in a test"
"#;
    let entries = allowlist::parse(allow).expect("allowlist parses");
    let (kept, used) = allowlist::apply(findings, &entries);
    assert_eq!(
        kept.len(),
        n - 1,
        "exactly the unwrap finding is suppressed"
    );
    assert!(kept.iter().all(|f| !f.line_text.contains("unwrap()")));
    assert_eq!(used, vec![true]);
}

#[test]
fn stale_allowlist_entry_is_detected() {
    let findings = findings_for("p01_bad.rs");
    let allow = r#"
[[allow]]
rule = "P01"
path = "crates/lint/fixtures/p01_bad.rs"
contains = "this substring appears nowhere"
reason = "stale on purpose"
"#;
    let entries = allowlist::parse(allow).expect("allowlist parses");
    let n = findings.len();
    let (kept, used) = allowlist::apply(findings, &entries);
    assert_eq!(kept.len(), n, "nothing suppressed");
    assert_eq!(used, vec![false], "the entry must be reported stale");
}

#[test]
fn workspace_is_clean_under_committed_allowlist() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root resolves");
    assert!(
        Path::new(&root).join("lint-allow.toml").is_file(),
        "committed allowlist present"
    );
    let report = lint_workspace(&root).expect("lint run succeeds");
    assert!(report.files > 50, "walk found the workspace sources");
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean: {:#?}",
        report.findings
    );
    assert!(
        report.stale.is_empty(),
        "no stale allowlist entries: {:#?}",
        report.stale
    );
}
