//! Per-instance statistics — the independent pattern at its simplest.
//!
//! §II.B: "there are also algorithms where each graph instance is treated
//! independently, such as when gathering independent statistics on each
//! instance." This program computes, per timestep: the number of active
//! vertices (non-empty tweet lists), total tweet volume, and — when a
//! latency column is given — the count of congested edges (latency above a
//! threshold). Results land in counters; no messaging at all, so it is also
//! the cleanest workload for the temporal-parallelism ablation.

use tempograph_core::kernels;
use tempograph_engine::{Context, Envelope, SubgraphProgram};
use tempograph_partition::Subgraph;

/// The instance-statistics program; instantiate via
/// [`InstanceStats::factory`].
pub struct InstanceStats {
    tweets_col: Option<usize>,
    latency_col: Option<usize>,
    congestion_threshold: f64,
    /// Edge positions whose lower endpoint this subgraph owns — constant
    /// across timesteps, so the factory resolves the per-edge endpoint
    /// lookups once instead of every instance.
    owned_edges: Vec<u32>,
}

impl InstanceStats {
    /// Counter: vertices with ≥ 1 tweet this timestep.
    pub const ACTIVE_VERTICES: &'static str = "stats_active_vertices";
    /// Counter: total tweets this timestep.
    pub const TWEETS: &'static str = "stats_tweets";
    /// Counter: edges with latency above the congestion threshold.
    pub const CONGESTED_EDGES: &'static str = "stats_congested_edges";

    /// Build a per-subgraph factory. Either column may be absent; pass the
    /// congestion threshold in the latency unit.
    pub fn factory(
        tweets_col: Option<usize>,
        latency_col: Option<usize>,
        congestion_threshold: f64,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> InstanceStats {
        move |sg, pg| {
            // Count each *local* edge once: a subgraph's edge list also
            // contains crossing edges owned jointly; keep an edge position
            // only if this subgraph holds its lower endpoint side.
            let owned_edges = if latency_col.is_some() {
                sg.edges()
                    .iter()
                    .enumerate()
                    .filter(|(_, &e)| {
                        let (s, _) = pg.template().endpoints(e);
                        sg.local_pos(s).is_some()
                    })
                    .map(|(q, _)| q as u32)
                    .collect()
            } else {
                Vec::new()
            };
            InstanceStats {
                tweets_col,
                latency_col,
                congestion_threshold,
                owned_edges,
            }
        }
    }
}

impl SubgraphProgram for InstanceStats {
    type Msg = ();

    fn compute(&mut self, ctx: &mut Context<'_, ()>, _msgs: &[Envelope<()>]) {
        if ctx.superstep() == 0 {
            let instance = ctx.instance();
            if let Some(col) = self.tweets_col {
                let tweets = instance
                    .vertex_text_list(col)
                    .expect("tweets must be TextList");
                let active = tweets.iter().filter(|r| !r.is_empty()).count() as u64;
                let volume: u64 = tweets.iter().map(|r| r.len() as u64).sum();
                if active > 0 {
                    ctx.add_counter(Self::ACTIVE_VERTICES, active);
                    ctx.add_counter(Self::TWEETS, volume);
                }
            }
            if let Some(col) = self.latency_col {
                let lat = instance.edge_f64(col).expect("latency must be Double");
                let congested =
                    kernels::count_gt_f64_at(lat, &self.owned_edges, self.congestion_threshold);
                if congested > 0 {
                    ctx.add_counter(Self::CONGESTED_EDGES, congested);
                }
            }
        }
        ctx.vote_to_halt();
    }
}
