//! Time-Dependent single-source Shortest Path (paper §III.C, Algorithm 2).
//!
//! Discrete-time TDSP: edge latencies change every period δ and a traveller
//! may idle at a vertex until the next period. The algorithm stacks the
//! instances into a 3-D graph with unidirectional *idling edges* between a
//! vertex's copies at `tᵢ` and `tᵢ₊₁` and runs a horizon-bounded SSSP per
//! timestep:
//!
//! * within timestep `i`, a modified Dijkstra explores only arrivals
//!   `≤ (i+1)·δ` (later arrivals are discarded — edge values beyond the
//!   current instance are not yet known);
//! * vertices whose arrival lands within the horizon are **finalized**: the
//!   idling edge makes any later path at least as slow, so the first horizon
//!   a vertex is reached in gives its true TDSP (emitted via
//!   [`Context::emit`]);
//! * at the start of timestep `i+1`, every finalized vertex restarts with
//!   label `(i+1)·δ` (it idled through the boundary) and the sweep repeats.
//!
//! Labels are measured as elapsed time since departure at `t0`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tempograph_core::VertexIdx;
use tempograph_engine::{wire, Combiner, Context, Envelope, SubgraphProgram, WireError, WireMsg};
use tempograph_partition::Subgraph;

/// TDSP message: either a remote relaxation or a liveness token for the
/// `WhileActive` termination mode.
#[derive(Clone, Debug, PartialEq)]
pub enum TdspMsg {
    /// "Vertex `v` (in your subgraph) is reachable with arrival `label`."
    Relax(VertexIdx, f64),
    /// "My subgraph still has unfinalized vertices — keep iterating."
    Continue,
}

impl WireMsg for TdspMsg {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        match self {
            TdspMsg::Relax(v, label) => {
                bytes::BufMut::put_u8(buf, 0);
                v.encode(buf);
                label.encode(buf);
            }
            TdspMsg::Continue => bytes::BufMut::put_u8(buf, 1),
        }
    }

    fn decode(buf: &mut bytes::Bytes) -> Result<Self, WireError> {
        // Explicit tags (lint rule W01): adding a variant must extend this
        // match, and an unknown tag is corruption, not a silent `Continue`.
        match wire::get_u8(buf, "TdspMsg tag")? {
            0 => Ok(TdspMsg::Relax(VertexIdx::decode(buf)?, f64::decode(buf)?)),
            1 => Ok(TdspMsg::Continue),
            tag => Err(WireError::BadTag {
                context: "TdspMsg",
                tag,
            }),
        }
    }
}

/// Sender-side min-combiner for TDSP traffic: relaxations of the same
/// vertex collapse to the smallest arrival before serialisation. Min is
/// associative and commutative and the receiver keeps the minimum anyway,
/// so results are byte-identical with or without it. `Continue` liveness
/// tokens are never combined.
pub struct TdspCombiner;

impl Combiner<TdspMsg> for TdspCombiner {
    fn key(&self, msg: &TdspMsg) -> Option<u64> {
        match msg {
            TdspMsg::Relax(v, _) => Some(v.0 as u64),
            TdspMsg::Continue => None,
        }
    }

    fn combine(&self, acc: &mut TdspMsg, incoming: TdspMsg) {
        if let (TdspMsg::Relax(_, a), TdspMsg::Relax(_, b)) = (acc, incoming) {
            if b < *a {
                *a = b;
            }
        }
    }
}

/// The TDSP program; instantiate one per subgraph via [`Tdsp::factory`].
pub struct Tdsp {
    source: VertexIdx,
    latency_col: usize,
    /// Working labels for the current timestep, by local position.
    label: Vec<f64>,
    /// Final TDSP values (∞ until finalized), by local position.
    tdsp: Vec<f64>,
    /// Finalized flags (the cumulative frontier `F` of Algorithm 2).
    finalized: Vec<bool>,
    /// Local positions to start this superstep's Dijkstra from.
    roots: Vec<u32>,
}

impl Tdsp {
    /// Build a per-subgraph factory for a TDSP from `source`, reading edge
    /// latencies from the `Double` edge attribute at `latency_col` (resolve
    /// with `template.edge_schema().index_of(...)`).
    pub fn factory(
        source: VertexIdx,
        latency_col: usize,
    ) -> impl Fn(&Subgraph, &tempograph_partition::PartitionedGraph) -> Tdsp {
        move |sg, _| Tdsp {
            source,
            latency_col,
            label: vec![f64::INFINITY; sg.num_vertices()],
            tdsp: vec![f64::INFINITY; sg.num_vertices()],
            finalized: vec![false; sg.num_vertices()],
            roots: Vec::new(),
        }
    }

    /// Name of the counter tracking vertices finalized per timestep
    /// (the paper's Fig. 7a series).
    pub const FINALIZED: &'static str = "tdsp_finalized";

    /// Horizon-bounded Dijkstra from `self.roots`; returns remote
    /// relaxations `(subgraph, vertex, arrival)` within the horizon.
    fn modified_sssp(
        &mut self,
        ctx: &mut Context<'_, TdspMsg>,
        horizon: f64,
    ) -> Vec<(tempograph_partition::SubgraphId, VertexIdx, f64)> {
        let instance = ctx.instance();
        let sg = ctx.subgraph();
        let latencies = instance
            .edge_f64(self.latency_col)
            .expect("latency attribute must be a Double edge column");

        let mut heap: BinaryHeap<Reverse<(ordered_f64::F64, u32)>> = BinaryHeap::new();
        for &r in &self.roots {
            if self.label[r as usize] <= horizon {
                heap.push(Reverse((ordered_f64::F64(self.label[r as usize]), r)));
            }
        }
        self.roots.clear();

        let mut remote: std::collections::HashMap<
            VertexIdx,
            (tempograph_partition::SubgraphId, f64),
        > = std::collections::HashMap::new();
        while let Some(Reverse((ordered_f64::F64(d), u))) = heap.pop() {
            if d > self.label[u as usize] {
                continue; // stale heap entry
            }
            for &(v, e) in sg.local_neighbors(u) {
                let q = sg.edge_pos(e).expect("local edge belongs to subgraph");
                let arrival = d + latencies[q as usize];
                if arrival <= horizon && arrival < self.label[v as usize] {
                    self.label[v as usize] = arrival;
                    heap.push(Reverse((ordered_f64::F64(arrival), v)));
                }
            }
            for rn in sg.remote_neighbors(u) {
                let q = sg
                    .edge_pos(rn.edge)
                    .expect("crossing edge belongs to subgraph");
                let arrival = d + latencies[q as usize];
                if arrival <= horizon {
                    let entry = remote
                        .entry(rn.vertex)
                        .or_insert((rn.subgraph, f64::INFINITY));
                    if arrival < entry.1 {
                        *entry = (rn.subgraph, arrival);
                    }
                }
            }
        }
        let mut out: Vec<_> = remote
            .into_iter()
            .map(|(v, (sgid, label))| (sgid, v, label))
            .collect();
        out.sort_by_key(|a| (a.1, ordered_f64::F64(a.2)));
        out
    }
}

impl SubgraphProgram for Tdsp {
    type Msg = TdspMsg;

    fn compute(&mut self, ctx: &mut Context<'_, TdspMsg>, msgs: &[Envelope<TdspMsg>]) {
        let delta = ctx.period() as f64;
        let t = ctx.timestep();
        let horizon = (t as f64 + 1.0) * delta;

        if ctx.superstep() == 0 {
            // Fresh working labels; finalized vertices idle through the
            // boundary and depart at t·δ (Algorithm 2 lines 8–11).
            let departure = t as f64 * delta;
            for (i, l) in self.label.iter_mut().enumerate() {
                *l = if self.finalized[i] {
                    departure.max(self.tdsp[i])
                } else {
                    f64::INFINITY
                };
            }
            self.roots = (0..self.label.len() as u32)
                .filter(|&i| self.finalized[i as usize])
                .collect();
            if t == 0 {
                if let Some(pos) = ctx.subgraph().local_pos(self.source) {
                    self.label[pos as usize] = 0.0;
                    self.roots.push(pos);
                }
            }
        } else {
            // Remote relaxations (Algorithm 2 lines 13–18).
            for e in msgs {
                if let TdspMsg::Relax(v, label) = &e.payload {
                    let pos = ctx
                        .subgraph()
                        .local_pos(*v)
                        .expect("relaxation targets a member vertex");
                    if *label < self.label[pos as usize] && !self.finalized[pos as usize] {
                        self.label[pos as usize] = *label;
                        self.roots.push(pos);
                    }
                }
            }
        }

        if !self.roots.is_empty() {
            for (sgid, v, label) in self.modified_sssp(ctx, horizon) {
                ctx.send_to_subgraph(sgid, TdspMsg::Relax(v, label));
            }
        }
        ctx.vote_to_halt();
    }

    fn end_of_timestep(&mut self, ctx: &mut Context<'_, TdspMsg>) {
        // Finalize vertices reached within this horizon (F_t), emit their
        // TDSP, and keep the loop alive while any vertex is unreached.
        let mut newly = 0u64;
        for pos in 0..self.label.len() {
            if !self.finalized[pos] && self.label[pos].is_finite() {
                self.finalized[pos] = true;
                self.tdsp[pos] = self.label[pos];
                ctx.emit(ctx.subgraph().vertex_at(pos as u32), self.label[pos]);
                newly += 1;
            }
        }
        if newly > 0 {
            ctx.add_counter(Self::FINALIZED, newly);
        }
        ctx.vote_to_halt_timestep();
        let all_done = self.finalized.iter().all(|&f| f);
        if !all_done && ctx.timestep() + 1 < ctx.num_timesteps() {
            ctx.send_to_next_timestep(TdspMsg::Continue);
        }
    }

    // `source` and `latency_col` are configuration, rebuilt by the factory;
    // the cumulative frontier `F` (finalized + tdsp) plus the working
    // labels/roots are what recovery needs to resume mid-series.
    fn save_state(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.label.len() as u32);
        for &l in &self.label {
            buf.put_f64_le(l);
        }
        for &l in &self.tdsp {
            buf.put_f64_le(l);
        }
        for &f in &self.finalized {
            buf.put_u8(f as u8);
        }
        buf.put_u32_le(self.roots.len() as u32);
        for &r in &self.roots {
            buf.put_u32_le(r);
        }
    }

    fn restore_state(&mut self, buf: &mut bytes::Bytes) {
        use bytes::Buf;
        let n = buf.get_u32_le() as usize;
        self.label = (0..n).map(|_| buf.get_f64_le()).collect();
        self.tdsp = (0..n).map(|_| buf.get_f64_le()).collect();
        self.finalized = (0..n).map(|_| buf.get_u8() != 0).collect();
        let n = buf.get_u32_le() as usize;
        self.roots = (0..n).map(|_| buf.get_u32_le()).collect();
    }
}

/// Total-ordered f64 wrapper for the Dijkstra heaps (shared with SSSP).
pub mod ordered_f64 {
    /// An `f64` with `Ord` via IEEE total ordering (labels are never NaN).
    #[derive(Copy, Clone, PartialEq)]
    pub struct F64(pub f64);

    impl Eq for F64 {}

    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn msg_roundtrip() {
        for msg in [TdspMsg::Relax(VertexIdx(7), 3.5), TdspMsg::Continue] {
            let mut buf = BytesMut::new();
            msg.encode(&mut buf);
            assert_eq!(TdspMsg::decode(&mut buf.freeze()).unwrap(), msg);
        }
    }

    #[test]
    fn ordered_f64_total_order() {
        use super::ordered_f64::F64;
        assert!(F64(1.0) < F64(2.0));
        assert!(F64(f64::INFINITY) > F64(1e300));
        assert_eq!(F64(0.5).cmp(&F64(0.5)), std::cmp::Ordering::Equal);
    }
}
